//! Integration tests for the materialized-view optimizer on synthetic
//! states (the scenario of experiment E8).

use subq::dl::samples;
use subq::oodb::OptimizedDatabase;
use subq::workload::{synthetic_hospital, HospitalParams};

fn setup(patients: usize, seed: u64) -> (OptimizedDatabase, subq::DlModel) {
    let db = synthetic_hospital(
        seed,
        HospitalParams {
            patients,
            view_match_percent: 20,
            query_match_percent: 40,
            ..HospitalParams::default()
        },
    );
    let model = samples::medical_model();
    let odb = OptimizedDatabase::new(db).expect("translates");
    (odb, model)
}

/// The optimizer gives the same answers as the from-scratch evaluation on
/// every generated state.
#[test]
fn optimized_execution_is_correct_across_states() {
    for seed in 0..5 {
        let (mut odb, model) = setup(300, seed);
        odb.materialize_view("ViewPatient").expect("materializes");
        let query = model.query_class("QueryPatient").expect("declared");
        let (optimized, stats) = odb.execute(query);
        let (baseline, _) = odb.execute_unoptimized(query);
        assert_eq!(optimized, baseline, "seed {seed}");
        assert_eq!(stats.used_view.as_deref(), Some("ViewPatient"));
    }
}

/// The candidate-set reduction grows with the database size when the view
/// stays selective.
#[test]
fn candidate_reduction_scales_with_database_size() {
    let query_model = samples::medical_model();
    let query = query_model.query_class("QueryPatient").expect("declared");
    let mut reductions = Vec::new();
    for patients in [200usize, 800] {
        let (mut odb, _) = setup(patients, 99);
        odb.materialize_view("ViewPatient").expect("materializes");
        let (_, stats) = odb.execute(query);
        let (_, baseline) = odb.execute_unoptimized(query);
        assert!(stats.candidates_examined <= baseline.candidates_examined);
        reductions.push((
            patients,
            baseline.candidates_examined - stats.candidates_examined,
        ));
    }
    assert!(
        reductions[1].1 > reductions[0].1,
        "absolute savings must grow with the state size: {reductions:?}"
    );
}

/// Materializing additional views lets the planner choose the smallest
/// subsuming one. The flat scan reports every subsumer; the lattice
/// traversal reports the maximal-specific frontier — here `ViewPatient`
/// alone, since it sits below `Patient` in the lattice — and both choose
/// the same extension.
#[test]
fn planner_prefers_the_smallest_subsuming_view() {
    let (mut odb, model) = setup(400, 7);
    // Patient as a trivial view (largest), ViewPatient (smaller).
    odb.materialize_view("Patient").expect("materializes");
    odb.materialize_view("ViewPatient").expect("materializes");
    let query = model.query_class("QueryPatient").expect("declared");
    let flat = odb.plan_flat(query);
    assert_eq!(flat.subsuming_views.len(), 2);
    assert_eq!(flat.chosen_view.as_deref(), Some("ViewPatient"));
    let plan = odb.plan(query);
    assert_eq!(plan.subsuming_views, vec!["ViewPatient".to_owned()]);
    assert_eq!(plan.chosen_view.as_deref(), Some("ViewPatient"));
    let (answers, stats) = odb.execute(query);
    let (baseline, _) = odb.execute_unoptimized(query);
    assert_eq!(answers, baseline);
    assert_eq!(stats.used_view.as_deref(), Some("ViewPatient"));
}

/// Updates invalidate materialized views; execution after updates remains
/// correct and still uses the view.
#[test]
fn updates_keep_optimizer_consistent() {
    let (mut odb, model) = setup(150, 3);
    odb.materialize_view("ViewPatient").expect("materializes");
    let query = model.query_class("QueryPatient").expect("declared");
    let (before, _) = odb.execute(query);

    odb.update(|db| {
        let welby = db.add_object("extra_doctor");
        let name = db.add_object("extra_doctor_name");
        let flu = db.add_object("extra_disease");
        db.assert_class(welby, "Doctor");
        db.assert_class(welby, "Female");
        db.assert_class(name, "String");
        db.assert_class(flu, "Disease");
        db.assert_attr(welby, "name", name);
        db.assert_attr(welby, "skilled_in", flu);
        let aspirin = db.object("Aspirin").expect("exists");
        let paul = db.add_object("extra_patient");
        let paul_name = db.add_object("extra_patient_name");
        db.assert_class(paul, "Patient");
        db.assert_class(paul, "Male");
        db.assert_class(paul_name, "String");
        db.assert_attr(paul, "name", paul_name);
        db.assert_attr(paul, "suffers", flu);
        db.assert_attr(paul, "consults", welby);
        db.assert_attr(paul, "takes", aspirin);
    });

    let (after, stats) = odb.execute(query);
    assert_eq!(after.len(), before.len() + 1);
    assert_eq!(stats.used_view.as_deref(), Some("ViewPatient"));
    let (baseline, _) = odb.execute_unoptimized(query);
    assert_eq!(after, baseline);
}
