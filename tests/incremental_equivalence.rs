//! Equivalence suite for the incremental view-maintenance engine: over
//! hundreds of random churn traces (mixed class/attribute asserts and
//! retracts applied in transactions), after **every** transaction the
//! incrementally maintained extensions must equal
//!
//! * the [`refresh_full`](subq::oodb::ViewCatalog::refresh_full) oracle's
//!   extensions on an identically mutated twin database, and
//! * a from-scratch `evaluate_query` of every view definition,
//!
//! and the maintenance counters must stay sane: memberships evaluated
//! never exceed candidates examined, candidates per pass never exceed
//! `stale views × objects`, and lattice prunes only occur when the
//! catalog actually has Hasse edges or equivalence peers to prune
//! through.

use subq::oodb::{evaluate_query, MaintenanceStats, OptimizedDatabase};
use subq::workload::{churn_trace, ChurnParams, FamilyShape};

/// Runs one churn trace through an incrementally maintained catalog and a
/// full-re-evaluation twin, checking equivalence after every transaction.
/// Returns the number of transactions checked.
fn check_trace(seed: u64, params: ChurnParams, label: &str) -> usize {
    let trace = churn_trace(seed, params);
    let mut incremental = OptimizedDatabase::new(trace.db.clone()).expect("translates");
    let mut oracle = OptimizedDatabase::new(trace.db).expect("translates");
    for name in &trace.view_names {
        incremental
            .materialize_view(name)
            .unwrap_or_else(|e| panic!("{label}: materializing {name}: {e}"));
        oracle
            .materialize_view(name)
            .unwrap_or_else(|e| panic!("{label}: materializing {name}: {e}"));
    }
    let has_lattice_structure = !incremental.catalog().lattice_edges().is_empty();

    let mut checked = 0usize;
    for (t, txn) in trace.transactions.iter().enumerate() {
        incremental.update(|db| {
            for op in txn {
                op.apply(db);
            }
        });
        oracle.update(|db| {
            for op in txn {
                op.apply(db);
            }
        });

        let before: MaintenanceStats = incremental.maintenance_stats();
        incremental.refresh_views();
        let after: MaintenanceStats = incremental.maintenance_stats();
        oracle.catalog().refresh_full(oracle.database());

        // --- Extensions: incremental ≡ full oracle ≡ scratch.
        for name in &trace.view_names {
            let inc = incremental.catalog().view(name).expect("stored");
            let full = oracle.catalog().view(name).expect("stored");
            assert_eq!(
                inc.extent, full.extent,
                "{label}: txn {t}: view {name}: incremental ≠ refresh_full"
            );
            let scratch = evaluate_query(incremental.database(), &inc.definition);
            assert_eq!(
                *inc.extent, scratch,
                "{label}: txn {t}: view {name}: incremental ≠ scratch"
            );
            // A refresh that found the log suffix routing zero views
            // returns without touching view state (PR 5) — including
            // silently, when a previous pass already scanned through the
            // current version — so `fresh_as_of` may legitimately lag;
            // freshness *in substance* is the scratch comparison above.
            // After a pass that actually propagated (scanned deltas or
            // re-evaluated in full), every view must be version-fresh.
            let propagated = after.deltas_applied > before.deltas_applied
                || after.full_reevaluations > before.full_reevaluations;
            if propagated {
                assert_eq!(
                    inc.fresh_as_of,
                    incremental.database().data_version(),
                    "{label}: txn {t}: view {name} left stale"
                );
            }
        }

        // --- Stats sanity for this pass.
        let candidates = after.candidates_examined - before.candidates_examined;
        let evaluated = after.memberships_evaluated - before.memberships_evaluated;
        let prunes = after.lattice_prunes - before.lattice_prunes;
        assert!(
            evaluated <= candidates,
            "{label}: txn {t}: evaluated {evaluated} > candidates {candidates}"
        );
        assert!(
            prunes <= candidates,
            "{label}: txn {t}: prunes {prunes} > candidates {candidates}"
        );
        let ceiling = (trace.view_names.len() * incremental.database().object_count()
            + incremental.maintenance_stats().full_reevaluations as usize
                * incremental.database().object_count()) as u64;
        assert!(
            candidates <= ceiling,
            "{label}: txn {t}: candidates {candidates} > views × objects ceiling {ceiling}"
        );
        if !has_lattice_structure {
            assert_eq!(
                prunes, 0,
                "{label}: txn {t}: prunes without lattice edges or peers"
            );
        }
        checked += 1;
    }
    checked
}

/// 200 traces: every shape × two catalog configurations × 20 seeds.
#[test]
fn incremental_maintenance_is_equivalent_on_200_churn_traces() {
    let mut traces = 0usize;
    let mut transactions = 0usize;
    for shape in [
        FamilyShape::Chain,
        FamilyShape::Tree,
        FamilyShape::Diamond,
        FamilyShape::Flat,
        FamilyShape::Random,
    ] {
        for (config, params) in [
            (
                "classviews",
                ChurnParams {
                    shape,
                    classes: 5,
                    views: 7,
                    path_view_percent: 0,
                    objects: 24,
                    transactions: 6,
                    ops_per_transaction: 4,
                    retract_percent: 40,
                },
            ),
            (
                "pathviews",
                ChurnParams {
                    shape,
                    classes: 6,
                    views: 9,
                    path_view_percent: 60,
                    objects: 30,
                    transactions: 6,
                    ops_per_transaction: 5,
                    retract_percent: 40,
                },
            ),
        ] {
            for seed in 0..20u64 {
                transactions += check_trace(
                    seed,
                    params,
                    &format!("{}/{config}/seed={seed}", shape.name()),
                );
                traces += 1;
            }
        }
    }
    assert_eq!(traces, 200);
    assert!(
        transactions >= 200,
        "only {transactions} transactions across all traces"
    );
}

/// Retraction-heavy traces drill the downward isA propagation path
/// (retracting a class strips its subclasses too) and attribute-index
/// shrinkage much harder than the default blend — the crash-recovery
/// suite replays the same mixes from the write-ahead log, so the
/// in-memory maintenance must hold up on them first.
#[test]
fn retraction_heavy_churn_stays_equivalent() {
    let mut transactions = 0usize;
    for shape in [FamilyShape::Chain, FamilyShape::Tree, FamilyShape::Random] {
        for seed in 300..305u64 {
            transactions += check_trace(
                seed,
                ChurnParams {
                    shape,
                    classes: 6,
                    views: 8,
                    path_view_percent: 40,
                    objects: 24,
                    transactions: 8,
                    ops_per_transaction: 5,
                    retract_percent: 85,
                },
                &format!("{}/retract-heavy/seed={seed}", shape.name()),
            );
        }
    }
    assert!(transactions >= 100, "only {transactions} transactions");
}

/// Views with no schema superclass have the *all objects* candidate set,
/// so even a bare `AddObject` delta (an object with no classes and no
/// attributes yet) must reach them incrementally.
#[test]
fn unrestricted_views_see_bare_new_objects() {
    let mut model = subq::dl::DlModel::new();
    model.classes.push(subq::dl::ClassDecl {
        name: "K".into(),
        is_a: vec![],
        attributes: vec![],
        constraint: None,
    });
    model.queries.push(subq::dl::QueryClassDecl {
        name: "Everything".into(),
        is_a: vec![],
        derived: vec![],
        where_eqs: vec![],
        constraint: None,
    });
    model.queries.push(subq::dl::QueryClassDecl {
        name: "AllK".into(),
        is_a: vec!["K".into()],
        derived: vec![],
        where_eqs: vec![],
        constraint: None,
    });
    let mut db = subq::oodb::Database::new(model);
    let first = db.add_object("first");
    db.assert_class(first, "K");
    let mut odb = OptimizedDatabase::new(db).expect("translates");
    odb.materialize_view("Everything").expect("materializes");
    odb.materialize_view("AllK").expect("materializes");

    odb.update(|db| {
        db.add_object("bare");
    });
    odb.refresh_views();
    let everything = odb.catalog().view("Everything").expect("stored");
    assert_eq!(everything.extent.len(), 2, "the bare object is an answer");
    let all_k = odb.catalog().view("AllK").expect("stored");
    assert_eq!(all_k.extent.len(), 1, "the bare object is not a K");
    for view in [&everything, &all_k] {
        assert_eq!(
            *view.extent,
            evaluate_query(odb.database(), &view.definition)
        );
    }
}

/// Regression: a constraint clause can reference an object *by name*
/// (`Term::Ident` falls back to `db.object(name)`), so creating that
/// object — a bare `AddObject` delta with no class or attribute — changes
/// memberships of a schema-restricted view. The delta must reach the view
/// (volatile routing) even though it is not `unrestricted`.
#[test]
fn object_creation_reaches_views_with_name_referencing_constraints() {
    use subq::dl::{ClassDecl, ConstraintExpr, DlModel, QueryClassDecl, Term};
    let mut model = DlModel::new();
    model.classes.push(ClassDecl {
        name: "K".into(),
        is_a: vec![],
        attributes: vec![],
        constraint: None,
    });
    // Q keeps its members only while no object named `bob` exists.
    model.queries.push(QueryClassDecl {
        name: "Q".into(),
        is_a: vec!["K".into()],
        derived: vec![],
        where_eqs: vec![],
        constraint: Some(ConstraintExpr::Not(Box::new(ConstraintExpr::Eq(
            Term::Ident("bob".into()),
            Term::Ident("bob".into()),
        )))),
    });
    // The materializable view: restricted by the schema class K, volatile
    // through its query-class superclass Q.
    model.queries.push(QueryClassDecl {
        name: "ViaQ".into(),
        is_a: vec!["Q".into(), "K".into()],
        derived: vec![],
        where_eqs: vec![],
        constraint: None,
    });
    let mut db = subq::oodb::Database::new(model);
    let mary = db.add_object("mary");
    db.assert_class(mary, "K");
    let mut odb = OptimizedDatabase::new(db).expect("translates");
    odb.materialize_view("ViaQ").expect("materializes");
    assert_eq!(odb.catalog().view("ViaQ").expect("stored").extent.len(), 1);

    // The only delta is the bare creation of `bob`.
    odb.update(|db| {
        db.add_object("bob");
    });
    odb.refresh_views();
    let view = odb.catalog().view("ViaQ").expect("stored");
    assert!(
        view.extent.is_empty(),
        "bare AddObject delta missed the name-referencing constraint"
    );
    assert_eq!(
        *view.extent,
        evaluate_query(odb.database(), &view.definition)
    );
}

/// The equivalence also holds when the lattice has something to prune:
/// deep chain catalogs with duplicate (Σ-equivalent) views, heavier
/// churn, and a prune counter that actually fires.
#[test]
fn chain_catalogs_prune_through_the_lattice_and_stay_equivalent() {
    let params = ChurnParams {
        shape: FamilyShape::Chain,
        classes: 8,
        views: 16, // wraps around: V8..V15 duplicate V0..V7's classes
        path_view_percent: 0,
        objects: 40,
        transactions: 10,
        ops_per_transaction: 6,
        retract_percent: 40,
    };
    let mut pruned_total = 0u64;
    for seed in 100..110u64 {
        let trace = churn_trace(seed, params);
        let mut odb = OptimizedDatabase::new(trace.db).expect("translates");
        for name in &trace.view_names {
            odb.materialize_view(name).expect("materializes");
        }
        assert!(odb.catalog().lattice_violations().is_empty());
        for txn in &trace.transactions {
            odb.update(|db| {
                for op in txn {
                    op.apply(db);
                }
            });
            odb.refresh_views();
            for name in &trace.view_names {
                let view = odb.catalog().view(name).expect("stored");
                let scratch = evaluate_query(odb.database(), &view.definition);
                assert_eq!(*view.extent, scratch, "seed {seed}: view {name}");
            }
        }
        pruned_total += odb.maintenance_stats().lattice_prunes;
    }
    assert!(
        pruned_total > 0,
        "chain catalogs with duplicates must prune at least once"
    );
}
