//! Parallel maintenance oracle check, isolated in its own test binary:
//! `subq::oodb::maintain::set_maintenance_workers` is a **process-wide**
//! override (it also waives the spawn threshold), so forcing it here must
//! not race the other suites — cargo runs each integration-test binary as
//! its own process.
//!
//! With the scoped-thread propagation path forced on (4 workers, fires on
//! any machine), the incrementally maintained extensions must equal a
//! full-re-evaluation twin and a scratch evaluation after every
//! transaction of every trace — the concurrent half of the guarantee
//! whose single-threaded half is `incremental_equivalence.rs`.

use subq::oodb::maintain::set_maintenance_workers;
use subq::oodb::{evaluate_query, OptimizedDatabase};
use subq::workload::{churn_trace, ChurnParams, FamilyShape};

#[test]
fn parallel_propagation_matches_refresh_full() {
    set_maintenance_workers(Some(4));
    for seed in 0..20u64 {
        let params = ChurnParams {
            shape: if seed % 2 == 0 {
                FamilyShape::Chain
            } else {
                FamilyShape::Diamond
            },
            classes: 6,
            views: 12, // wraps around: Σ-equivalent peers join the components
            path_view_percent: 30,
            objects: 40,
            transactions: 6,
            ops_per_transaction: 5,
            retract_percent: 40,
        };
        let trace = churn_trace(seed, params);
        let mut incremental = OptimizedDatabase::new(trace.db.clone()).expect("translates");
        let mut oracle = OptimizedDatabase::new(trace.db).expect("translates");
        for name in &trace.view_names {
            incremental.materialize_view(name).expect("materializes");
            oracle.materialize_view(name).expect("materializes");
        }
        for (t, txn) in trace.transactions.iter().enumerate() {
            incremental.commit(|db| {
                for op in txn {
                    op.apply(db);
                }
            });
            oracle.update(|db| {
                for op in txn {
                    op.apply(db);
                }
            });
            oracle.catalog().refresh_full(oracle.database());
            for name in &trace.view_names {
                let inc = incremental.catalog().view(name).expect("stored");
                let full = oracle.catalog().view(name).expect("stored");
                assert_eq!(
                    inc.extent, full.extent,
                    "seed {seed}: txn {t}: view {name}: parallel incremental ≠ refresh_full"
                );
                let scratch = evaluate_query(incremental.database(), &inc.definition);
                assert_eq!(
                    *inc.extent, scratch,
                    "seed {seed}: txn {t}: view {name}: parallel incremental ≠ scratch"
                );
            }
        }
    }
}
