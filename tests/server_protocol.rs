//! Adversarial protocol suite for `subqd`: random, truncated,
//! oversized, CRC-corrupt, and interleaved frames must never panic or
//! wedge a worker. Every malformed input yields a *typed* error reply or
//! a clean disconnect; errors inside a well-formed frame (unparsable
//! text, unknown names) are survivable and the session keeps answering,
//! while framing errors (length over cap, checksum mismatch) close the
//! connection after one typed reply — the byte stream can no longer be
//! trusted to contain boundaries. Throughout, a control session on the
//! *same single worker* keeps doing real work, which is the no-wedge
//! proof.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use subq_oodb::{evaluate_query, OptimizedDatabase};
use subq_server::frame::encode_frame;
use subq_server::{
    churn_txn_request, view_query, Client, ErrorCode, Request, Response, Server, ServerConfig,
};
use subq_workload::{churn_trace, ChurnParams, ChurnTrace};

fn serve(config: ServerConfig) -> (Server, ChurnTrace) {
    let trace = churn_trace(41, ChurnParams::default());
    let mut odb = OptimizedDatabase::new(trace.db.clone()).expect("translates");
    for name in &trace.view_names {
        odb.materialize_view(name).expect("materializes");
    }
    let server = Server::start(odb, config).expect("binds loopback");
    (server, trace)
}

fn expected_answers(trace: &ChurnTrace, view: usize) -> Vec<String> {
    let query = view_query(trace, view);
    evaluate_query(&trace.db, &query)
        .iter()
        .map(|id| trace.db.object_name(*id).to_owned())
        .collect()
}

#[test]
fn garbage_inside_valid_frames_is_survivable() {
    let (server, trace) = serve(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(7);
    let mut client = Client::connect(server.addr()).expect("connects");
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    for round in 0..40 {
        let payload: Vec<u8> = match round % 3 {
            // Random bytes: usually not UTF-8.
            0 => (0..rng.gen_range(1..200usize))
                .map(|_| rng.gen_range(0..=255u8))
                .collect(),
            // Random printable text: not a protocol verb.
            1 => (0..rng.gen_range(1..120usize))
                .map(|_| rng.gen_range(b' '..=b'~'))
                .collect(),
            // Almost-valid requests.
            _ => ["TXN 3\nadd x", "QUERY\nnot dl", "MATERIALIZE", "PING ?"]
                [rng.gen_range(0..4usize)]
            .as_bytes()
            .to_vec(),
        };
        let mut framed = Vec::new();
        encode_frame(&payload, &mut framed);
        client.send_raw(&framed).expect("sends");
        match client.receive().expect("typed reply, not a hang") {
            Response::Error {
                code: ErrorCode::Parse | ErrorCode::Unknown,
                ..
            } => {}
            other => panic!("round {round}: expected a typed error, got {other:?}"),
        }
        // The session survived: a real request round-trips.
        match client.request(&Request::Ping).expect("session survives") {
            Response::Pong { .. } => {}
            other => panic!("round {round}: expected PONG, got {other:?}"),
        }
    }
    // And real queries still answer correctly after the abuse.
    for view in 0..trace.view_names.len() {
        match client
            .request(&Request::Query(view_query(&trace, view)))
            .expect("answers")
        {
            Response::Answers { names, .. } => {
                assert_eq!(names, expected_answers(&trace, view), "view {view}");
            }
            other => panic!("expected ANSWERS, got {other:?}"),
        }
    }
    client.close().expect("graceful BYE");
    assert!(
        server
            .stats()
            .protocol_errors
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 40
    );
    server.shutdown();
}

#[test]
fn oversized_frames_close_with_a_typed_toobig() {
    let (server, _) = serve(ServerConfig {
        workers: 1,
        max_payload: 1024,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connects");
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(&100_000u32.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    client.send_raw(&header).expect("sends");
    match client.receive().expect("typed reply before close") {
        Response::Error {
            code: ErrorCode::TooBig,
            ..
        } => {}
        other => panic!("expected TOOBIG, got {other:?}"),
    }
    // Clean disconnect, not a hang: the next read sees EOF.
    assert!(client.receive().is_err(), "connection should be closed");
    // The server is unharmed: a fresh session works.
    let mut fresh = Client::connect(server.addr()).expect("reconnects");
    fresh.set_timeout(Some(Duration::from_secs(10))).unwrap();
    assert!(matches!(
        fresh.request(&Request::Ping).expect("pong"),
        Response::Pong { .. }
    ));
    server.shutdown();
}

#[test]
fn checksum_corruption_closes_with_a_typed_badcrc() {
    let (server, _) = serve(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connects");
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut framed = Vec::new();
    encode_frame(b"PING", &mut framed);
    let last = framed.len() - 1;
    framed[last] ^= 0x20; // corrupt the payload under an intact header
    client.send_raw(&framed).expect("sends");
    match client.receive().expect("typed reply before close") {
        Response::Error {
            code: ErrorCode::BadCrc,
            ..
        } => {}
        other => panic!("expected BADCRC, got {other:?}"),
    }
    assert!(client.receive().is_err(), "connection should be closed");
    server.shutdown();
}

#[test]
fn truncated_frames_idle_out_without_wedging_the_worker() {
    let (server, trace) = serve(ServerConfig {
        workers: 1,
        idle_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    });
    // A client that starts a frame and goes silent forever.
    let mut stalled = TcpStream::connect(server.addr()).expect("connects");
    let mut partial = Vec::new();
    encode_frame(b"PING", &mut partial);
    stalled
        .write_all(&partial[..5])
        .expect("sends a torn frame");
    // The same (only) worker keeps serving a healthy session meanwhile.
    let mut healthy = Client::connect(server.addr()).expect("connects");
    healthy.set_timeout(Some(Duration::from_secs(10))).unwrap();
    for view in 0..trace.view_names.len() {
        match healthy
            .request(&Request::Query(view_query(&trace, view)))
            .expect("worker is not wedged")
        {
            Response::Answers { names, .. } => {
                assert_eq!(names, expected_answers(&trace, view));
            }
            other => panic!("expected ANSWERS, got {other:?}"),
        }
    }
    // The stalled session is reaped by the idle timeout.
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 64];
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match stalled.read(&mut buf) {
            Ok(0) => break, // clean close
            Ok(_) => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                panic!("stalled session was never closed")
            }
            Err(_) => break, // reset is also a close
        }
    }
    assert!(Instant::now() < deadline);
    assert!(
        server
            .stats()
            .idle_closes
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    server.shutdown();
}

#[test]
fn pipelined_interleaved_sessions_get_ordered_replies() {
    let (server, trace) = serve(ServerConfig {
        workers: 1,
        write_queue: 256,
        inbox_limit: 64,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let trace = &trace;
    std::thread::scope(|scope| {
        for c in 0..3usize {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                // Pipeline a known request pattern, then read every
                // reply: kinds must come back in exactly request order.
                let requests: Vec<Request> = (0..24)
                    .map(|i| match i % 3 {
                        0 => Request::Ping,
                        1 => Request::Query(view_query(trace, (c + i) % trace.view_names.len())),
                        _ => churn_txn_request(
                            &trace.transactions[(c + i) % trace.transactions.len()],
                        ),
                    })
                    .collect();
                for request in &requests {
                    client.send(request).expect("pipelines");
                }
                for (i, request) in requests.iter().enumerate() {
                    let reply = client.receive().expect("ordered reply");
                    let ok = matches!(
                        (request, &reply),
                        (Request::Ping, Response::Pong { .. })
                            | (Request::Query(_), Response::Answers { .. })
                            | (Request::Txn(_), Response::Committed { .. })
                            | (Request::Txn(_), Response::Busy { .. })
                    );
                    assert!(
                        ok,
                        "client {c} reply {i}: {request:?} answered by {reply:?}"
                    );
                }
                client.close().expect("graceful BYE");
            });
        }
    });
    server.shutdown();
}

#[test]
fn random_byte_storms_never_take_the_server_down() {
    let (server, trace) = serve(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(1213);
    for _ in 0..16 {
        let mut stream = TcpStream::connect(server.addr()).expect("connects");
        let storm: Vec<u8> = (0..rng.gen_range(64..2048usize))
            .map(|_| rng.gen_range(0..=255u8))
            .collect();
        // The peer may close us mid-write once framing breaks; that is
        // fine — the property under test is server health.
        let _ = stream.write_all(&storm);
        drop(stream);
    }
    let mut client = Client::connect(server.addr()).expect("connects");
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let view = 0;
    match client
        .request(&Request::Query(view_query(&trace, view)))
        .expect("server survived the storm")
    {
        Response::Answers { names, .. } => {
            let expected: BTreeSet<String> = expected_answers(&trace, view).into_iter().collect();
            assert_eq!(names.into_iter().collect::<BTreeSet<_>>(), expected);
        }
        other => panic!("expected ANSWERS, got {other:?}"),
    }
    client.close().expect("graceful BYE");
    server.shutdown();
}
