//! Equivalence suite for the workload-adaptive view advisor: with
//! `--advisor auto` mining the query stream and mutating the catalog at
//! commit boundaries, answers must stay byte-identical to from-scratch
//! evaluation and the catalog invariants must hold at every step.
//!
//! The invariants, checked over 100+ seeded shifting-workload churn
//! traces:
//!
//! * **Auto answers ≡ scratch.** Every query a reader executes — before
//!   and after each advisor pass — returns exactly the from-scratch
//!   evaluation of that query over the reader's pinned snapshot state,
//!   at the same published version.
//! * **The lattice stays consistent.** `lattice_violations()` is empty
//!   after every advisor pass, including passes that evict and
//!   re-materialize auto-views.
//! * **User views are untouched.** Views materialized by hand are never
//!   evicted and their extensions keep matching scratch evaluation; only
//!   `__adv_`-prefixed names the advisor minted itself are ever evicted.
//! * **The advisor actually acts.** Across the suite the traces drive at
//!   least one auto-materialization and at least one eviction — the
//!   invariants above are not holding vacuously.

use subq::oodb::{
    evaluate_query, Advisor, AdvisorConfig, AdvisorMode, OptimizedDatabase, AUTO_VIEW_PREFIX,
};
use subq::workload::{churn_trace, ChurnParams};

/// Asserts that the reader's planner answers equal scratch evaluation
/// over the reader's own pinned snapshot state.
fn verify_reader(
    reader: &mut subq::oodb::Reader,
    trace: &subq::workload::ChurnTrace,
    hot: &[usize],
    label: &str,
) {
    for &i in hot {
        let query = trace
            .db
            .model()
            .query_class(&trace.view_names[i])
            .expect("churn views are declared query classes")
            .clone();
        let version = reader.data_version();
        let (answers, _) = reader.execute(&query);
        let scratch = evaluate_query(reader.snapshot().database(), &query);
        assert_eq!(
            answers, scratch,
            "{label}: v{version}: execute({}) diverged from scratch",
            query.name
        );
    }
}

/// One shifting-workload trace under `--advisor auto`: apply every
/// transaction, rotate the hot query window so earlier auto-views go
/// cold, run an advisor pass per commit, and verify the invariants at
/// each step. Returns `(materialized, evicted)` advisor activity.
fn run_trace(seed: u64) -> (usize, usize) {
    let params = ChurnParams {
        classes: 4,
        views: 6,
        path_view_percent: 60,
        objects: 30,
        transactions: 8,
        ..ChurnParams::default()
    };
    let trace = churn_trace(seed, params);
    let mut writer = OptimizedDatabase::new(trace.db.clone()).expect("translates");
    // Two user views, materialized by hand: the advisor must leave them
    // alone no matter what it does to its own catalog entries.
    let user_views: Vec<String> = trace.view_names.iter().take(2).cloned().collect();
    for name in &user_views {
        writer.materialize_view(name).expect("materializes");
    }
    writer.set_advisor_config(AdvisorConfig {
        mode: AdvisorMode::Auto,
        evict_after: 1,
        ..AdvisorConfig::default()
    });
    writer.publish_snapshot();
    let mut reader = writer.reader();
    let views = trace.view_names.len();
    let label = format!("trace {seed}");
    let (mut materialized, mut evicted) = (0usize, 0usize);
    for (t, txn) in trace.transactions.iter().enumerate() {
        writer.update(|db| {
            for op in txn {
                op.apply(db);
            }
        });
        writer.refresh_views();
        writer.publish_snapshot();
        reader.sync();
        // The hot window rotates every transaction: views the advisor
        // materialized for earlier phases go cold and must be evicted.
        let hot = [t % views, (t + 1) % views];
        for _ in 0..4 {
            verify_reader(&mut reader, &trace, &hot, &label);
        }
        let pass = writer.run_advisor().expect("advisor pass");
        materialized += pass.materialized.len();
        evicted += pass.evicted.len();
        for name in pass.materialized.iter().chain(pass.evicted.iter()) {
            assert!(
                Advisor::is_auto_view(name),
                "{label}: advisor touched non-{AUTO_VIEW_PREFIX} view {name}"
            );
        }
        // Catalog invariants after the pass: the subsumption lattice is
        // consistent and the user views are still served.
        let violations = writer.catalog().lattice_violations();
        assert!(
            violations.is_empty(),
            "{label}: lattice violations after advisor pass {t}: {violations:?}"
        );
        let served = writer.catalog().view_names();
        for name in &user_views {
            assert!(
                served.contains(name),
                "{label}: user view {name} missing after advisor pass {t} (served: {served:?})"
            );
        }
        // The pass published; the reader adopts the advisor's snapshot
        // and answers must still be scratch-identical.
        reader.sync();
        verify_reader(&mut reader, &trace, &hot, &label);
        // User-view extensions stay scratch-identical through advisor
        // catalog churn.
        let snapshot = reader.snapshot().clone();
        for name in &user_views {
            let view = snapshot.view(name).expect("user view served");
            let scratch = evaluate_query(snapshot.database(), &view.definition);
            assert_eq!(
                *view.extent, scratch,
                "{label}: user view {name} diverged from scratch after pass {t}"
            );
        }
    }
    (materialized, evicted)
}

#[test]
fn auto_advisor_answers_match_scratch_over_100_shifting_traces() {
    let (mut materialized, mut evicted) = (0usize, 0usize);
    for seed in 0..100 {
        let (m, e) = run_trace(seed);
        materialized += m;
        evicted += e;
    }
    // The invariants must not hold vacuously: across 100 traces the
    // advisor materialized and evicted real views.
    assert!(
        materialized > 0,
        "100 shifting traces never drove an auto-materialization"
    );
    assert!(evicted > 0, "100 shifting traces never drove an eviction");
}

/// The full evict + re-materialize cycle on one database: a shape goes
/// hot (materialized), cold (evicted), then hot again (re-materialized
/// under its original `__adv_` name via the catalog-only path), with the
/// lattice consistent at every step.
#[test]
fn evict_and_rematerialize_cycle_keeps_the_lattice_consistent() {
    let params = ChurnParams {
        classes: 4,
        views: 6,
        path_view_percent: 60,
        objects: 40,
        transactions: 0,
        ..ChurnParams::default()
    };
    let trace = churn_trace(7, params);
    let mut writer = OptimizedDatabase::new(trace.db.clone()).expect("translates");
    writer.set_advisor_config(AdvisorConfig {
        mode: AdvisorMode::Auto,
        evict_after: 1,
        ..AdvisorConfig::default()
    });
    writer.publish_snapshot();
    let mut reader = writer.reader();
    let hot_query = |reader: &mut subq::oodb::Reader, index: usize, rounds: usize| {
        let query = trace
            .db
            .model()
            .query_class(&trace.view_names[index])
            .expect("declared")
            .clone();
        reader.sync();
        for _ in 0..rounds {
            reader.execute(&query);
        }
    };

    // Phase 1: hammer a path view until the advisor materializes it.
    let mut first = Vec::new();
    for _ in 0..4 {
        hot_query(&mut reader, 2, 10);
        first.extend(writer.run_advisor().expect("pass").materialized);
        if !first.is_empty() {
            break;
        }
    }
    assert!(!first.is_empty(), "the hot shape was never materialized");
    assert!(writer.catalog().lattice_violations().is_empty());

    // Phase 2: go cold (query a different view) until it is evicted.
    let mut evicted = Vec::new();
    for _ in 0..6 {
        hot_query(&mut reader, 3, 10);
        evicted.extend(writer.run_advisor().expect("pass").evicted);
        if evicted.contains(&first[0]) {
            break;
        }
    }
    assert!(
        evicted.contains(&first[0]),
        "the cold auto-view {first:?} was never evicted (evicted: {evicted:?})"
    );
    assert!(writer.catalog().lattice_violations().is_empty());
    assert!(!writer.catalog().view_names().contains(&first[0]));

    // Phase 3: the shape goes hot again — re-materialized under the same
    // name (its declaration survived eviction), lattice still clean.
    let mut again = Vec::new();
    for _ in 0..6 {
        hot_query(&mut reader, 2, 10);
        again.extend(writer.run_advisor().expect("pass").materialized);
        if again.contains(&first[0]) {
            break;
        }
    }
    assert!(
        again.contains(&first[0]),
        "the re-hot shape was not re-materialized as {first:?} (materialized: {again:?})"
    );
    assert!(writer.catalog().lattice_violations().is_empty());
    // Re-adopted by readers: answers still scratch-identical.
    reader.sync();
    let query = trace
        .db
        .model()
        .query_class(&trace.view_names[2])
        .expect("declared")
        .clone();
    let (answers, stats) = reader.execute(&query);
    assert_eq!(
        answers,
        evaluate_query(reader.snapshot().database(), &query)
    );
    assert_eq!(
        stats.used_view.as_deref(),
        Some(first[0].as_str()),
        "the re-materialized auto-view serves its shape again"
    );
}

/// Observe mode mines and reports but never mutates: the catalog after
/// heavy traffic is exactly the catalog before it.
#[test]
fn observe_mode_never_touches_the_catalog() {
    let trace = churn_trace(
        11,
        ChurnParams {
            path_view_percent: 60,
            transactions: 0,
            ..ChurnParams::default()
        },
    );
    let mut writer = OptimizedDatabase::new(trace.db.clone()).expect("translates");
    writer
        .materialize_view(&trace.view_names[0])
        .expect("materializes");
    writer.set_advisor_config(AdvisorConfig {
        mode: AdvisorMode::Observe,
        ..AdvisorConfig::default()
    });
    writer.publish_snapshot();
    let before = writer.catalog().view_names();
    let mut reader = writer.reader();
    reader.sync();
    let query = trace
        .db
        .model()
        .query_class(&trace.view_names[2])
        .expect("declared")
        .clone();
    for _ in 0..50 {
        reader.execute(&query);
    }
    let pass = writer.run_advisor().expect("pass");
    assert!(pass.materialized.is_empty() && pass.evicted.is_empty());
    assert!(pass.harvested > 0, "observe mode must still harvest shapes");
    assert_eq!(writer.catalog().view_names(), before);
    // The mined candidate is visible in the report even though nothing
    // was materialized.
    let report = writer.advisor_report();
    assert!(
        report.iter().any(|line| line.starts_with("candidate ")),
        "observe mode reports no candidates: {report:?}"
    );
}
