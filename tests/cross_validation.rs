//! Cross-validation of the polynomial calculus against the independent
//! oracles shipped with the repository:
//!
//! * the Chandra–Merlin conjunctive-query containment test (complete for
//!   the empty schema),
//! * the ALC-with-inverses tableau of `subq-extensions` (complete for
//!   agreement-free concepts and the empty schema), and
//! * direct model checking over the synthetic database states.

use subq::calculus::SubsumptionChecker;
use subq::concepts::Schema;
use subq::conjunctive::{concept_to_cq, contains};
use subq::extensions::tableau::ext_subsumes;
use subq::extensions::ExtConcept;
use subq::workload::{random_pair, subsumed_pair, RandomConceptParams};

/// On the empty schema the calculus agrees with conjunctive-query
/// containment on seeded random pairs (soundness and completeness on the
/// QL fragment).
#[test]
fn calculus_matches_cq_containment_on_random_pairs() {
    let params = RandomConceptParams::default();
    let schema = Schema::new();
    for seed in 0..200 {
        let (mut env, query, view) = random_pair(seed, params);
        let checker = SubsumptionChecker::new(&schema);
        let calculus = checker.subsumes(&mut env.arena, query, view);
        let oracle = contains(
            &concept_to_cq(&env.arena, query),
            &concept_to_cq(&env.arena, view),
        );
        assert_eq!(calculus, oracle, "seed {seed}: calculus vs Chandra–Merlin");
    }
}

/// Pairs constructed to be subsumed are accepted by the calculus and by
/// both oracles.
#[test]
fn constructed_subsumptions_are_confirmed_by_all_deciders() {
    let params = RandomConceptParams {
        max_depth: 2,
        ..RandomConceptParams::default()
    };
    let schema = Schema::new();
    for seed in 0..100 {
        let (mut env, query, view) = subsumed_pair(seed, params);
        let checker = SubsumptionChecker::new(&schema);
        assert!(checker.subsumes(&mut env.arena, query, view), "seed {seed}");
        assert!(
            contains(
                &concept_to_cq(&env.arena, query),
                &concept_to_cq(&env.arena, view)
            ),
            "seed {seed}: CQ oracle"
        );
        // The tableau oracle only handles agreement-free concepts.
        if let (Some(ext_query), Some(ext_view)) = (
            ExtConcept::from_ql(&env.arena, query),
            ExtConcept::from_ql(&env.arena, view),
        ) {
            assert!(ext_subsumes(&ext_query, &ext_view), "seed {seed}: tableau");
        }
    }
}

/// On agreement-free random pairs the calculus also agrees with the tableau
/// reasoner (a second, independent completeness oracle).
#[test]
fn calculus_matches_the_tableau_on_agreement_free_pairs() {
    let params = RandomConceptParams {
        max_depth: 2,
        inverse_percent: 40,
        ..RandomConceptParams::default()
    };
    let schema = Schema::new();
    let mut compared = 0;
    for seed in 200..500 {
        let (mut env, query, view) = random_pair(seed, params);
        let (Some(ext_query), Some(ext_view)) = (
            ExtConcept::from_ql(&env.arena, query),
            ExtConcept::from_ql(&env.arena, view),
        ) else {
            continue;
        };
        let checker = SubsumptionChecker::new(&schema);
        let calculus = checker.subsumes(&mut env.arena, query, view);
        let tableau = ext_subsumes(&ext_query, &ext_view);
        assert_eq!(calculus, tableau, "seed {seed}");
        compared += 1;
    }
    assert!(compared > 20, "the sweep must exercise enough pairs");
}

/// The structural subsumption detected on the medical example is confirmed
/// by the answer sets of every generated database state, including states
/// where the non-structural constraint of QueryPatient matters.
#[test]
fn medical_subsumption_confirmed_by_states() {
    use subq::dl::samples;
    use subq::oodb::evaluate_query;
    use subq::workload::{synthetic_hospital, HospitalParams};
    let model = samples::medical_model();
    let query = model.query_class("QueryPatient").expect("declared");
    let view = model.query_class("ViewPatient").expect("declared");
    for seed in 10..20 {
        let db = synthetic_hospital(
            seed,
            HospitalParams {
                patients: 80,
                view_match_percent: 40,
                query_match_percent: 30,
                ..HospitalParams::default()
            },
        );
        let q = evaluate_query(&db, query);
        let v = evaluate_query(&db, view);
        assert!(q.is_subset(&v), "seed {seed}");
    }
}
