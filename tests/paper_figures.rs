//! Integration tests reproducing every figure of the paper on the public
//! API (experiments E1–E3 of DESIGN.md).

use subq::concepts::display::DisplayCtx;
use subq::dl::{fol, samples, validate_model};
use subq::Engine;

/// Figure 1: the medical schema parses, validates, and contains the
/// declarations shown in the paper.
#[test]
fn figure1_schema_parses_and_validates() {
    let model = samples::medical_model();
    assert!(validate_model(&model).is_empty());
    let patient = model.class("Patient").expect("Patient declared");
    assert_eq!(patient.is_a, vec!["Person"]);
    assert_eq!(patient.attributes.len(), 3);
    let skilled_in = model.attribute("skilled_in").expect("declared");
    assert_eq!(skilled_in.inverse.as_deref(), Some("specialist"));
}

/// Figure 2: the first-order translation of the Patient declarations.
#[test]
fn figure2_first_order_translation() {
    let model = samples::medical_model();
    let patient = model.class("Patient").expect("declared");
    let rendered: Vec<String> = fol::class_axioms(patient)
        .iter()
        .map(|f| f.to_string())
        .collect();
    for expected in [
        "∀ x. (Patient(x) ⇒ Person(x))",
        "∀ x, y. ((Patient(x) ∧ takes(x, y)) ⇒ Drug(y))",
        "∀ x, y. ((Patient(x) ∧ consults(x, y)) ⇒ Doctor(y))",
        "∀ x, y. ((Patient(x) ∧ suffers(x, y)) ⇒ Disease(y))",
        "∀ x. (Patient(x) ⇒ ∃ y. suffers(x, y))",
        "∀ x. (Patient(x) ⇒ ¬(Doctor(x)))",
    ] {
        assert!(
            rendered.contains(&expected.to_owned()),
            "missing {expected}"
        );
    }
    let skilled_in = model.attribute("skilled_in").expect("declared");
    let rendered: Vec<String> = fol::attr_axioms(skilled_in)
        .iter()
        .map(|f| f.to_string())
        .collect();
    assert!(rendered.contains(&"∀ x, y. (skilled_in(x, y) ⇒ (Person(x) ∧ Topic(y)))".to_owned()));
    assert!(rendered.contains(&"∀ x, y. (skilled_in(x, y) ⇔ specialist(y, x))".to_owned()));
}

/// Figures 3 and 4: QueryPatient parses as declared and its logical form
/// has the five conjunct groups of Figure 4.
#[test]
fn figures3_and_4_query_patient() {
    let model = samples::medical_model();
    let query = model.query_class("QueryPatient").expect("declared");
    assert_eq!(query.is_a, vec!["Male", "Patient"]);
    assert_eq!(query.where_eqs, vec![("l_1".to_owned(), "l_2".to_owned())]);
    assert!(!query.is_view());
    let formula = fol::query_formula(query).to_string();
    for fragment in [
        "Male(t)",
        "Patient(t)",
        "consults(t, l_1)",
        "Female(l_1)",
        "specialist(",
        "Doctor(l_2)",
        "l_1 ≐ l_2",
        "Drug(d)",
        "takes(t, d)",
        "Aspirin",
    ] {
        assert!(
            formula.contains(fragment),
            "missing {fragment} in {formula}"
        );
    }
}

/// Figure 5: ViewPatient is a view (purely structural).
#[test]
fn figure5_view_patient_is_structural() {
    let model = samples::medical_model();
    let view = model.query_class("ViewPatient").expect("declared");
    assert!(view.is_view());
    assert_eq!(view.derived.len(), 3);
    assert_eq!(view.labels(), vec!["l_1", "l_2"]);
}

/// Figure 6: the SL axioms obtained from the structural part of the schema.
#[test]
fn figure6_schema_axioms() {
    let engine = Engine::from_source(samples::MEDICAL_SOURCE).expect("loads");
    let rendered = engine
        .translated()
        .schema
        .render(&engine.translated().vocabulary);
    for expected in [
        "Patient ⊑ Person",
        "Patient ⊑ ∀takes.Drug",
        "Patient ⊑ ∀consults.Doctor",
        "Patient ⊑ ∀suffers.Disease",
        "Patient ⊑ ∃suffers",
        "Person ⊑ ∀name.String",
        "Person ⊑ ∃name",
        "Person ⊑ (≤1 name)",
        "Doctor ⊑ ∀skilled_in.Disease",
        "skilled_in ⊑ Person × Topic",
    ] {
        assert!(rendered.contains(expected), "missing axiom {expected}");
    }
}

/// Section 3.2: the QL concepts C_Q and D_V, rendered exactly as printed in
/// the paper.
#[test]
fn section32_concepts() {
    let engine = Engine::from_source(samples::MEDICAL_SOURCE).expect("loads");
    let translated = engine.translated();
    let ctx = DisplayCtx::new(&translated.vocabulary, &translated.arena);
    let c_q = translated.query_concept("QueryPatient").expect("present");
    let d_v = translated.query_concept("ViewPatient").expect("present");
    assert_eq!(
        ctx.concept(c_q),
        "Male ⊓ Patient ⊓ ∃(consults: Female) ≐ (suffers: ⊤)(skilled_in⁻¹: Doctor)"
    );
    assert_eq!(
        ctx.concept(d_v),
        "Patient ⊓ ∃(consults: Doctor)(skilled_in: Disease) ≐ (suffers: Disease) ⊓ ∃(name: String)"
    );
}

/// Figure 11 / Theorem 4.7: the calculus detects C_Q ⊑_Σ D_V (and refutes
/// the converse), using the schema rules the paper's derivation uses.
#[test]
fn figure11_derivation() {
    let mut engine = Engine::from_source(samples::MEDICAL_SOURCE).expect("loads");
    let outcome = engine
        .check_with_trace("QueryPatient", "ViewPatient")
        .expect("checks");
    assert!(outcome.subsumed());
    assert!(!outcome.via_clash());
    let trace = outcome.trace.expect("trace requested");
    use subq::calculus::RuleId;
    // The derivation exercises all four rule groups, and in particular the
    // steps Figure 11 highlights: inverse closure (D2), path unfolding
    // (D6/D7), schema propagation (S1–S3), the necessary-name filler (S5),
    // and the path compositions (C5, C4, C1).
    for rule in [
        RuleId::D1,
        RuleId::D2,
        RuleId::D5,
        RuleId::D6,
        RuleId::D7,
        RuleId::S1,
        RuleId::S2,
        RuleId::S3,
        RuleId::S5,
        RuleId::G1,
        RuleId::G3,
        RuleId::C1,
        RuleId::C4,
        RuleId::C5,
        RuleId::C6,
    ] {
        assert!(
            trace.count_rule(rule) >= 1,
            "rule {rule} does not occur in the derivation"
        );
    }
    // The rendered trace mentions the schema-derived facts of Figure 11.
    let translated = engine.translated();
    let rendered = trace.render(&translated.vocabulary, &translated.arena);
    assert!(rendered.contains("x: Person"));
    assert!(rendered.contains("String"));

    // Proposition 4.8: individuals stay within M · N.
    let m = translated.arena.concept_size(outcome.normalized_query);
    let n = translated.arena.concept_size(outcome.normalized_view);
    assert!(outcome.stats.individuals <= m * n + 1);

    let reverse = engine
        .check_with_trace("ViewPatient", "QueryPatient")
        .expect("checks");
    assert!(!reverse.subsumed());
}

/// Proposition 3.1, executed: subsumption of the translations implies
/// containment of the answer sets on concrete database states.
#[test]
fn proposition31_answers_contained_on_states() {
    use subq::oodb::evaluate_query;
    use subq::workload::{synthetic_hospital, HospitalParams};
    let model = samples::medical_model();
    let query = model.query_class("QueryPatient").expect("declared");
    let view = model.query_class("ViewPatient").expect("declared");
    for seed in 0..5 {
        let db = synthetic_hospital(
            seed,
            HospitalParams {
                patients: 120,
                ..HospitalParams::default()
            },
        );
        let query_answers = evaluate_query(&db, query);
        let view_answers = evaluate_query(&db, view);
        assert!(
            query_answers.is_subset(&view_answers),
            "seed {seed}: answers of QueryPatient must be contained in ViewPatient"
        );
    }
}
