//! Equivalence suite for the subsumption-lattice planner: on hundreds of
//! workload-generated and random catalogs, the lattice traversal must be
//! observationally equivalent to the flat linear scan it replaced —
//!
//! * the executed answer set equals the flat-scan plan's filtered answers
//!   **and** a from-scratch `evaluate_query`;
//! * the subsuming-view set reported by the traversal is exactly the flat
//!   scan's subsumer set restricted to its maximal-specific frontier
//!   (verified against direct pairwise view-vs-view subsumption checks);
//! * the chosen views of both planners have extensions of the same
//!   (minimal) size, so neither filters through a larger set;
//! * the lattice itself satisfies its structural invariants after every
//!   batch of insertions.

use std::collections::{BTreeSet, HashMap};
use subq::dl::QueryClassDecl;
use subq::oodb::{evaluate_query, evaluate_query_over, OptimizedDatabase};
use subq::workload::{
    hierarchical_catalog, synthetic_hospital, FamilyShape, HierarchyParams, HospitalParams,
};

/// Runs the full battery of equivalence assertions for one catalog and
/// query batch.
fn check_catalog(
    mut odb: OptimizedDatabase,
    view_names: &[String],
    queries: &[QueryClassDecl],
    label: &str,
) {
    for name in view_names {
        odb.materialize_view(name)
            .unwrap_or_else(|e| panic!("{label}: materializing {name}: {e}"));
    }
    let violations = odb.catalog().lattice_violations();
    assert!(violations.is_empty(), "{label}: {violations:?}");

    for query in queries {
        let lattice = odb.plan(query);
        let flat = odb.plan_flat(query);

        // --- Frontier: the flat subsumer set restricted to its
        // maximal-specific elements, computed from direct pairwise
        // view-vs-view subsumption probes.
        let flat_set = flat.subsuming_views.clone();
        let mut strictly_below: HashMap<(usize, usize), bool> = HashMap::new();
        for (i, a) in flat_set.iter().enumerate() {
            for (j, b) in flat_set.iter().enumerate() {
                if i == j {
                    continue;
                }
                let a_in_b = odb.view_subsumes(a, b).expect("views translate");
                let b_in_a = odb.view_subsumes(b, a).expect("views translate");
                strictly_below.insert((i, j), a_in_b && !b_in_a);
            }
        }
        let expected_frontier: BTreeSet<&String> = flat_set
            .iter()
            .enumerate()
            .filter(|(j, _)| {
                // Maximal-specific: no other subsumer strictly below it.
                !(0..flat_set.len()).any(|i| i != *j && strictly_below.get(&(i, *j)) == Some(&true))
            })
            .map(|(_, name)| name)
            .collect();
        let reported: BTreeSet<&String> = lattice.subsuming_views.iter().collect();
        assert_eq!(
            reported, expected_frontier,
            "{label}: query {} frontier mismatch (flat set {flat_set:?})",
            query.name
        );

        // --- Chosen views: both planners pick a minimal extension.
        assert_eq!(
            lattice.chosen_view.is_some(),
            flat.chosen_view.is_some(),
            "{label}: query {}",
            query.name
        );
        if let (Some(l), Some(f)) = (&lattice.chosen_view, &flat.chosen_view) {
            let l_size = odb.catalog().view(l).expect("stored").len();
            let f_size = odb.catalog().view(f).expect("stored").len();
            assert_eq!(
                l_size, f_size,
                "{label}: query {} chose extensions of different size ({l} vs {f})",
                query.name
            );
        }

        // --- Answers: executed (lattice) == flat-filtered == scratch.
        let scratch = evaluate_query(odb.database(), query);
        let (executed, stats) = odb.execute(query);
        assert_eq!(
            executed, scratch,
            "{label}: query {} lattice answers differ from scratch",
            query.name
        );
        if let Some(f) = &flat.chosen_view {
            let extent = odb.catalog().view(f).expect("stored").extent;
            let flat_answers = evaluate_query_over(odb.database(), query, Some(&extent));
            assert_eq!(
                flat_answers, scratch,
                "{label}: query {} flat-plan answers differ from scratch",
                query.name
            );
            assert!(
                stats.used_view.is_some(),
                "{label}: query {} must use a view when one subsumes",
                query.name
            );
        }
    }
}

fn hierarchy_instance(seed: u64, params: HierarchyParams, label: &str) {
    let instance = hierarchical_catalog(seed, params);
    let odb = OptimizedDatabase::new(instance.db.clone()).expect("translates");
    check_catalog(odb, &instance.view_names, &instance.queries, label);
}

/// 160 deterministic-shape catalogs: every family × sizes × seeds.
#[test]
fn workload_families_are_plan_equivalent() {
    for shape in [
        FamilyShape::Chain,
        FamilyShape::Tree,
        FamilyShape::Diamond,
        FamilyShape::Flat,
        FamilyShape::Random,
    ] {
        for views in [3usize, 6, 10, 14] {
            for seed in 0..8u64 {
                let params = HierarchyParams {
                    shape,
                    views,
                    members_per_class: 2,
                    queries: 5,
                    intersect_percent: 0,
                    duplicate_percent: 0,
                };
                hierarchy_instance(
                    seed,
                    params,
                    &format!("{}/views={views}/seed={seed}", shape.name()),
                );
            }
        }
    }
}

/// 60 random catalogs with intersection views and Σ-equivalent duplicate
/// views (peer collapse on multi-parent DAGs).
#[test]
fn random_catalogs_with_intersections_and_duplicates_are_plan_equivalent() {
    for views in [5usize, 9, 13] {
        for seed in 100..120u64 {
            let params = HierarchyParams {
                shape: FamilyShape::Random,
                views,
                members_per_class: 2,
                queries: 5,
                intersect_percent: 40,
                duplicate_percent: 25,
            };
            hierarchy_instance(seed, params, &format!("random+/views={views}/seed={seed}"));
        }
    }
}

/// Medical catalogs over synthetic hospital states: real derived-path and
/// `where`-clause concepts (ViewPatient) mixed with trivial class views,
/// growing subsets of the catalog, and the paper's QueryPatient plus
/// structural queries as the incoming workload.
#[test]
fn medical_catalog_subsets_are_plan_equivalent() {
    let all_views = [
        "ViewPatient",
        "Person",
        "Patient",
        "Doctor",
        "Male",
        "Female",
        "Drug",
        "Disease",
        "Topic",
        "String",
    ];
    let model = subq::dl::samples::medical_model();
    let mut queries: Vec<QueryClassDecl> = vec![
        model.query_class("QueryPatient").expect("declared").clone(),
        model.query_class("ViewPatient").expect("declared").clone(),
    ];
    for (name, classes) in [
        ("AllPatients", vec!["Patient"]),
        ("AllFemales", vec!["Female"]),
        ("FemalePatients", vec!["Female", "Patient"]),
        ("MaleDoctors", vec!["Male", "Doctor"]),
    ] {
        queries.push(QueryClassDecl {
            name: name.into(),
            is_a: classes.into_iter().map(str::to_owned).collect(),
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        });
    }
    let mut checked = 0usize;
    for seed in 0..5u64 {
        let db = synthetic_hospital(
            seed,
            HospitalParams {
                patients: 120,
                view_match_percent: 25,
                query_match_percent: 50,
                ..HospitalParams::default()
            },
        );
        // Growing prefixes of the catalog, and a rotated order per seed so
        // different insertion sequences classify the same sets.
        for take in [2usize, 4, 7, 10] {
            let names: Vec<String> = (0..take)
                .map(|i| all_views[(i + seed as usize) % all_views.len()].to_owned())
                .collect();
            let odb = OptimizedDatabase::new(db.clone()).expect("translates");
            check_catalog(
                odb,
                &names,
                &queries,
                &format!("medical/seed={seed}/n={take}"),
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 20);
}
