//! Crash-during-serve: live traffic over a `FaultyBackend`-backed
//! store, the process "dies" at scripted WAL byte offsets, and a fresh
//! `OptimizedDatabase::open` + `Server::start` must bring reconnecting
//! clients back to **exactly** the last committed boundary — never
//! losing an acknowledged commit (the server only acks after the
//! batch's fsync) and never inventing a phantom one.
//!
//! Determinism makes the sweep exact: a single driving client applies
//! the trace's transactions sequentially, so the writer handles batches
//! of one and the WAL byte stream is identical to an uncrashed golden
//! run over the same trace. `crash_points` over the golden WAL then
//! yields offsets that are meaningful in every crashed re-run.

use std::sync::Arc;
use std::time::Duration;
use subq_oodb::durable::wal::WAL_FILE;
use subq_oodb::{evaluate_query, Database, DurableOptions, FaultyBackend, OptimizedDatabase};
use subq_server::{
    churn_txn_request, view_query, Client, ErrorCode, Request, Response, Server, ServerConfig,
};
use subq_workload::{churn_trace, crash_points, ChurnParams, ChurnTrace};

fn config() -> ServerConfig {
    ServerConfig {
        workers: 1,
        write_queue: 16,
        ..ServerConfig::default()
    }
}

/// Opens `backend` durably (genesis on first use), materializes the
/// trace's views, checkpoints so every image carries the view catalog,
/// and starts serving.
fn durable_server(trace: &ChurnTrace, backend: Arc<FaultyBackend>) -> Server {
    let mut odb = OptimizedDatabase::open(backend, DurableOptions { group_commit: 8 }, || {
        trace.db.clone()
    })
    .expect("genesis open");
    for name in &trace.view_names {
        odb.materialize_view(name).expect("materializes");
    }
    odb.checkpoint().expect("checkpoint after materialization");
    Server::start(odb, config()).expect("binds loopback")
}

/// Scratch replay of the committed prefix ending at `version`.
fn scratch_at(trace: &ChurnTrace, committed: &[u64], version: u64) -> Database {
    let idx = committed
        .iter()
        .position(|&c| c == version)
        .unwrap_or_else(|| panic!("{version} is not a committed boundary of {committed:?}"));
    let mut db = trace.db.clone();
    for txn in &trace.transactions[..idx] {
        for op in txn {
            op.apply(&mut db);
        }
    }
    assert_eq!(db.data_version(), version, "scratch replay drift");
    db
}

fn expected_names(trace: &ChurnTrace, db: &Database, view: usize) -> Vec<String> {
    let mut names: Vec<String> = evaluate_query(db, &view_query(trace, view))
        .iter()
        .map(|id| db.object_name(*id).to_owned())
        .collect();
    names.sort();
    names
}

/// Checks that a server over `odb` shows exactly boundary `version`.
fn assert_serves_boundary(
    odb: OptimizedDatabase,
    trace: &ChurnTrace,
    version: u64,
    scratch: &Database,
) {
    let server = Server::start(odb, config()).expect("restarts");
    let mut client = Client::connect(server.addr()).expect("reconnects");
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    match client.request(&Request::Ping).expect("pongs") {
        Response::Pong { version: v } => assert_eq!(v, version, "recovered version drift"),
        other => panic!("expected PONG, got {other:?}"),
    }
    for view in 0..trace.view_names.len() {
        match client
            .request(&Request::Query(view_query(trace, view)))
            .expect("answers after recovery")
        {
            Response::Answers {
                version: answered_at,
                names,
            } => {
                assert_eq!(answered_at, version, "view {view} answered off-boundary");
                let mut sorted = names;
                sorted.sort();
                assert_eq!(
                    sorted,
                    expected_names(trace, scratch, view),
                    "view {view} disagrees with scratch replay at {version}"
                );
            }
            other => panic!("expected ANSWERS, got {other:?}"),
        }
    }
    client.close().expect("graceful BYE");
    server.shutdown();
}

#[test]
fn acknowledged_commits_survive_every_scripted_wal_crash() {
    let seed = 0xC4A5;
    let params = ChurnParams {
        transactions: 12,
        ops_per_transaction: 5,
        ..ChurnParams::default()
    };
    let trace = churn_trace(seed, params);
    let base = trace.db.data_version();

    // Golden run: the same single-client serve, uncrashed, to learn the
    // committed boundaries and the exact WAL byte stream.
    let golden_backend = Arc::new(FaultyBackend::new());
    let server = durable_server(&trace, golden_backend.clone());
    let mut client = Client::connect(server.addr()).expect("connects");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut committed = vec![base];
    for (t, txn) in trace.transactions.iter().enumerate() {
        match client.request(&churn_txn_request(txn)).expect("commits") {
            Response::Committed { version } => committed.push(version),
            other => panic!("txn {t}: expected COMMITTED, got {other:?}"),
        }
    }
    client.close().expect("graceful BYE");
    server.shutdown();
    let wal = golden_backend
        .surviving_files()
        .remove(WAL_FILE)
        .expect("WAL exists");
    assert!(!wal.is_empty(), "the golden run must log transactions");

    // Crash the serve at a spread of torn offsets across the WAL, plus
    // its full length (= no crash ever fires).
    let mut cuts = crash_points(&wal, 1, seed);
    let step = cuts.len().div_ceil(9).max(1);
    cuts = cuts.into_iter().step_by(step).collect();
    cuts.push(wal.len());

    for cut in cuts {
        let backend = Arc::new(FaultyBackend::new());
        let server = durable_server(&trace, backend.clone());
        // Arm after setup: only serve-phase WAL appends consume budget.
        backend.crash_after_bytes(cut as u64);

        let mut client = Client::connect(server.addr()).expect("connects");
        client.set_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut acked = base;
        for txn in &trace.transactions {
            match client.request(&churn_txn_request(txn)) {
                Ok(Response::Committed { version }) => acked = version,
                // The writer hit the scripted fault: a typed internal
                // error for in-flight work, then the connection drops.
                Ok(Response::Error {
                    code: ErrorCode::Internal,
                    ..
                }) => break,
                Ok(other) => panic!("cut={cut}: unexpected reply {other:?}"),
                Err(_) => break,
            }
        }
        drop(client);
        if cut < wal.len() {
            assert!(server.crashed(), "cut={cut}: the fault never surfaced");
        }
        server.shutdown();

        // The process is gone; the surviving bytes recover.
        backend.revive();
        let recovered = OptimizedDatabase::open(backend, DurableOptions::default(), || {
            panic!("cut={cut}: an image exists, genesis must not run")
        })
        .unwrap_or_else(|e| panic!("cut={cut}: recovery failed: {e}"));
        let version = recovered.database().data_version();
        assert!(
            version >= acked,
            "cut={cut}: lost acknowledged commit {acked}, recovered only {version}"
        );
        assert!(
            committed.contains(&version),
            "cut={cut}: {version} is not a committed boundary of {committed:?}"
        );

        // Reconnecting clients see exactly that boundary.
        let scratch = scratch_at(&trace, &committed, version);
        assert_serves_boundary(recovered, &trace, version, &scratch);
    }
}

#[test]
fn a_clean_shutdown_reopens_at_the_final_boundary() {
    let trace = churn_trace(9, ChurnParams::default());
    let backend = Arc::new(FaultyBackend::new());
    let server = durable_server(&trace, backend.clone());
    let mut client = Client::connect(server.addr()).expect("connects");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut last = trace.db.data_version();
    let mut committed = vec![last];
    for txn in &trace.transactions {
        match client.request(&churn_txn_request(txn)).expect("commits") {
            Response::Committed { version } => {
                last = version;
                committed.push(version);
            }
            other => panic!("expected COMMITTED, got {other:?}"),
        }
    }
    client.close().expect("graceful BYE");
    server.shutdown();

    let recovered = OptimizedDatabase::open(backend, DurableOptions::default(), || unreachable!())
        .expect("clean reopen");
    assert_eq!(recovered.database().data_version(), last);
    let scratch = scratch_at(&trace, &committed, last);
    assert_serves_boundary(recovered, &trace, last, &scratch);
}
