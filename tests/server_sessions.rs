//! Multi-session equivalence for `subqd`: N loopback client threads run
//! mixed churn + query traffic concurrently, and **every** answer any
//! session received must match a scratch re-evaluation of its view at a
//! published transaction boundary. This is the concurrency-equivalence
//! oracle of PR 5 pushed across the wire: the server's snapshot
//! versions give every reply a precise place in history, so after the
//! run we can sort the acknowledged commits by version, replay them on
//! a scratch `Database`, and demand that each `ANSWERS v` equals
//! `evaluate_query` at exactly boundary `v`.
//!
//! One subtlety the oracle handles head-on: a transaction whose ops all
//! happen to be no-ops acknowledges the *unchanged* version, so two
//! commits can tie. Within a tie group the true history is "the
//! effective transaction first, then no-ops", and the replay searches
//! the (tiny) group for the permutation where every prefix lands on the
//! acknowledged version — any other order is rejected, any missing
//! order is a server bug.

use std::sync::Mutex;
use std::time::Duration;
use subq_oodb::{evaluate_query, Database, OptimizedDatabase};
use subq_server::{churn_txn_request, view_query, Client, Request, Response, Server, ServerConfig};
use subq_workload::traffic::{client_schedule, TrafficOp, TrafficParams};
use subq_workload::{churn_trace, ChurnParams, ChurnTrace};

fn serve(seed: u64, params: ChurnParams, config: ServerConfig) -> (Server, ChurnTrace) {
    let trace = churn_trace(seed, params);
    let mut odb = OptimizedDatabase::new(trace.db.clone()).expect("translates");
    for name in &trace.view_names {
        odb.materialize_view(name).expect("materializes");
    }
    let server = Server::start(odb, config).expect("binds loopback");
    (server, trace)
}

fn answer_names(trace: &ChurnTrace, db: &Database, view: usize) -> Vec<String> {
    let query = view_query(trace, view);
    let mut names: Vec<String> = evaluate_query(db, &query)
        .iter()
        .map(|id| db.object_name(*id).to_owned())
        .collect();
    names.sort();
    names
}

/// What one session observed, in its own order.
#[derive(Debug)]
enum Event {
    Commit {
        version: u64,
        txn: usize,
    },
    Answer {
        version: u64,
        view: usize,
        names: Vec<String>,
        /// The session's last acknowledged commit version when the
        /// query was sent — the read-your-writes floor.
        floor: u64,
    },
}

/// Applies commit tie-group `group` (indices into `commits`) to `db`,
/// searching for the permutation in which every prefix lands exactly on
/// the acknowledged version. Panics if no permutation works: then some
/// acknowledged version was never a published boundary of this history.
fn apply_tie_group(
    db: &mut Database,
    trace: &ChurnTrace,
    group: &[usize],
    commits: &[(u64, usize)],
) {
    let version = commits[group[0]].0;
    if group.len() == 1 {
        for op in &trace.transactions[commits[group[0]].1] {
            op.apply(db);
        }
        assert_eq!(
            db.data_version(),
            version,
            "replaying txn {} did not land on its acknowledged version",
            commits[group[0]].1
        );
        return;
    }
    // Tie: at most one member is effective and must come first; the
    // rest are no-ops at `version` and commute. Search permutations on
    // clones (groups are tiny — ties require a fully no-op txn).
    fn search(
        db: &Database,
        trace: &ChurnTrace,
        version: u64,
        remaining: &[usize],
        commits: &[(u64, usize)],
    ) -> Option<Database> {
        if remaining.is_empty() {
            return Some(db.clone());
        }
        for (i, &pick) in remaining.iter().enumerate() {
            let mut attempt = db.clone();
            for op in &trace.transactions[commits[pick].1] {
                op.apply(&mut attempt);
            }
            if attempt.data_version() != version {
                continue;
            }
            let rest: Vec<usize> = remaining
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| *c)
                .collect();
            if let Some(done) = search(&attempt, trace, version, &rest, commits) {
                return Some(done);
            }
        }
        None
    }
    *db = search(db, trace, version, group, commits)
        .unwrap_or_else(|| panic!("no replay order of tied commits reaches version {version}"));
}

/// Replays all `commits` in acknowledged-version order, checking every
/// recorded answer against scratch re-evaluation at its boundary.
fn check_equivalence(trace: &ChurnTrace, events: Vec<Event>) {
    let base = trace.db.data_version();
    let mut commits: Vec<(u64, usize)> = Vec::new();
    let mut answers: Vec<(u64, usize, Vec<String>, u64)> = Vec::new();
    for event in events {
        match event {
            Event::Commit { version, txn } => commits.push((version, txn)),
            Event::Answer {
                version,
                view,
                names,
                floor,
            } => answers.push((version, view, names, floor)),
        }
    }
    commits.sort_unstable();
    answers.sort_by_key(|a| a.0);
    let boundaries: std::collections::BTreeSet<u64> = std::iter::once(base)
        .chain(commits.iter().map(|c| c.0))
        .collect();

    let mut db = trace.db.clone();
    let mut next = 0usize;
    let mut checked = 0usize;
    for (version, view, names, floor) in answers {
        assert!(
            boundaries.contains(&version),
            "ANSWERS at version {version}, which no commit ever published"
        );
        assert!(
            version >= floor,
            "read-your-writes violated: answered at {version} after an ack at {floor}"
        );
        while next < commits.len() && commits[next].0 <= version {
            // Collect the whole tie group at this version.
            let tied = commits[next].0;
            let mut group = Vec::new();
            while next < commits.len() && commits[next].0 == tied {
                group.push(next);
                next += 1;
            }
            apply_tie_group(&mut db, trace, &group, &commits);
        }
        assert_eq!(
            db.data_version(),
            version,
            "scratch replay drifted from the published boundary"
        );
        let mut sorted = names;
        sorted.sort();
        assert_eq!(
            sorted,
            answer_names(trace, &db, view),
            "view {view} answer at boundary {version} disagrees with scratch re-evaluation"
        );
        checked += 1;
    }
    assert!(checked > 0, "the run never exercised a query");
}

#[test]
fn single_session_answers_track_every_boundary_exactly() {
    let params = ChurnParams {
        transactions: 16,
        ..ChurnParams::default()
    };
    let (server, trace) = serve(23, params, ServerConfig::default());
    let mut scratch = trace.db.clone();
    let mut client = Client::connect(server.addr()).expect("connects");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    for (t, txn) in trace.transactions.iter().enumerate() {
        let version = match client.request(&churn_txn_request(txn)).expect("commits") {
            Response::Committed { version } => version,
            other => panic!("txn {t}: expected COMMITTED, got {other:?}"),
        };
        for op in txn {
            op.apply(&mut scratch);
        }
        assert_eq!(scratch.data_version(), version, "txn {t} version drift");
        for view in 0..trace.view_names.len() {
            match client
                .request(&Request::Query(view_query(&trace, view)))
                .expect("answers")
            {
                Response::Answers {
                    version: answered_at,
                    names,
                } => {
                    assert_eq!(answered_at, version, "txn {t} view {view}: stale answer");
                    let mut sorted = names;
                    sorted.sort();
                    assert_eq!(
                        sorted,
                        answer_names(&trace, &scratch, view),
                        "txn {t} view {view}"
                    );
                }
                other => panic!("expected ANSWERS, got {other:?}"),
            }
        }
    }
    client.close().expect("graceful BYE");
    server.shutdown();
}

#[test]
fn four_concurrent_sessions_agree_with_scratch_reevaluation() {
    let params = ChurnParams {
        transactions: 24,
        ops_per_transaction: 5,
        ..ChurnParams::default()
    };
    let config = ServerConfig {
        workers: 2,
        write_queue: 8,
        ..ServerConfig::default()
    };
    let (server, trace) = serve(71, params, config);
    let addr = server.addr();
    let clients = 4usize;
    let events = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for c in 0..clients {
            let trace = &trace;
            let events = &events;
            scope.spawn(move || {
                let schedule = client_schedule(
                    0xBEEF,
                    c,
                    clients,
                    trace.transactions.len(),
                    trace.view_names.len(),
                    TrafficParams {
                        query_percent: 50,
                        ops: 40,
                    },
                );
                let mut client = Client::connect(addr).expect("connects");
                client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                let mut mine = Vec::new();
                let mut floor = 0u64;
                for op in schedule {
                    match op {
                        TrafficOp::Txn(txn) => loop {
                            match client
                                .request(&churn_txn_request(&trace.transactions[txn]))
                                .expect("commit round trip")
                            {
                                Response::Committed { version } => {
                                    floor = floor.max(version);
                                    mine.push(Event::Commit { version, txn });
                                    break;
                                }
                                Response::Busy { .. } => {
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                                other => panic!("client {c}: expected COMMITTED, got {other:?}"),
                            }
                        },
                        TrafficOp::Query(view) => {
                            match client
                                .request(&Request::Query(view_query(trace, view)))
                                .expect("query round trip")
                            {
                                Response::Answers { version, names } => {
                                    mine.push(Event::Answer {
                                        version,
                                        view,
                                        names,
                                        floor,
                                    });
                                }
                                other => panic!("client {c}: expected ANSWERS, got {other:?}"),
                            }
                        }
                    }
                }
                client.close().expect("graceful BYE");
                events.lock().unwrap().extend(mine);
            });
        }
    });
    server.shutdown();
    check_equivalence(&trace, events.into_inner().unwrap());
}
