//! Backpressure and admission control: overload must surface as typed
//! `BUSY` replies and bounded buffers, never as unbounded queueing, a
//! wedged worker, or a starved writer.
//!
//! Two overload shapes are drilled:
//!
//! * **write flood** — several sessions pipeline transactions far faster
//!   than the writer drains its size-1 queue. Every request still gets
//!   exactly one in-order reply (`COMMITTED` or `BUSY`), and a
//!   well-behaved client that retries on `BUSY` finishes its whole
//!   schedule: admission control sheds load, it does not starve.
//! * **slow reader** — a session that pipelines hundreds of queries and
//!   never reads its socket. The server buffers replies only up to
//!   `outbound_limit`, then stops *reading* that session (the throttle
//!   hurts only the slow session), and the idle timeout eventually
//!   reaps it — all while a healthy session on the same single worker
//!   keeps doing full round trips.

use std::io::Read;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::time::{Duration, Instant};
use subq_oodb::OptimizedDatabase;
use subq_server::{view_query, Client, Request, Response, Server, ServerConfig, TxnOp};
use subq_workload::{churn_trace, ChurnParams, ChurnTrace};

fn serve(params: ChurnParams, config: ServerConfig) -> (Server, ChurnTrace) {
    let trace = churn_trace(5150, params);
    let mut odb = OptimizedDatabase::new(trace.db.clone()).expect("translates");
    for name in &trace.view_names {
        odb.materialize_view(name).expect("materializes");
    }
    let server = Server::start(odb, config).expect("binds loopback");
    (server, trace)
}

#[test]
fn write_floods_get_typed_busy_and_never_starve_the_writer() {
    let (server, _) = serve(
        ChurnParams {
            transactions: 0,
            ..ChurnParams::default()
        },
        ServerConfig {
            workers: 2,
            write_queue: 1,
            inbox_limit: 64,
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    let flooders = 4usize;
    let per_flooder = 100usize;
    let (flood_done, flood_counts) = mpsc::channel::<(usize, usize)>();
    std::thread::scope(|scope| {
        for c in 0..flooders {
            let done = flood_done.clone();
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                // Pipeline the whole flood, then read every reply: one
                // reply per request, in order, COMMITTED or BUSY — a
                // shed request is *answered*, not dropped.
                for i in 0..per_flooder {
                    client
                        .send(&Request::Txn(vec![TxnOp::Add {
                            object: format!("flood_{c}_{i}"),
                        }]))
                        .expect("pipelines");
                }
                let (mut committed, mut busy) = (0usize, 0usize);
                for i in 0..per_flooder {
                    match client.receive().expect("one reply per request") {
                        Response::Committed { .. } => committed += 1,
                        Response::Busy { .. } => busy += 1,
                        other => panic!("flooder {c} reply {i}: {other:?}"),
                    }
                }
                client.close().expect("graceful BYE");
                done.send((committed, busy)).unwrap();
            });
        }
        // The well-behaved client: retries on BUSY and must finish its
        // whole schedule while the flood rages.
        scope.spawn(move || {
            let mut client = Client::connect(addr).expect("connects");
            client.set_timeout(Some(Duration::from_secs(30))).unwrap();
            for i in 0..30 {
                loop {
                    match client
                        .request(&Request::Txn(vec![TxnOp::Add {
                            object: format!("steady_{i}"),
                        }]))
                        .expect("round trip")
                    {
                        Response::Committed { .. } => break,
                        Response::Busy { .. } => {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                        other => panic!("steady client: {other:?}"),
                    }
                }
            }
            client.close().expect("graceful BYE");
        });
    });
    drop(flood_done);
    let (mut committed, mut busy) = (0usize, 0usize);
    while let Ok((c, b)) = flood_counts.recv() {
        committed += c;
        busy += b;
    }
    assert_eq!(committed + busy, flooders * per_flooder, "replies lost");
    assert!(
        busy > 0,
        "a size-1 queue under a 4-way flood must shed load"
    );
    assert!(committed > 0, "the writer made progress under the flood");
    let stats = server.stats();
    assert!(stats.busy_replies.load(Ordering::Relaxed) >= busy as u64);
    // The server is healthy after the storm.
    let mut client = Client::connect(addr).expect("connects");
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    assert!(matches!(
        client.request(&Request::Ping).expect("pong"),
        Response::Pong { .. }
    ));
    client.close().expect("graceful BYE");
    server.shutdown();
}

#[test]
fn slow_readers_throttle_only_themselves_and_get_reaped() {
    // Many objects make the view answers big, so a few hundred unread
    // replies vastly exceed the outbound cap.
    let (server, trace) = serve(
        ChurnParams {
            objects: 300,
            transactions: 0,
            ..ChurnParams::default()
        },
        ServerConfig {
            workers: 1,
            outbound_limit: 4096,
            idle_timeout: Duration::from_millis(600),
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    // The slow reader: pipelines 500 queries and never reads a byte.
    let mut slow = Client::connect(addr).expect("connects");
    slow.set_timeout(Some(Duration::from_secs(30))).unwrap();
    for i in 0..500 {
        slow.send(&Request::Query(view_query(
            &trace,
            i % trace.view_names.len(),
        )))
        .expect("pipelines");
    }
    // Meanwhile the same single worker serves a healthy session at full
    // speed: the throttle is per-session, not per-worker.
    let mut healthy = Client::connect(addr).expect("connects");
    healthy.set_timeout(Some(Duration::from_secs(10))).unwrap();
    for i in 0..20 {
        match healthy
            .request(&Request::Query(view_query(
                &trace,
                i % trace.view_names.len(),
            )))
            .expect("healthy session keeps round-tripping")
        {
            Response::Answers { .. } => {}
            other => panic!("expected ANSWERS, got {other:?}"),
        }
    }
    // The slow session makes no progress and is reaped by the idle
    // timeout; draining its socket ends in a close, not a hang.
    let stream = slow.stream_mut();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut drained = 0usize;
    let mut buf = [0u8; 4096];
    loop {
        assert!(Instant::now() < deadline, "slow session never closed");
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => drained += n,
            Err(_) => break,
        }
    }
    assert!(
        server.stats().idle_closes.load(Ordering::Relaxed) >= 1,
        "the stalled session should be an idle close"
    );
    // What we drained is what was buffered when the reap hit — far less
    // than 500 full answers: the server never queued unboundedly.
    println!("slow session drained {drained} bytes after reap");
    // And the server happily accepts fresh work afterward.
    for i in 0..trace.view_names.len() {
        match healthy
            .request(&Request::Query(view_query(&trace, i)))
            .expect("still serving")
        {
            Response::Answers { .. } => {}
            other => panic!("expected ANSWERS, got {other:?}"),
        }
    }
    healthy.close().expect("graceful BYE");
    server.shutdown();
}
