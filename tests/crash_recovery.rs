//! Kill-and-recover property suite for the durable storage engine: over
//! a hundred seeded churn traces, a golden run commits every transaction
//! through the write-ahead log, and the disk state is then re-opened
//! from **every** prefix a crash could leave behind — each record
//! boundary, torn cuts inside each record (mid-header, one byte short,
//! seeded interior offsets), and seeded single-bit flips modelling
//! silent corruption. Every recovery must
//!
//! * never panic,
//! * land exactly on the committed-transaction boundary implied by the
//!   surviving bytes (no phantom transactions, no lost durable commits),
//! * reproduce the store bit-identically to a from-scratch replay of the
//!   committed prefix (objects, class extents, attribute indexes both
//!   directions, versions), and
//! * restore every checkpointed view to the extent a scratch evaluation
//!   produces.
//!
//! Satellite regressions ride along: the in-memory delta-log cap must
//! never outrun the durable floor (a transaction bigger than the cap
//! survives recovery), the PR 5 routing watermark stays correct when
//! committing across a recovery boundary, and retraction-heavy traces
//! replay downward isA propagation and attribute-index shrinkage
//! exactly.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use subq::oodb::durable::codec::decode_records;
use subq::oodb::durable::record_boundaries;
use subq::oodb::durable::wal::WAL_FILE;
use subq::oodb::{
    evaluate_query, Database, DurableError, DurableOptions, FaultyBackend, OptimizedDatabase,
};
use subq::workload::{
    churn_trace, crash_points, flip_points, ChurnParams, ChurnTrace, FamilyShape,
};

/// Everything the golden (uncrashed) run leaves behind.
struct Golden {
    /// The backend's files after the run: the newest checkpoint image
    /// and the WAL.
    files: HashMap<String, Vec<u8>>,
    /// `data_version` before any transaction and after each one — the
    /// only versions a recovery may land on.
    committed: Vec<u64>,
}

/// Replays a churn trace through a durably opened database: open
/// (genesis), materialize the views, checkpoint (so every image carries
/// the view catalog), commit each transaction, optionally checkpoint
/// again mid-run, and sync the tail.
fn golden_run(
    seed: u64,
    params: ChurnParams,
    group_commit: usize,
    checkpoint_after: Option<usize>,
) -> Golden {
    let trace = churn_trace(seed, params);
    let backend = Arc::new(FaultyBackend::new());
    let mut odb = OptimizedDatabase::open(backend.clone(), DurableOptions { group_commit }, || {
        trace.db.clone()
    })
    .expect("genesis open");
    for name in &trace.view_names {
        odb.materialize_view(name).expect("materializes");
    }
    odb.checkpoint().expect("checkpoint after materialization");
    let mut committed = vec![odb.database().data_version()];
    for (t, txn) in trace.transactions.iter().enumerate() {
        odb.commit_durable(|db| {
            for op in txn {
                op.apply(db);
            }
        })
        .expect("commit");
        committed.push(odb.database().data_version());
        if checkpoint_after == Some(t) {
            odb.checkpoint().expect("mid-run checkpoint");
        }
    }
    odb.sync_durable().expect("final sync");

    // The golden run's own counters must be non-trivial.
    let stats = odb.durability_stats().expect("opened durably");
    let nonempty = committed.windows(2).filter(|w| w[1] > w[0]).count() as u64;
    assert_eq!(stats.wal_records, nonempty, "one WAL record per real txn");
    assert!(stats.wal_bytes > 0);
    assert!(stats.checkpoints >= 2, "genesis + post-materialization");
    if nonempty > 0 {
        assert!(stats.fsyncs >= 1);
    }

    Golden {
        files: backend.surviving_files(),
        committed,
    }
}

/// The version of the newest checkpoint image on the backend.
fn newest_image_version(files: &HashMap<String, Vec<u8>>) -> u64 {
    files
        .keys()
        .filter_map(|name| {
            name.strip_prefix("checkpoint_")?
                .strip_suffix(".img")?
                .parse()
                .ok()
        })
        .max()
        .expect("an image exists after any durable open")
}

/// The disk state a crash at WAL byte offset `wal_prefix` leaves.
fn crashed_files(files: &HashMap<String, Vec<u8>>, wal_prefix: usize) -> HashMap<String, Vec<u8>> {
    let mut out = files.clone();
    out.get_mut(WAL_FILE)
        .expect("the WAL file exists")
        .truncate(wal_prefix);
    out
}

/// From-scratch replay of the committed prefix ending at `version`:
/// re-applies whole transactions to a fresh copy of the initial state.
fn scratch_at(trace: &ChurnTrace, committed: &[u64], version: u64, label: &str) -> Database {
    let idx = committed
        .iter()
        .position(|&c| c == version)
        .unwrap_or_else(|| panic!("{label}: version {version} is not a committed boundary"));
    let mut db = trace.db.clone();
    for txn in &trace.transactions[..idx] {
        for op in txn {
            op.apply(&mut db);
        }
    }
    assert_eq!(db.data_version(), version, "{label}: scratch replay drift");
    db
}

/// Bit-identical store equivalence: versions, object names, every class
/// extent, and every attribute index in both directions.
fn assert_state_matches(label: &str, recovered: &Database, expect: &Database) {
    assert_eq!(
        recovered.data_version(),
        expect.data_version(),
        "{label}: data version"
    );
    assert_eq!(
        recovered.schema_version(),
        expect.schema_version(),
        "{label}: schema version"
    );
    assert_eq!(recovered.model(), expect.model(), "{label}: model");
    let names = |db: &Database| -> BTreeSet<String> {
        db.objects()
            .map(|o| db.object_name(o).to_string())
            .collect()
    };
    assert_eq!(names(recovered), names(expect), "{label}: object names");
    for class in expect.class_names().map(str::to_string).collect::<Vec<_>>() {
        assert_eq!(
            recovered.class_extent(&class),
            expect.class_extent(&class),
            "{label}: extent of {class}"
        );
    }
    for attr in expect
        .attribute_names()
        .map(str::to_string)
        .collect::<Vec<_>>()
    {
        assert_eq!(
            recovered.attr_pairs(&attr),
            expect.attr_pairs(&attr),
            "{label}: pairs of {attr}"
        );
    }
}

/// Re-opens the crashed disk state and checks the full recovery
/// contract against the golden history.
fn check_recovery(
    label: &str,
    files: HashMap<String, Vec<u8>>,
    trace: &ChurnTrace,
    golden: &Golden,
) {
    let wal = files.get(WAL_FILE).expect("the WAL file exists");
    let image_version = newest_image_version(&files);
    let (records, valid) = decode_records(wal);
    let expected = records.iter().fold(image_version, |v, r| {
        v.max(r.start_version + r.deltas.len() as u64)
    });
    let truncated = (wal.len() - valid) as u64;
    let replayed = records.len() as u64;

    let backend = Arc::new(FaultyBackend::with_files(files));
    let odb = OptimizedDatabase::open(backend, DurableOptions::default(), || {
        panic!("{label}: an image exists, genesis must not run")
    })
    .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"));

    // No phantom transactions, no lost durable commits: the recovered
    // version is exactly what the surviving bytes imply, and it is a
    // committed-transaction boundary.
    assert_eq!(
        odb.database().data_version(),
        expected,
        "{label}: recovered version"
    );
    assert!(
        golden.committed.contains(&expected),
        "{label}: {expected} is not a transaction boundary of {:?}",
        golden.committed
    );

    // The store is bit-identical to a scratch replay of the prefix.
    let scratch = scratch_at(trace, &golden.committed, expected, label);
    assert_state_matches(label, odb.database(), &scratch);

    // Every checkpointed view is restored and exact.
    for name in &trace.view_names {
        let view = odb
            .catalog()
            .view(name)
            .unwrap_or_else(|| panic!("{label}: view {name} lost in recovery"));
        let fresh = evaluate_query(odb.database(), &view.definition);
        assert_eq!(*view.extent, fresh, "{label}: view {name} stale");
        assert_eq!(
            fresh,
            evaluate_query(&scratch, &view.definition),
            "{label}: view {name} disagrees with scratch"
        );
    }

    // The recovery counters report exactly what happened.
    let stats = odb.durability_stats().expect("opened durably");
    assert_eq!(stats.recovered_records, replayed, "{label}: replay count");
    assert_eq!(
        stats.truncated_tail_bytes, truncated,
        "{label}: truncated tail"
    );
}

/// One trace, every torn-write crash point.
fn sweep_torn_writes(
    seed: u64,
    params: ChurnParams,
    group_commit: usize,
    checkpoint_after: Option<usize>,
    label: &str,
) {
    let golden = golden_run(seed, params, group_commit, checkpoint_after);
    let trace = churn_trace(seed, params);
    let wal = golden.files.get(WAL_FILE).expect("the WAL file exists");
    for cut in crash_points(wal, 1, seed) {
        check_recovery(
            &format!("{label}/cut={cut}"),
            crashed_files(&golden.files, cut),
            &trace,
            &golden,
        );
    }
}

/// The tentpole property: 105 traces (five shapes × three durability
/// configurations × seven seeds), each recovered at every record
/// boundary and every torn cut inside every record.
#[test]
fn recovery_is_exact_at_every_torn_write_across_105_churn_traces() {
    let mut traces = 0usize;
    for shape in [
        FamilyShape::Chain,
        FamilyShape::Tree,
        FamilyShape::Diamond,
        FamilyShape::Flat,
        FamilyShape::Random,
    ] {
        for (config, group_commit, checkpoint_after, params) in [
            (
                "sync-every-commit",
                1,
                None,
                ChurnParams {
                    shape,
                    classes: 4,
                    views: 5,
                    path_view_percent: 0,
                    objects: 14,
                    transactions: 5,
                    ops_per_transaction: 3,
                    retract_percent: 40,
                },
            ),
            (
                "group-commit",
                3,
                None,
                ChurnParams {
                    shape,
                    classes: 5,
                    views: 6,
                    path_view_percent: 50,
                    objects: 18,
                    transactions: 6,
                    ops_per_transaction: 4,
                    retract_percent: 70,
                },
            ),
            (
                "mid-run-checkpoint",
                2,
                Some(2),
                ChurnParams {
                    shape,
                    classes: 4,
                    views: 5,
                    path_view_percent: 30,
                    objects: 16,
                    transactions: 6,
                    ops_per_transaction: 3,
                    retract_percent: 50,
                },
            ),
        ] {
            for seed in 0..7u64 {
                sweep_torn_writes(
                    seed,
                    params,
                    group_commit,
                    checkpoint_after,
                    &format!("{}/{config}/seed={seed}", shape.name()),
                );
                traces += 1;
            }
        }
    }
    assert_eq!(traces, 105);
}

/// Silent corruption: a single flipped bit anywhere in the WAL must
/// truncate the log at the poisoned record — cleanly, to a committed
/// boundary, never a panic, never a half-applied record.
#[test]
fn bit_flips_anywhere_in_the_log_truncate_cleanly() {
    let params = ChurnParams {
        shape: FamilyShape::Tree,
        classes: 5,
        views: 6,
        path_view_percent: 40,
        objects: 20,
        transactions: 8,
        ops_per_transaction: 5,
        retract_percent: 50,
    };
    for seed in 20..30u64 {
        let golden = golden_run(seed, params, 1, None);
        let trace = churn_trace(seed, params);
        let wal = golden.files.get(WAL_FILE).expect("the WAL file exists");
        for (offset, bit) in flip_points(wal.len(), 24, seed) {
            let mut files = golden.files.clone();
            files.get_mut(WAL_FILE).expect("exists")[offset] ^= 1 << bit;
            check_recovery(
                &format!("flip/seed={seed}/offset={offset}/bit={bit}"),
                files,
                &trace,
                &golden,
            );
        }
    }
}

/// A corrupt checkpoint image (bit rot under the trailing CRC) is a
/// reported [`DurableError::Corrupt`], never a panic and never a silent
/// fall-back to genesis.
#[test]
fn a_corrupt_checkpoint_image_is_a_clean_error() {
    let params = ChurnParams {
        shape: FamilyShape::Diamond,
        classes: 5,
        views: 6,
        path_view_percent: 30,
        objects: 18,
        transactions: 5,
        ops_per_transaction: 4,
        retract_percent: 40,
    };
    let golden = golden_run(3, params, 1, None);
    let image = golden
        .files
        .keys()
        .find(|name| name.ends_with(".img"))
        .expect("an image exists")
        .clone();
    let len = golden.files[&image].len();
    for offset in [0, len / 3, len / 2, len - 1] {
        let backend = Arc::new(FaultyBackend::with_files(golden.files.clone()));
        assert!(backend.flip_bit(&image, offset, 3), "flip applied");
        match OptimizedDatabase::open(backend, DurableOptions::default(), || {
            panic!("a corrupt image must not fall back to genesis")
        }) {
            Err(DurableError::Corrupt(_)) => {}
            Ok(_) => panic!("offset {offset}: corrupt image recovered as valid"),
            Err(e) => panic!("offset {offset}: unexpected error kind: {e}"),
        }
    }
}

/// Satellite (delta-log cap): a transaction larger than the in-memory
/// delta-log cap must reach the WAL in full — the durable floor pins
/// the unlogged suffix against the cap's truncation — and a second
/// oversized transaction may evict the first from memory (the WAL owns
/// that history now) yet recovery still replays both exactly.
#[test]
fn transactions_larger_than_the_delta_log_cap_survive_recovery() {
    let mut model = subq::dl::DlModel::new();
    model.classes.push(subq::dl::ClassDecl {
        name: "K".into(),
        is_a: vec![],
        attributes: vec![],
        constraint: None,
    });
    let backend = Arc::new(FaultyBackend::new());
    let mut odb = OptimizedDatabase::open(backend.clone(), DurableOptions::default(), || {
        Database::new(model.clone())
    })
    .expect("genesis open");

    // Two transactions of 40_000 deltas each: the log crosses the 2^16
    // cap during the second one.
    const BULK: usize = 40_000;
    for round in 0..2usize {
        odb.commit_durable(|db| {
            for i in 0..BULK {
                db.add_object(&format!("bulk{}", round * BULK + i));
            }
        })
        .expect("oversized commit");
    }
    assert_eq!(odb.database().data_version(), 2 * BULK as u64);
    assert_eq!(odb.database().durable_floor(), Some(2 * BULK as u64));
    assert!(
        odb.database().delta_log().len() < 2 * BULK,
        "the cap never fired — the regression is untested"
    );

    let files = backend.surviving_files();
    drop(odb);
    let odb = OptimizedDatabase::open(
        Arc::new(FaultyBackend::with_files(files)),
        DurableOptions::default(),
        || panic!("recovery must find the genesis image"),
    )
    .expect("recovers");
    assert_eq!(odb.database().data_version(), 2 * BULK as u64);
    assert_eq!(odb.database().object_count(), 2 * BULK);
    assert!(odb.database().object("bulk0").is_some());
    assert!(odb
        .database()
        .object(&format!("bulk{}", 2 * BULK - 1))
        .is_some());
    let stats = odb.durability_stats().expect("opened durably");
    assert_eq!(stats.recovered_records, 2);
    assert_eq!(stats.truncated_tail_bytes, 0);
}

/// Satellite (PR 5 routing watermark): committing across a recovery
/// boundary — views restored from the image, the delta log re-based at
/// the image version — must keep every view exactly fresh after every
/// subsequent transaction.
#[test]
fn views_stay_equivalent_when_committing_across_a_recovery_boundary() {
    let params = ChurnParams {
        shape: FamilyShape::Diamond,
        classes: 5,
        views: 8,
        path_view_percent: 50,
        objects: 20,
        transactions: 8,
        ops_per_transaction: 5,
        retract_percent: 50,
    };
    for seed in 40..46u64 {
        let trace = churn_trace(seed, params);
        let backend = Arc::new(FaultyBackend::new());
        let mut odb =
            OptimizedDatabase::open(backend.clone(), DurableOptions { group_commit: 2 }, || {
                trace.db.clone()
            })
            .expect("genesis open");
        for name in &trace.view_names {
            odb.materialize_view(name).expect("materializes");
        }
        odb.checkpoint().expect("checkpoint");
        let half = trace.transactions.len() / 2;
        for txn in &trace.transactions[..half] {
            odb.commit_durable(|db| {
                for op in txn {
                    op.apply(db);
                }
            })
            .expect("commit");
        }
        odb.sync_durable().expect("sync");
        let files = backend.surviving_files();
        drop(odb);

        let mut odb = OptimizedDatabase::open(
            Arc::new(FaultyBackend::with_files(files)),
            DurableOptions::default(),
            || panic!("recovery must find the image"),
        )
        .expect("recovers");
        // A refresh that routes zero views must consolidate silently…
        odb.refresh_views();
        // …and every later commit must still reach every view.
        for (t, txn) in trace.transactions[half..].iter().enumerate() {
            odb.commit_durable(|db| {
                for op in txn {
                    op.apply(db);
                }
            })
            .expect("commit after recovery");
            for name in &trace.view_names {
                let view = odb.catalog().view(name).expect("restored");
                assert_eq!(
                    *view.extent,
                    evaluate_query(odb.database(), &view.definition),
                    "seed {seed}: post-recovery txn {t}: view {name}"
                );
            }
        }
    }
}

/// Satellite (retraction churn): retraction-heavy chain traces replayed
/// from the WAL reproduce downward isA propagation (retracting a class
/// strips subclasses too) and the attribute index in both directions,
/// at every transaction boundary.
#[test]
fn retraction_heavy_traces_replay_propagation_and_attr_indexes_exactly() {
    let params = ChurnParams {
        shape: FamilyShape::Chain,
        classes: 7,
        views: 7,
        path_view_percent: 30,
        objects: 24,
        transactions: 8,
        ops_per_transaction: 6,
        retract_percent: 90,
    };
    for seed in 70..78u64 {
        let trace = churn_trace(seed, params);
        let retracts = trace
            .transactions
            .iter()
            .flatten()
            .filter(|op| {
                matches!(
                    op,
                    subq::workload::ChurnOp::RetractClass(..)
                        | subq::workload::ChurnOp::RetractAttr(..)
                )
            })
            .count();
        assert!(retracts > 0, "seed {seed}: the trace never retracts");

        let golden = golden_run(seed, params, 1, None);
        let wal = golden.files.get(WAL_FILE).expect("the WAL file exists");
        for boundary in record_boundaries(wal) {
            let label = format!("retract/seed={seed}/boundary={boundary}");
            let backend = Arc::new(FaultyBackend::with_files(crashed_files(
                &golden.files,
                boundary,
            )));
            let odb = OptimizedDatabase::open(backend, DurableOptions::default(), || {
                panic!("{label}: genesis must not run")
            })
            .unwrap_or_else(|e| panic!("{label}: {e}"));
            let recovered = odb.database();
            let scratch = scratch_at(&trace, &golden.committed, recovered.data_version(), &label);
            assert_state_matches(&label, recovered, &scratch);
            // The attribute index agrees object-by-object in both the
            // forward and the inverse direction, and the two directions
            // agree with each other.
            for obj in scratch.objects() {
                for attr in ["link", "rev_link"] {
                    assert_eq!(
                        recovered.attr_values(obj, attr),
                        scratch.attr_values(obj, attr),
                        "{label}: {attr} of {}",
                        scratch.object_name(obj)
                    );
                }
            }
            for (from, to) in recovered.attr_pairs("link") {
                assert!(
                    recovered.attr_values(to, "rev_link").contains(&from),
                    "{label}: inverse index misses ({from:?}, {to:?})"
                );
            }
        }
    }
}
