//! Equivalence suite for the snapshot-isolated concurrent read path:
//! reader threads answering queries while a churn writer commits
//! transactions.
//!
//! The invariants, checked over ≥100 seeded churn traces:
//!
//! * **No torn states.** Every snapshot a reader observes carries a data
//!   version the writer actually published (a transaction boundary) —
//!   never a mid-transaction version.
//! * **Snapshot answers ≡ scratch.** Every query a reader executes
//!   against an observed snapshot returns exactly the from-scratch
//!   evaluation of that query over the snapshot's own database state, and
//!   every published view extension equals the scratch evaluation of its
//!   definition at that state.
//! * **Parallel maintenance ≡ `refresh_full`.** Checked in its own
//!   process by `tests/parallel_maintenance.rs` (the worker override it
//!   forces is process-wide, so it must not share a test binary with
//!   these suites); the single-threaded half of the guarantee is
//!   `incremental_equivalence.rs`.
//!
//! The writer waits for every reader to adopt each published snapshot
//! before committing the next transaction, so each trace
//! deterministically exercises every version while the threads genuinely
//! run concurrently.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use subq::oodb::{evaluate_query, OptimizedDatabase, Reader};
use subq::workload::{churn_trace, ChurnParams, FamilyShape};

/// Verifies one snapshot a reader currently pins: version is a published
/// boundary, views ≡ scratch, executions ≡ scratch.
fn verify_snapshot(reader: &mut Reader, published: &Mutex<BTreeSet<u64>>, label: &str) {
    let version = reader.data_version();
    {
        let published = published.lock().expect("published-set lock");
        assert!(
            published.contains(&version),
            "{label}: reader observed torn data version {version} (published: {published:?})"
        );
    }
    let snapshot = reader.snapshot().clone();
    assert_eq!(
        snapshot.database().data_version(),
        version,
        "{label}: snapshot version disagrees with its database"
    );
    // Every published extension is the scratch evaluation at this state.
    for view in snapshot.views() {
        let scratch = evaluate_query(snapshot.database(), &view.definition);
        assert_eq!(
            *view.extent, scratch,
            "{label}: v{version}: view {} diverged from scratch",
            view.definition.name
        );
    }
    // Executing through the planner (view filtering, lattice traversal,
    // shared memo) gives the same answers as scratch evaluation.
    for view in snapshot.views() {
        let (answers, _) = reader.execute(&view.definition);
        let scratch = evaluate_query(snapshot.database(), &view.definition);
        assert_eq!(
            answers, scratch,
            "{label}: v{version}: execute({}) diverged from scratch",
            view.definition.name
        );
    }
}

/// One churn trace under concurrent reads: `readers` threads continuously
/// sync + verify while the writer commits every transaction, waiting for
/// all readers to adopt each published version before the next commit.
fn run_trace(seed: u64, params: ChurnParams, readers: usize, label: &str) {
    let trace = churn_trace(seed, params);
    let mut writer = OptimizedDatabase::new(trace.db).expect("translates");
    for name in &trace.view_names {
        writer.materialize_view(name).expect("materializes");
    }
    let published = Mutex::new(BTreeSet::new());
    published
        .lock()
        .expect("published-set lock")
        .insert(writer.database().data_version());
    writer.publish_snapshot();

    let done = AtomicBool::new(false);
    let adopted: Vec<AtomicU64> = (0..readers).map(|_| AtomicU64::new(0)).collect();
    let handles: Vec<Reader> = (0..readers).map(|_| writer.reader()).collect();

    std::thread::scope(|scope| {
        for (slot, mut reader) in handles.into_iter().enumerate() {
            let published = &published;
            let done = &done;
            let adopted = &adopted;
            scope.spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    loop {
                        reader.sync();
                        verify_snapshot(&mut reader, published, label);
                        adopted[slot].store(reader.data_version(), Ordering::Release);
                        if done.load(Ordering::Acquire) && !reader.sync() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    // Final verification on the last published state.
                    verify_snapshot(&mut reader, published, label);
                }));
                if let Err(panic) = result {
                    // Unblock the writer's adoption wait before dying, so
                    // a failed assertion surfaces as a test failure (the
                    // scope re-raises it) instead of a deadlock.
                    adopted[slot].store(u64::MAX, Ordering::Release);
                    std::panic::resume_unwind(panic);
                }
            });
        }

        for txn in &trace.transactions {
            writer.update(|db| {
                for op in txn {
                    op.apply(db);
                }
            });
            let version = writer.database().data_version();
            published
                .lock()
                .expect("published-set lock")
                .insert(version);
            writer.publish_snapshot();
            // Wait until every reader has adopted this version: the trace
            // deterministically exercises every published state.
            while adopted
                .iter()
                .any(|seen| seen.load(Ordering::Acquire) < version)
            {
                std::thread::yield_now();
            }
        }
        done.store(true, Ordering::Release);
    });
}

/// The headline suite: 100 seeded traces × concurrent readers, across
/// hierarchy shapes, with and without derived-path views.
#[test]
fn readers_observe_only_published_equivalent_snapshots_on_100_traces() {
    let mut traces = 0;
    for seed in 0..100u64 {
        let shape = match seed % 4 {
            0 => FamilyShape::Chain,
            1 => FamilyShape::Tree,
            2 => FamilyShape::Diamond,
            _ => FamilyShape::Flat,
        };
        let params = ChurnParams {
            shape,
            classes: 5,
            views: 6,
            path_view_percent: if seed % 2 == 0 { 0 } else { 50 },
            objects: 16,
            transactions: 4,
            ops_per_transaction: 3,
            retract_percent: 40,
        };
        run_trace(seed, params, 2, &format!("{shape:?}/seed={seed}"));
        traces += 1;
    }
    assert_eq!(traces, 100);
}

/// A deeper run with more readers and a larger state, so several
/// snapshots are alive at once and the shared memo sees real contention.
#[test]
fn a_heavier_trace_with_four_readers_stays_equivalent() {
    let params = ChurnParams {
        shape: FamilyShape::Tree,
        classes: 8,
        views: 12,
        path_view_percent: 40,
        objects: 60,
        transactions: 10,
        ops_per_transaction: 6,
        retract_percent: 40,
    };
    run_trace(424_242, params, 4, "heavy/tree");
}
