//! End-to-end pipeline tests: DL source → parse → validate → translate →
//! subsume, on schemas other than the paper's running example.

use subq::Engine;

const UNIVERSITY: &str = "
Class Person with
  attribute, necessary, single
    name: Name
end Person

Class Student isA Person with
  attribute, necessary
    enrolled_in: Course
end Student

Class Lecturer isA Person with
  attribute
    teaches: Course
end Lecturer

Class Course with
  attribute
    about: Topic
end Course

Class HardCourse isA Course with
end HardCourse

Class Topic with
end Topic

Class Name with
end Name

Attribute enrolled_in with
  domain: Student
  range: Course
  inverse: has_student
end enrolled_in

Attribute teaches with
  domain: Lecturer
  range: Course
  inverse: taught_by
end teaches

Attribute about with
  domain: Course
  range: Topic
end about

Attribute name with
  domain: Person
  range: Name
end name

-- Students enrolled in a hard course taught by someone.
QueryClass StrugglingStudent isA Student with
  derived
    l_1: (enrolled_in: HardCourse).(taught_by: Lecturer)
end StrugglingStudent

-- Students enrolled in some taught course (broader).
QueryClass TaughtStudent isA Student with
  derived
    l_1: (enrolled_in: Course).(taught_by: Person)
end TaughtStudent

-- Students enrolled in a course about some topic they are enrolled in...
-- (an agreement between two paths).
QueryClass FocusedStudent isA Student with
  derived
    l_1: (enrolled_in: Course).(about: Topic)
    l_2: (enrolled_in: HardCourse).(about: Topic)
  where
    l_1 = l_2
end FocusedStudent
";

#[test]
fn university_schema_loads_and_subsumptions_hold() {
    let mut engine = Engine::from_source(UNIVERSITY).expect("loads");
    // The hard-course query is subsumed by the broader taught-course view
    // (HardCourse ⊑ Course, Lecturer ⊑ Person).
    assert!(engine
        .subsumes("StrugglingStudent", "TaughtStudent")
        .unwrap());
    assert!(!engine
        .subsumes("TaughtStudent", "StrugglingStudent")
        .unwrap());
    // The agreement query is subsumed by both existential views: its two
    // agreeing paths witness each of them.
    assert!(engine.subsumes("FocusedStudent", "TaughtStudent").is_ok());
    // Every query subsumes itself.
    for name in ["StrugglingStudent", "TaughtStudent", "FocusedStudent"] {
        assert!(engine.subsumes(name, name).unwrap(), "{name} ⊑ {name}");
    }
}

#[test]
fn subsuming_views_lists_only_structural_subsumers() {
    let mut engine = Engine::from_source(UNIVERSITY).expect("loads");
    let views = engine.subsuming_views("StrugglingStudent").expect("checks");
    assert!(views.contains(&"TaughtStudent".to_owned()));
    assert!(!views.contains(&"StrugglingStudent".to_owned()));
}

#[test]
fn engine_round_trips_through_pretty_printer() {
    // Printing the parsed model and re-loading it yields the same
    // subsumption answers.
    let model = subq::dl::parse_model(UNIVERSITY).expect("parses");
    let printed = subq::dl::pretty::render_model(&model);
    let mut engine1 = Engine::from_source(UNIVERSITY).expect("loads");
    let mut engine2 = Engine::from_source(&printed).expect("reloads printed model");
    for (a, b) in [
        ("StrugglingStudent", "TaughtStudent"),
        ("TaughtStudent", "StrugglingStudent"),
        ("FocusedStudent", "TaughtStudent"),
        ("FocusedStudent", "StrugglingStudent"),
    ] {
        assert_eq!(
            engine1.subsumes(a, b).unwrap(),
            engine2.subsumes(a, b).unwrap(),
            "{a} vs {b}"
        );
    }
}

#[test]
fn medical_and_university_vocabularies_do_not_interfere() {
    // Two engines side by side, each with its own vocabulary and arena.
    let mut medical = Engine::from_source(subq::dl::samples::MEDICAL_SOURCE).expect("loads");
    let mut university = Engine::from_source(UNIVERSITY).expect("loads");
    assert!(medical.subsumes("QueryPatient", "ViewPatient").unwrap());
    assert!(university
        .subsumes("StrugglingStudent", "TaughtStudent")
        .unwrap());
}
