//! The observability surfaces over the live wire: `EXPLAIN` must report
//! exactly the counters the engine's planner produces (the parity the
//! ISSUE's acceptance gate names), and `STATS` must expose non-trivial
//! latency histograms for the query, commit, and WAL-fsync paths after a
//! mixed load — plus the slow-query ring behind `STATS SLOW`.

use std::sync::Arc;
use std::time::Duration;
use subq_oodb::{DurableOptions, FaultyBackend, OptimizedDatabase};
use subq_server::{
    run_mixed_load, view_query, Client, LoadParams, Request, Response, Server, ServerConfig,
};
use subq_workload::traffic::TrafficParams;
use subq_workload::{churn_trace, ChurnParams, ChurnTrace};

/// Extracts `key=value` from a space-separated `EXPLAIN` line.
fn field(line: &str, key: &str) -> String {
    let needle = format!("{key}=");
    line.split(' ')
        .find_map(|token| token.strip_prefix(&needle))
        .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
        .to_owned()
}

fn numeric_field(line: &str, key: &str) -> usize {
    field(line, key)
        .parse()
        .unwrap_or_else(|_| panic!("{key} in {line:?} is not numeric"))
}

/// The EXPLAIN parity gate: every counter on the wire's `plan` line must
/// equal the `QueryPlan` a local reader built over the identical store
/// produces for the same query sequence — the wire report *is* the
/// engine's plan, not a reenactment. A single worker keeps one server
/// reader's cache evolving in request order, mirrored locally.
#[test]
fn explain_wire_counters_match_the_engine_plan() {
    let trace = churn_trace(41, ChurnParams::default());
    let build = || {
        let mut odb = OptimizedDatabase::new(trace.db.clone()).expect("translates");
        for name in &trace.view_names {
            odb.materialize_view(name).expect("materializes");
        }
        odb
    };
    let server = Server::start(
        build(),
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("binds loopback");
    let mut local_odb = build();
    // `Server::start` publishes after materialization; mirror that so
    // the local reader pins the same catalog.
    local_odb.publish_snapshot();
    let mut local = local_odb.reader();

    let mut client = Client::connect(server.addr()).expect("connects");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    // Two passes: the first plans fresh (probes miss), the second answers
    // from the verdict cache — parity must hold in both cache states.
    for pass in 0..2 {
        for view in 0..trace.view_names.len() {
            let query = view_query(&trace, view);
            let lines = match client
                .request(&Request::Explain(query.clone()))
                .expect("explains")
            {
                Response::Report { lines, .. } => lines,
                other => panic!("expected REPORT, got {other:?}"),
            };
            let expected = local.plan(&query);
            let plan_line = &lines[0];
            assert!(
                plan_line.starts_with("plan "),
                "first line is {plan_line:?}"
            );
            let tag = format!("pass {pass} view {view}");
            assert_eq!(
                numeric_field(plan_line, "subsuming"),
                expected.subsuming_views.len(),
                "{tag}: subsuming"
            );
            assert_eq!(
                numeric_field(plan_line, "cached_probes"),
                expected.cached_probes,
                "{tag}: cached_probes"
            );
            assert_eq!(
                numeric_field(plan_line, "fresh_probes"),
                expected.fresh_probes,
                "{tag}: fresh_probes"
            );
            assert_eq!(
                numeric_field(plan_line, "fact_saturations"),
                expected.fact_saturations,
                "{tag}: fact_saturations"
            );
            assert_eq!(
                numeric_field(plan_line, "probes_pruned"),
                expected.probes_pruned,
                "{tag}: probes_pruned"
            );
            assert_eq!(
                numeric_field(plan_line, "lattice_depth"),
                expected.lattice_depth,
                "{tag}: lattice_depth"
            );

            // The structured lines must agree with the counters they
            // itemize: one probe line per probe, one pruned line per
            // pruned view, one frontier line per subsuming view with
            // exactly one marked chosen.
            let probes = lines.iter().filter(|l| l.starts_with("probe ")).count();
            assert_eq!(
                probes,
                expected.cached_probes + expected.fresh_probes,
                "{tag}: probe lines"
            );
            let pruned = lines.iter().filter(|l| l.starts_with("pruned ")).count();
            assert_eq!(pruned, expected.probes_pruned, "{tag}: pruned lines");
            let frontier: Vec<&String> = lines
                .iter()
                .filter(|l| l.starts_with("frontier "))
                .collect();
            assert_eq!(
                frontier.len(),
                expected.subsuming_views.len(),
                "{tag}: frontier lines"
            );
            let chosen = frontier
                .iter()
                .filter(|l| field(l, "chosen") == "true")
                .count();
            assert_eq!(
                chosen,
                usize::from(!frontier.is_empty()),
                "{tag}: exactly one chosen frontier member"
            );
            assert!(
                lines.last().unwrap().starts_with("candidates actual="),
                "{tag}: closing candidates line"
            );
        }
    }
    client.close().expect("graceful BYE");
    server.shutdown();
}

fn metric_sample(lines: &[String], name: &str) -> u64 {
    let prefix = format!("{name} ");
    lines
        .iter()
        .find_map(|l| l.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("no sample {name} in STATS report"))
        .parse()
        .unwrap_or_else(|_| panic!("sample {name} is not numeric"))
}

fn metric_quantile(lines: &[String], name: &str, q: &str) -> u64 {
    metric_sample(lines, &format!("{name}{{quantile=\"{q}\"}}"))
}

/// `STATS` over a loaded durable server: the query, commit, and
/// WAL-fsync histograms must be populated with ordered quantiles, and
/// `STATS SLOW` (threshold 0) must hold parseable slow-query entries.
#[test]
fn stats_over_a_loaded_server_shows_populated_histograms() {
    let trace: ChurnTrace = churn_trace(
        0xE14,
        ChurnParams {
            objects: 120,
            transactions: 64,
            ..ChurnParams::default()
        },
    );
    let backend = Arc::new(FaultyBackend::new());
    let mut odb = OptimizedDatabase::open(backend, DurableOptions { group_commit: 64 }, || {
        trace.db.clone()
    })
    .expect("genesis open");
    for name in &trace.view_names {
        odb.materialize_view(name).expect("materializes");
    }
    odb.checkpoint().expect("checkpoint after materialization");
    let server = Server::start(
        odb,
        ServerConfig {
            slow_query_us: Some(0),
            ..ServerConfig::default()
        },
    )
    .expect("binds loopback");
    let report = run_mixed_load(
        server.addr(),
        &trace,
        LoadParams {
            clients: 2,
            traffic: TrafficParams {
                query_percent: 60,
                ops: 60,
            },
            ..LoadParams::default()
        },
    )
    .expect("load run");
    assert!(report.queries > 0 && report.txns > 0, "load must mix ops");

    let mut client = Client::connect(server.addr()).expect("connects");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let lines = match client
        .request(&Request::Stats { slow: false })
        .expect("stats")
    {
        Response::Report { lines, .. } => lines,
        other => panic!("expected REPORT, got {other:?}"),
    };
    for metric in [
        "subq_server_query_ns",
        "subq_server_commit_ns",
        "subq_wal_fsync_ns",
    ] {
        let count = metric_sample(&lines, &format!("{metric}_count"));
        assert!(count > 0, "{metric} recorded nothing under load");
        let p50 = metric_quantile(&lines, metric, "0.5");
        let p99 = metric_quantile(&lines, metric, "0.99");
        assert!(
            p50 > 0 && p50 <= p99,
            "{metric}: p50 {p50} / p99 {p99} unordered or empty"
        );
    }
    // The mirrored counters engage too: queries flowed, bytes moved.
    assert!(metric_sample(&lines, "subq_server_queries_total") > 0);
    assert!(metric_sample(&lines, "subq_server_bytes_in_total") > 0);
    assert!(metric_sample(&lines, "subq_server_bytes_out_total") > 0);

    // The slow-query ring (threshold 0 records every query): each entry
    // is `<micros> <label>`.
    let slow = match client
        .request(&Request::Stats { slow: true })
        .expect("stats slow")
    {
        Response::Report { lines, .. } => lines,
        other => panic!("expected REPORT, got {other:?}"),
    };
    assert!(!slow.is_empty(), "threshold 0 must record every query");
    for line in &slow {
        let mut parts = line.splitn(2, ' ');
        parts
            .next()
            .unwrap()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("slow entry {line:?} lacks leading micros"));
        let label = parts
            .next()
            .unwrap_or_else(|| panic!("slow entry {line:?} lacks a label"));
        assert!(!label.is_empty());
    }
    client.close().expect("graceful BYE");
    server.shutdown();
}
