//! The advisor over the live wire: `ADVISE` forces a mining pass on the
//! writer thread and reports the candidate table; `--advisor auto`
//! materializes winners with **zero** `DEFVIEW` statements ever sent;
//! the `__adv_` name prefix is reserved and user `DEFVIEW`s of it are
//! rejected with a typed error.

use std::time::Duration;
use subq_oodb::{evaluate_query, AdvisorConfig, AdvisorMode, OptimizedDatabase};
use subq_server::{view_query, Client, ErrorCode, Request, Response, Server, ServerConfig};
use subq_workload::{churn_trace, ChurnParams, ChurnTrace};

/// Extracts `key=value` from a space-separated report line.
fn field(line: &str, key: &str) -> String {
    let needle = format!("{key}=");
    line.split(' ')
        .find_map(|token| token.strip_prefix(&needle))
        .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
        .to_owned()
}

fn serve(mode: AdvisorMode, materialize: bool) -> (Server, ChurnTrace) {
    let trace = churn_trace(
        41,
        ChurnParams {
            path_view_percent: 60,
            ..ChurnParams::default()
        },
    );
    let mut odb = OptimizedDatabase::new(trace.db.clone()).expect("translates");
    if materialize {
        for name in &trace.view_names {
            odb.materialize_view(name).expect("materializes");
        }
    }
    let server = Server::start(
        odb,
        ServerConfig {
            advisor: AdvisorConfig {
                mode,
                ..AdvisorConfig::default()
            },
            // Only explicit ADVISE requests run passes in these tests.
            advisor_interval: Duration::from_secs(3600),
            ..ServerConfig::default()
        },
    )
    .expect("binds loopback");
    (server, trace)
}

fn advise(client: &mut Client) -> Vec<String> {
    match client.request(&Request::Advise).expect("advises") {
        Response::Report { lines, .. } => lines,
        other => panic!("expected REPORT, got {other:?}"),
    }
}

/// The summary line of an ADVISE report (`advisor mode=... shapes=...`).
fn summary(lines: &[String]) -> &String {
    lines
        .iter()
        .find(|line| line.starts_with("advisor "))
        .unwrap_or_else(|| panic!("no summary line in {lines:?}"))
}

#[test]
fn advise_reports_mined_candidates_in_observe_mode() {
    let (server, trace) = serve(AdvisorMode::Observe, true);
    let mut client = Client::connect(server.addr()).expect("connects");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    // An ADVISE before any traffic: a report with the summary line only.
    let lines = advise(&mut client);
    assert_eq!(field(summary(&lines), "mode"), "observe");
    // Drive query traffic so the worker readers mine shapes, then ask
    // again: the candidates are on the wire, the catalog is untouched.
    for view in 0..trace.view_names.len() {
        for _ in 0..10 {
            match client
                .request(&Request::Query(view_query(&trace, view)))
                .expect("queries")
            {
                Response::Answers { .. } => {}
                other => panic!("expected ANSWERS, got {other:?}"),
            }
        }
    }
    let lines = advise(&mut client);
    let summary_line = summary(&lines);
    assert!(
        field(summary_line, "shapes")
            .parse::<usize>()
            .expect("numeric")
            > 0,
        "no shapes mined: {lines:?}"
    );
    assert_eq!(field(summary_line, "materialized"), "0");
    assert!(
        lines.iter().any(|line| line.starts_with("candidate ")),
        "no candidate lines: {lines:?}"
    );
    server.shutdown();
}

#[test]
fn auto_mode_materializes_over_the_wire_with_zero_defview() {
    // Zero views materialized by hand, zero DEFVIEW sent: the advisor is
    // the only path to a catalog.
    let (server, trace) = serve(AdvisorMode::Auto, false);
    let mut client = Client::connect(server.addr()).expect("connects");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut auto_views = 0usize;
    for _round in 0..5 {
        for view in 0..trace.view_names.len() {
            for _ in 0..10 {
                client
                    .request(&Request::Query(view_query(&trace, view)))
                    .expect("queries");
            }
        }
        let lines = advise(&mut client);
        auto_views = field(summary(&lines), "auto_views")
            .parse()
            .expect("numeric auto_views");
        if auto_views > 0 {
            assert!(
                lines.iter().any(|line| line.contains("view=__adv_")),
                "materialized but no __adv_ view in the report: {lines:?}"
            );
            break;
        }
    }
    assert!(
        auto_views > 0,
        "five rounds of traffic never drove an auto-materialization"
    );
    // Answers after auto-materialization are still scratch-identical
    // (the store saw no writes, so scratch is the initial state).
    for view in 0..trace.view_names.len() {
        let query = view_query(&trace, view);
        let answers = match client
            .request(&Request::Query(query.clone()))
            .expect("queries")
        {
            Response::Answers { names, .. } => names,
            other => panic!("expected ANSWERS, got {other:?}"),
        };
        let expected: Vec<String> = evaluate_query(&trace.db, &query)
            .iter()
            .map(|id| trace.db.object_name(*id).to_owned())
            .collect();
        assert_eq!(
            answers, expected,
            "view {view} diverged after auto-materialization"
        );
    }
    server.shutdown();
}

#[test]
fn defview_of_the_reserved_prefix_is_rejected() {
    let (server, trace) = serve(AdvisorMode::Off, true);
    let mut client = Client::connect(server.addr()).expect("connects");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut decl = view_query(&trace, 0);
    decl.name = "__adv_evil".to_owned();
    match client.request(&Request::DefView(decl)).expect("round trip") {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::Parse);
            assert!(
                message.contains("reserved"),
                "rejection does not name the reservation: {message}"
            );
        }
        other => panic!("expected a typed error, got {other:?}"),
    }
    // The session survives the rejection and keeps answering.
    match client
        .request(&Request::Query(view_query(&trace, 0)))
        .expect("queries")
    {
        Response::Answers { .. } => {}
        other => panic!("expected ANSWERS, got {other:?}"),
    }
    server.shutdown();
}
