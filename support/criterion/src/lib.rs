//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! [`BenchmarkId`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros — with a simple calibrated wall-clock
//! measurement instead of criterion's statistical machinery.
//!
//! Each benchmark is calibrated to roughly `CRITERION_TARGET_MS`
//! milliseconds (default 200) of measurement and reports the mean and best
//! per-iteration time on stdout, one line per benchmark, machine-grepable:
//!
//! ```text
//! bench: e5_polynomial_scaling/path_depth/32  mean 1.234 µs  best 1.198 µs  iters 100000
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batch setup output is grouped (accepted for API compatibility; all
/// variants behave the same here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter, rendered as
    /// `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        BenchmarkId { id: value.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(value: String) -> Self {
        BenchmarkId { id: value }
    }
}

fn target_measure_time() -> Duration {
    let ms = std::env::var("CRITERION_TARGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(1))
}

/// The per-benchmark measurement driver.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that takes a meaningful slice
        // of the measurement budget per sample.
        let budget = target_measure_time();
        let once = {
            let start = Instant::now();
            black_box(routine());
            start.elapsed().max(Duration::from_nanos(20))
        };
        let per_sample = budget / self.sample_size.max(1) as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Measures `routine` on fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let budget = target_measure_time();
        let once = {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed().max(Duration::from_nanos(20))
        };
        let per_sample = budget / self.sample_size.max(1) as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench: {id}  (no samples)");
        return;
    }
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let best = samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench: {id}  mean {}  best {}  samples {}",
        human(mean),
        human(best),
        samples.len()
    );
}

fn human(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.id), &bencher.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.id), &bencher.samples);
        self
    }

    /// Finishes the group (a no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("criterion");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs_and_reports() {
        std::env::set_var("CRITERION_TARGET_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("id", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
