//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate implements the (small) slice of the `rand` 0.8 API the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — statistically fine for workload synthesis
//! and property testing, deterministic per seed, but **not** the same
//! stream as the real `StdRng` and not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly to produce a `T` (mirrors the
/// real crate's `SampleRange<T>` so the output type is driven by
/// inference at the call site).
pub trait SampleRange<T> {
    /// Draws a uniform sample using the generator's raw 64-bit output.
    fn sample(&self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit source behind every [`Rng`].
pub trait RngCore {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) integer range.
    ///
    /// Panics when the range is empty, like the real `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        // 53 uniform mantissa bits, as the real implementation does.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample(&self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample(&self, rng: &mut dyn RngCore) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64 under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100).any(|_| a.gen_range(0..1000usize) != c.gen_range(0..1000usize));
        assert!(differs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=2u32);
            assert!((1..=2).contains(&y));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "got {hits}");
    }
}
