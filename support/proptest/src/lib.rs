//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of the proptest API this workspace's property tests use:
//! [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_recursive` /
//! `boxed`, range and tuple strategies, [`collection::vec`], [`Just`],
//! [`any`], the [`proptest!`] test macro with `proptest_config`, and the
//! `prop_assert*` macros.
//!
//! Failing cases are reported with their seed and case number but are
//! **not shrunk** — rerun with the printed case to debug.

use std::rc::Rc;

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-test random source (the in-tree `rand` stub's
    /// seeded generator — one SplitMix64 implementation for the whole
    /// workspace).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        pub(crate) inner: StdRng,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a over the bytes), so
        /// every test gets a stable, distinct stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// Run configuration for a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy is just a cloneable sampler.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and then samples the strategy `f`
    /// builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `branch`
    /// wraps an inner strategy into composite values, nested at most
    /// `depth` levels. The `_desired_size` and `_expected_branch_size`
    /// parameters of the real API are accepted but ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // At each level, mix leaves back in so sampled trees have
            // varied depth instead of always bottoming out at `depth`.
            let composite = branch(strat).boxed();
            strat = Union {
                options: Rc::new(vec![leaf.clone(), composite]),
            }
            .boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sampler: Rc::new(move |rng: &mut TestRng| self.sample(rng)),
        }
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    sampler: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Rc::clone(&self.sampler),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between equally-weighted alternative strategies (the
/// engine behind [`prop_oneof!`]).
pub struct Union<T> {
    options: Rc<Vec<BoxedStrategy<T>>>,
}

impl<T> Union<T> {
    /// A union of the given alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union {
            options: Rc::new(options),
        }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: Rc::clone(&self.options),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.options.len() as u64) as usize;
        self.options[ix].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rand::SampleRange::sample(self, &mut rng.inner)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rand::SampleRange::sample(self, &mut rng.inner)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()` style).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Canonical strategy types behind [`any`].
#[derive(Clone)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Strategy for AnyPrimitive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
        impl Arbitrary for $ty {
            type Strategy = AnyPrimitive<$ty>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: range.start,
                hi: range.end,
            }
        }
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = (self.len.lo..self.len.hi).sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of the real crate (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice between alternative strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            ));
        }
    }};
}

/// Declares property tests.
///
/// Supports the subset of the real syntax this workspace uses: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items (doc comments and other attributes are
/// preserved).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property `{}` failed at case {} of {}: {}\n(offline proptest stub: no shrinking)",
                            stringify!($name),
                            case,
                            config.cases,
                            message
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(usize),
        Node(Vec<Tree>),
    }

    fn tree() -> impl Strategy<Value = Tree> {
        let leaf = (0..10usize).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 16, 4, |inner| {
            collection::vec(inner, 1..4).prop_map(Tree::Node)
        })
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds and tuples sample componentwise.
        #[test]
        fn ranges_and_tuples(x in 3..17usize, pair in (0..5usize, any::<bool>())) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(pair.0 < 5);
        }

        /// Recursive strategies respect the depth bound.
        #[test]
        fn recursion_is_bounded(t in tree()) {
            prop_assert!(depth(&t) <= 3, "depth {} exceeds bound", depth(&t));
        }

        /// Vec lengths respect the requested range.
        #[test]
        fn vec_lengths(v in collection::vec(prop_oneof![Just(1usize), Just(2)], 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e == 1 || e == 2));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let strat = tree();
        for _ in 0..20 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
