//! Property tests of [`croaring::Bitmap`] against a `BTreeSet<u32>`
//! oracle: random op sequences over adversarial densities, plus the
//! container-promotion boundary at 4 096 elements.

use std::collections::BTreeSet;

use croaring::{Bitmap, ARRAY_MAX};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Checks every read-side operation of `bm` against the oracle.
fn assert_matches(bm: &Bitmap, oracle: &BTreeSet<u32>, context: &str) {
    assert_eq!(bm.len(), oracle.len(), "{context}: len");
    assert_eq!(bm.is_empty(), oracle.is_empty(), "{context}: is_empty");
    assert!(
        bm.iter().eq(oracle.iter().copied()),
        "{context}: iteration order/content"
    );
    assert_eq!(bm.min(), oracle.first().copied(), "{context}: min");
    assert_eq!(bm.max(), oracle.last().copied(), "{context}: max");
}

/// Draws a value from one of several adversarial densities.
fn draw(rng: &mut StdRng, universe: u32) -> u32 {
    match rng.gen_range(0u32..4) {
        // Dense low range — forces runs/bits containers.
        0 => rng.gen_range(0..universe / 16 + 1),
        // Around a container boundary (multiples of 65 536).
        1 => {
            let boundary = rng.gen_range(1u32..4) << 16;
            let offset = rng.gen_range(0i64..8) - 4;
            boundary.wrapping_add(offset as u32)
        }
        // Sparse across the whole universe.
        2 => rng.gen_range(0..universe),
        // Very high ids (multiple containers apart).
        _ => (rng.gen_range(16u32..64) << 16) | rng.gen_range(0u32..1 << 16),
    }
}

#[test]
fn random_op_sequences_match_btreeset_oracle() {
    for seed in 0u64..12 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let universe: u32 = match seed % 4 {
            0 => 64,        // Tiny: mostly empty/singleton shapes.
            1 => 5_000,     // Around one array container.
            2 => 300_000,   // Several containers, mixed density.
            _ => 4_000_000, // Wide and sparse.
        };
        let mut bm = Bitmap::new();
        let mut oracle: BTreeSet<u32> = BTreeSet::new();
        for step in 0..3_000 {
            let v = draw(&mut rng, universe);
            if rng.gen_bool(0.65) {
                assert_eq!(
                    bm.insert(v),
                    oracle.insert(v),
                    "seed {seed} step {step}: insert({v}) novelty"
                );
            } else {
                assert_eq!(
                    bm.remove(v),
                    oracle.remove(&v),
                    "seed {seed} step {step}: remove({v}) presence"
                );
            }
            assert_eq!(
                bm.contains(v),
                oracle.contains(&v),
                "seed {seed} step {step}: contains({v})"
            );
            if step % 257 == 0 {
                assert_matches(&bm, &oracle, &format!("seed {seed} step {step}"));
            }
            if step % 619 == 0 {
                bm.run_optimize();
            }
        }
        assert_matches(&bm, &oracle, &format!("seed {seed} final"));
    }
}

#[test]
fn binary_ops_match_btreeset_oracle() {
    for seed in 0u64..10 {
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ seed);
        let universe: u32 = [100, 10_000, 500_000][seed as usize % 3];
        let build = |rng: &mut StdRng, density: f64| {
            let mut bm = Bitmap::new();
            let mut set = BTreeSet::new();
            let count = ((universe as f64) * density) as usize;
            for _ in 0..count {
                let v = draw(rng, universe);
                bm.insert(v);
                set.insert(v);
            }
            if density > 0.5 {
                bm.run_optimize();
            }
            (bm, set)
        };
        for &(da, db) in &[(0.0, 0.3), (0.01, 0.9), (0.5, 0.5), (0.9, 0.02)] {
            let (a, sa) = build(&mut rng, da);
            let (b, sb) = build(&mut rng, db);
            let and: BTreeSet<u32> = sa.intersection(&sb).copied().collect();
            let or: BTreeSet<u32> = sa.union(&sb).copied().collect();
            let and_not: BTreeSet<u32> = sa.difference(&sb).copied().collect();
            assert_matches(&a.and(&b), &and, "and");
            assert_matches(&a.or(&b), &or, "or");
            assert_matches(&a.and_not(&b), &and_not, "and_not");
            assert_eq!(a.intersect_len(&b), and.len(), "intersect_len");
            assert_eq!(a.intersects(&b), !and.is_empty(), "intersects");
            assert_eq!(a.is_subset(&b), sa.is_subset(&sb), "is_subset");
            let mut a2 = a.clone();
            a2.and_inplace(&b);
            assert_matches(&a2, &and, "and_inplace");
            let mut a3 = a.clone();
            a3.or_inplace(&b);
            assert_matches(&a3, &or, "or_inplace");
        }
    }
}

#[test]
fn rank_select_match_btreeset_oracle() {
    let mut rng = StdRng::seed_from_u64(0xABBA);
    for &universe in &[70u32, 9_000, 800_000] {
        let mut bm = Bitmap::new();
        let mut oracle = BTreeSet::new();
        for _ in 0..universe / 2 {
            let v = draw(&mut rng, universe);
            bm.insert(v);
            oracle.insert(v);
        }
        bm.run_optimize();
        let sorted: Vec<u32> = oracle.iter().copied().collect();
        for (k, &v) in sorted.iter().enumerate() {
            assert_eq!(bm.select(k), Some(v), "select({k})");
            assert_eq!(bm.rank(v), k + 1, "rank({v})");
            if v > 0 && !oracle.contains(&(v - 1)) {
                assert_eq!(bm.rank(v - 1), k, "rank({}) below member", v - 1);
            }
        }
        assert_eq!(bm.select(sorted.len()), None);
        // Probe some absent values too.
        for _ in 0..200 {
            let v = draw(&mut rng, universe);
            let expected = oracle.range(..=v).count();
            assert_eq!(bm.rank(v), expected, "rank({v}) arbitrary");
        }
    }
}

#[test]
fn promotion_boundary_at_4096() {
    // Walk a single container across the array→bits boundary and back,
    // checking the oracle at every width around the edge.
    let mut bm = Bitmap::new();
    let mut oracle = BTreeSet::new();
    let spread = |i: u32| 3 * i; // Keeps values in one 16-bit chunk, non-contiguous.
    for i in 0..(ARRAY_MAX as u32 + 8) {
        bm.insert(spread(i));
        oracle.insert(spread(i));
        let width = oracle.len();
        if (ARRAY_MAX - 2..=ARRAY_MAX + 2).contains(&width) {
            assert_matches(&bm, &oracle, &format!("growing through {width}"));
        }
    }
    // Binary ops straddling the boundary: one side array-sized, one bits-sized.
    let small: Bitmap = (0u32..100).map(spread).collect();
    let small_set: BTreeSet<u32> = (0u32..100).map(spread).collect();
    assert_matches(&bm.and(&small), &small_set, "bits ∩ array");
    assert_eq!(bm.intersect_len(&small), 100);
    // Shrink back down through the demotion edge.
    for i in (0..(ARRAY_MAX as u32 + 8)).rev() {
        bm.remove(spread(i));
        oracle.remove(&spread(i));
        let width = oracle.len();
        if (ARRAY_MAX - 2..=ARRAY_MAX + 2).contains(&width) {
            assert_matches(&bm, &oracle, &format!("shrinking through {width}"));
        }
    }
    assert!(bm.is_empty());
}

#[test]
fn serialization_roundtrips_against_oracle() {
    // Random shapes across adversarial densities: whatever physical
    // container mix a bitmap reached, serialize → deserialize must give
    // back the same *semantic* set (checked against the BTreeSet oracle).
    for seed in 0u64..16 {
        let mut rng = StdRng::seed_from_u64(0x5E71A11 ^ seed);
        let universe: u32 = [64, 5_000, 300_000, 4_000_000][seed as usize % 4];
        let mut bm = Bitmap::new();
        let mut oracle = BTreeSet::new();
        for _ in 0..2_000 {
            let v = draw(&mut rng, universe);
            if rng.gen_bool(0.7) {
                bm.insert(v);
                oracle.insert(v);
            } else {
                bm.remove(v);
                oracle.remove(&v);
            }
        }
        if seed % 2 == 0 {
            bm.run_optimize();
        }
        let bytes = bm.serialize();
        let back = Bitmap::deserialize(&bytes).expect("own encoding is valid");
        assert_matches(&back, &oracle, &format!("seed {seed} roundtrip"));
        // The decoded bitmap stays mutable and algebra-compatible.
        let mut merged = back.clone();
        merged.or_inplace(&bm);
        assert_matches(&merged, &oracle, &format!("seed {seed} post-decode or"));
    }

    // The container-promotion boundary: 4095 / 4096 / 4097 elements in a
    // single chunk exercise array, boundary-array, and bits encodings;
    // the same cardinalities built as one run exercise the run encoding.
    for width in [ARRAY_MAX - 1, ARRAY_MAX, ARRAY_MAX + 1] {
        let spread: Bitmap = (0..width as u32).map(|i| 2 * i).collect();
        let spread_oracle: BTreeSet<u32> = (0..width as u32).map(|i| 2 * i).collect();
        let back = Bitmap::deserialize(&spread.serialize()).expect("boundary spread");
        assert_matches(&back, &spread_oracle, &format!("spread width {width}"));

        let run = Bitmap::from_range(0..width as u32);
        let run_oracle: BTreeSet<u32> = (0..width as u32).collect();
        let back = Bitmap::deserialize(&run.serialize()).expect("boundary run");
        assert_matches(&back, &run_oracle, &format!("run width {width}"));
        // Runs encode in O(runs), not O(cardinality).
        assert!(
            run.serialize().len() < 32,
            "run of {width} should stay tiny"
        );
    }
}

#[test]
fn dense_runs_and_from_range_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    for trial in 0..8 {
        let start = rng.gen_range(0u32..200_000);
        let len = rng.gen_range(1u32..150_000);
        let mut bm = Bitmap::from_range(start..start + len);
        let mut oracle: BTreeSet<u32> = (start..start + len).collect();
        assert_matches(&bm, &oracle, &format!("trial {trial} range build"));
        // Punch random holes through the runs, then refill some.
        for _ in 0..500 {
            let v = rng.gen_range(start.saturating_sub(10)..start + len + 10);
            if rng.gen_bool(0.7) {
                assert_eq!(bm.remove(v), oracle.remove(&v), "run remove({v})");
            } else {
                assert_eq!(bm.insert(v), oracle.insert(v), "run insert({v})");
            }
        }
        assert_matches(&bm, &oracle, &format!("trial {trial} after holes"));
        // Sharding a run-backed set must partition it exactly.
        for p in [1usize, 3, 8] {
            let gathered: Vec<u32> = bm.shards(p).into_iter().flatten().collect();
            assert!(gathered.iter().copied().eq(oracle.iter().copied()));
        }
    }
}
