//! Offline in-tree stand-in for a roaring-bitmap crate.
//!
//! A [`Bitmap`] is a compressed set of `u32` values, chunked by the high
//! 16 bits into [`container::Container`]s (sorted array / uncompressed
//! bits / run-length intervals). Dense chunks get word-parallel set
//! algebra, sparse chunks stay proportional to their cardinality, and
//! contiguous id ranges — the shape of a dense object universe —
//! compress to a handful of runs.
//!
//! Beyond the usual `and`/`or`/`and_not`/`intersect_len`, the crate
//! exposes `rank`/`select` and bounded iteration so a caller can split a
//! bitmap into cardinality-balanced id-range shards ([`Bitmap::shards`])
//! for scatter-gather processing.

mod container;
mod serialize;

pub use container::{ARRAY_MAX, RUN_MAX};

use container::{Container, ContainerIter};

/// A compressed bitmap over `u32`.
#[derive(Clone, Default)]
pub struct Bitmap {
    /// Non-empty containers, sorted by high-16-bit key.
    containers: Vec<(u16, Container)>,
}

#[inline]
fn key(value: u32) -> u16 {
    (value >> 16) as u16
}

#[inline]
fn low(value: u32) -> u16 {
    (value & 0xFFFF) as u16
}

impl Bitmap {
    pub fn new() -> Self {
        Bitmap {
            containers: Vec::new(),
        }
    }

    /// The set `range.start..range.end`, built from run containers:
    /// O(range / 65 536) regardless of cardinality.
    pub fn from_range(range: std::ops::Range<u32>) -> Self {
        let mut containers = Vec::new();
        if range.start >= range.end {
            return Bitmap { containers };
        }
        let last = range.end - 1;
        for chunk in key(range.start)..=key(last) {
            let lo = if chunk == key(range.start) {
                low(range.start)
            } else {
                0
            };
            let hi = if chunk == key(last) {
                low(last)
            } else {
                u16::MAX
            };
            containers.push((chunk, Container::full_run(lo, hi)));
        }
        Bitmap { containers }
    }

    pub fn len(&self) -> usize {
        self.containers.iter().map(|(_, c)| c.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    fn container_index(&self, chunk: u16) -> Result<usize, usize> {
        self.containers.binary_search_by_key(&chunk, |&(k, _)| k)
    }

    pub fn contains(&self, value: u32) -> bool {
        match self.container_index(key(value)) {
            Ok(at) => self.containers[at].1.contains(low(value)),
            Err(_) => false,
        }
    }

    /// Inserts `value`; returns whether it was absent.
    pub fn insert(&mut self, value: u32) -> bool {
        match self.container_index(key(value)) {
            Ok(at) => self.containers[at].1.insert(low(value)),
            Err(at) => {
                self.containers
                    .insert(at, (key(value), Container::Array(vec![low(value)])));
                true
            }
        }
    }

    /// Removes `value`; returns whether it was present.
    pub fn remove(&mut self, value: u32) -> bool {
        match self.container_index(key(value)) {
            Ok(at) => {
                let removed = self.containers[at].1.remove(low(value));
                if removed && self.containers[at].1.is_empty() {
                    self.containers.remove(at);
                }
                removed
            }
            Err(_) => false,
        }
    }

    pub fn clear(&mut self) {
        self.containers.clear();
    }

    pub fn min(&self) -> Option<u32> {
        self.containers
            .first()
            .map(|&(k, ref c)| (u32::from(k) << 16) | u32::from(c.select(0)))
    }

    pub fn max(&self) -> Option<u32> {
        self.containers
            .last()
            .map(|&(k, ref c)| (u32::from(k) << 16) | u32::from(c.select(c.len() - 1)))
    }

    /// Number of stored values `<= value`.
    pub fn rank(&self, value: u32) -> usize {
        let mut count = 0usize;
        for &(k, ref c) in &self.containers {
            if k < key(value) {
                count += c.len();
            } else if k == key(value) {
                count += c.rank(low(value));
            } else {
                break;
            }
        }
        count
    }

    /// The `k`-th smallest stored value (0-based).
    pub fn select(&self, k: usize) -> Option<u32> {
        let mut remaining = k;
        for &(chunk, ref c) in &self.containers {
            let card = c.len();
            if remaining < card {
                return Some((u32::from(chunk) << 16) | u32::from(c.select(remaining)));
            }
            remaining -= card;
        }
        None
    }

    /// Intersection.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut containers = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.containers.len() && j < other.containers.len() {
            let (ka, ref ca) = self.containers[i];
            let (kb, ref cb) = other.containers[j];
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if let Some(c) = ca.and(cb) {
                        containers.push((ka, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        Bitmap { containers }
    }

    /// In-place intersection.
    pub fn and_inplace(&mut self, other: &Bitmap) {
        *self = self.and(other);
    }

    /// Union.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut containers = Vec::with_capacity(self.containers.len().max(other.containers.len()));
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.containers.len() || j < other.containers.len() {
            match (self.containers.get(i), other.containers.get(j)) {
                (Some(&(ka, ref ca)), Some(&(kb, ref cb))) => match ka.cmp(&kb) {
                    std::cmp::Ordering::Less => {
                        containers.push((ka, ca.clone()));
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        containers.push((kb, cb.clone()));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        containers.push((ka, ca.or(cb)));
                        i += 1;
                        j += 1;
                    }
                },
                (Some(&(ka, ref ca)), None) => {
                    containers.push((ka, ca.clone()));
                    i += 1;
                }
                (None, Some(&(kb, ref cb))) => {
                    containers.push((kb, cb.clone()));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        Bitmap { containers }
    }

    /// In-place union.
    pub fn or_inplace(&mut self, other: &Bitmap) {
        *self = self.or(other);
    }

    /// Difference `self \ other`.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        let mut containers = Vec::with_capacity(self.containers.len());
        for &(chunk, ref c) in &self.containers {
            match other.container_index(chunk) {
                Ok(at) => {
                    if let Some(diff) = c.and_not(&other.containers[at].1) {
                        containers.push((chunk, diff));
                    }
                }
                Err(_) => containers.push((chunk, c.clone())),
            }
        }
        Bitmap { containers }
    }

    /// Intersection cardinality without materializing the result.
    pub fn intersect_len(&self, other: &Bitmap) -> usize {
        let mut count = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.containers.len() && j < other.containers.len() {
            let (ka, ref ca) = self.containers[i];
            let (kb, ref cb) = other.containers[j];
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += ca.intersect_len(cb);
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Whether the two sets share any value.
    pub fn intersects(&self, other: &Bitmap) -> bool {
        self.intersect_len(other) > 0
    }

    /// Whether every value of `self` is in `other`.
    pub fn is_subset(&self, other: &Bitmap) -> bool {
        self.len() == self.intersect_len(other)
    }

    /// Re-compresses every container (dense chunks become runs when
    /// beneficial). Call after bulk construction, not per mutation.
    pub fn run_optimize(&mut self) {
        for (_, c) in &mut self.containers {
            c.run_optimize();
        }
    }

    /// Ascending iterator over all stored values.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            containers: &self.containers,
            front: 0,
            inner: None,
            end: 1 << 32,
        }
    }

    /// Ascending iterator over stored values in `[start, end)` — `end` is
    /// `u64` so the range can cover `u32::MAX` inclusively.
    pub fn iter_range(&self, start: u32, end: u64) -> Iter<'_> {
        let front = self.containers.partition_point(|&(k, _)| k < key(start));
        let inner = self
            .containers
            .get(front)
            .and_then(|&(k, ref c)| (k == key(start)).then(|| ContainerIter::new(c, low(start))));
        Iter {
            containers: &self.containers,
            front: if inner.is_some() { front + 1 } else { front },
            inner: inner.map(|it| (key(start), it)),
            end,
        }
    }

    /// Splits the set into at most `p` cardinality-balanced, disjoint,
    /// ascending id-range iterators covering every stored value — the
    /// scatter side of scatter-gather execution.
    pub fn shards(&self, p: usize) -> Vec<Iter<'_>> {
        let total = self.len();
        let p = p.max(1).min(total.max(1));
        if total == 0 {
            return vec![self.iter()];
        }
        let mut shards = Vec::with_capacity(p);
        let mut start = 0u32;
        for s in 0..p {
            let end = if s + 1 == p {
                1u64 << 32
            } else {
                // First value of the next shard: the (s+1)·total/p-th
                // smallest element.
                match self.select((s + 1) * total / p) {
                    Some(v) => u64::from(v),
                    None => 1u64 << 32,
                }
            };
            if u64::from(start) >= end && s > 0 {
                continue; // Degenerate split point; shard would be empty.
            }
            shards.push(self.iter_range(start, end));
            if end >= 1u64 << 32 {
                break;
            }
            start = end as u32;
        }
        shards
    }
}

impl FromIterator<u32> for Bitmap {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut bitmap = Bitmap::new();
        for value in iter {
            bitmap.insert(value);
        }
        bitmap
    }
}

impl Extend<u32> for Bitmap {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for value in iter {
            self.insert(value);
        }
    }
}

impl PartialEq for Bitmap {
    fn eq(&self, other: &Self) -> bool {
        // Containers holding the same content may differ physically
        // (array vs runs), so compare semantically.
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for Bitmap {}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut set = f.debug_set();
        for (shown, value) in self.iter().enumerate() {
            if shown == 32 {
                set.entry(&format_args!("… {} more", self.len() - shown));
                return set.finish();
            }
            set.entry(&value);
        }
        set.finish()
    }
}

impl<'a> IntoIterator for &'a Bitmap {
    type Item = u32;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Ascending iterator over a [`Bitmap`], optionally bounded.
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    containers: &'a [(u16, Container)],
    /// Next container index once `inner` drains.
    front: usize,
    inner: Option<(u16, ContainerIter<'a>)>,
    /// Exclusive upper bound on yielded values.
    end: u64,
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if let Some((chunk, ref mut it)) = self.inner {
                if let Some(lo) = it.next() {
                    let value = (u32::from(chunk) << 16) | u32::from(lo);
                    if u64::from(value) >= self.end {
                        self.inner = None;
                        self.front = self.containers.len();
                        return None;
                    }
                    return Some(value);
                }
                self.inner = None;
            }
            let &(chunk, ref container) = self.containers.get(self.front)?;
            if (u64::from(chunk) << 16) >= self.end {
                self.front = self.containers.len();
                return None;
            }
            self.front += 1;
            self.inner = Some((chunk, ContainerIter::new(container, 0)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut bm = Bitmap::new();
        assert!(bm.insert(5));
        assert!(!bm.insert(5));
        assert!(bm.insert(1 << 20));
        assert!(bm.contains(5));
        assert!(bm.contains(1 << 20));
        assert!(!bm.contains(6));
        assert_eq!(bm.len(), 2);
        assert!(bm.remove(5));
        assert!(!bm.remove(5));
        assert_eq!(bm.len(), 1);
        assert!(!bm.is_empty());
        assert!(bm.remove(1 << 20));
        assert!(bm.is_empty());
    }

    #[test]
    fn array_promotes_to_bits_at_4096() {
        let mut bm = Bitmap::new();
        for v in 0..ARRAY_MAX as u32 {
            bm.insert(2 * v); // Spread out so no runs form.
        }
        assert_eq!(bm.len(), ARRAY_MAX);
        bm.insert(2 * ARRAY_MAX as u32);
        assert_eq!(bm.len(), ARRAY_MAX + 1);
        for v in 0..=ARRAY_MAX as u32 {
            assert!(bm.contains(2 * v), "missing {} after promotion", 2 * v);
        }
        // Demote back across the boundary.
        bm.remove(0);
        assert_eq!(bm.len(), ARRAY_MAX);
        for v in 1..=ARRAY_MAX as u32 {
            assert!(bm.contains(2 * v), "missing {} after demotion", 2 * v);
        }
    }

    #[test]
    fn from_range_is_run_compressed_and_correct() {
        let bm = Bitmap::from_range(10..300_000);
        assert_eq!(bm.len(), 300_000 - 10);
        assert!(!bm.contains(9));
        assert!(bm.contains(10));
        assert!(bm.contains(299_999));
        assert!(!bm.contains(300_000));
        assert_eq!(bm.min(), Some(10));
        assert_eq!(bm.max(), Some(299_999));
        assert!(Bitmap::from_range(7..7).is_empty());
    }

    #[test]
    fn set_algebra_small() {
        let a: Bitmap = [1u32, 2, 3, 100_000, 200_000].into_iter().collect();
        let b: Bitmap = [2u32, 3, 4, 200_000].into_iter().collect();
        assert_eq!(a.and(&b), [2u32, 3, 200_000].into_iter().collect());
        assert_eq!(
            a.or(&b),
            [1u32, 2, 3, 4, 100_000, 200_000].into_iter().collect()
        );
        assert_eq!(a.and_not(&b), [1u32, 100_000].into_iter().collect());
        assert_eq!(a.intersect_len(&b), 3);
        assert!(a.intersects(&b));
        assert!(!a.is_subset(&b));
        assert!(a.and(&b).is_subset(&a));
    }

    #[test]
    fn rank_select_roundtrip() {
        let bm = Bitmap::from_range(0..100_000);
        assert_eq!(bm.rank(0), 1);
        assert_eq!(bm.rank(99_999), 100_000);
        assert_eq!(bm.select(0), Some(0));
        assert_eq!(bm.select(70_000), Some(70_000));
        assert_eq!(bm.select(100_000), None);
        let sparse: Bitmap = [10u32, 20, 1 << 17, 1 << 30].into_iter().collect();
        for (k, v) in sparse.iter().enumerate() {
            assert_eq!(sparse.select(k), Some(v));
            assert_eq!(sparse.rank(v), k + 1);
        }
    }

    #[test]
    fn iter_range_respects_bounds() {
        let bm = Bitmap::from_range(0..200_000);
        let got: Vec<u32> = bm.iter_range(65_530, 65_540).collect();
        assert_eq!(got, (65_530..65_540).collect::<Vec<u32>>());
        let empty: Vec<u32> = bm.iter_range(300_000, 400_000).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn shards_partition_everything() {
        let bm = Bitmap::from_range(5..250_000);
        for p in [1usize, 2, 3, 4, 7, 16] {
            let mut all = Vec::new();
            let shards = bm.shards(p);
            assert!(shards.len() <= p);
            let mut sizes = Vec::new();
            for shard in shards {
                let part: Vec<u32> = shard.collect();
                sizes.push(part.len());
                all.extend(part);
            }
            assert_eq!(all.len(), bm.len(), "p={p} lost or duplicated values");
            assert!(all.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(all.first(), Some(&5));
            // Balanced to within one select-granularity step.
            let max = *sizes.iter().max().unwrap();
            let min = *sizes.iter().min().unwrap();
            assert!(max - min <= 1, "p={p} imbalance: {sizes:?}");
        }
    }

    #[test]
    fn run_optimize_preserves_content() {
        let mut bm: Bitmap = (0u32..10_000).chain(50_000..50_010).collect();
        let before: Vec<u32> = bm.iter().collect();
        bm.run_optimize();
        let after: Vec<u32> = bm.iter().collect();
        assert_eq!(before, after);
        // Mutation after optimization still works.
        assert!(bm.remove(5_000));
        assert!(bm.insert(5_000));
        assert!(bm.insert(40_000));
        assert_eq!(bm.len(), before.len() + 1);
    }

    #[test]
    fn equality_is_semantic_across_representations() {
        let runs = Bitmap::from_range(0..5_000);
        let inserted: Bitmap = (0u32..5_000).collect();
        assert_eq!(runs, inserted);
        let mut optimized = inserted.clone();
        optimized.run_optimize();
        assert_eq!(optimized, runs);
    }
}
