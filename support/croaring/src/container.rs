//! The three physical container kinds of a 16-bit chunk.
//!
//! Every container stores the low 16 bits of the values sharing one high
//! 16-bit key:
//!
//! * [`Container::Array`] — a sorted `Vec<u16>`, at most [`ARRAY_MAX`]
//!   elements (4 096). Membership is a binary search, intersection with
//!   anything is a probe loop proportional to the array.
//! * [`Container::Bits`] — 1 024 `u64` words (one bit per possible low
//!   value) with the cardinality cached. Pairwise `and`/`or`/`and_not`/
//!   `intersect_len` are 64-way word-parallel.
//! * [`Container::Runs`] — sorted, disjoint, non-adjacent inclusive
//!   intervals `(start, last)`. One run covering the whole chunk
//!   represents 65 536 values in 4 bytes — the shape of dense object-id
//!   universes.
//!
//! Containers self-normalize: an array outgrowing [`ARRAY_MAX`] promotes
//! to bits, a bits container shrinking to [`ARRAY_MAX`] demotes to an
//! array, and a run list degenerating into many short runs converts to
//! whichever of the other two fits. Binary ops return array or bits
//! containers; [`Container::run_optimize`] re-compresses afterwards.

/// Maximum cardinality of an array container; one more element promotes
/// it to a bits container (and a bits container demotes back at this
/// size).
pub const ARRAY_MAX: usize = 4096;

/// Maximum number of runs before a run container converts to array or
/// bits (beyond this the run list is no smaller than the alternatives).
pub const RUN_MAX: usize = 2047;

/// Number of `u64` words in a bits container.
pub const WORDS: usize = 1 << 10;

/// One 16-bit chunk of a bitmap.
#[derive(Clone, Debug)]
pub enum Container {
    /// Sorted values, `len <= ARRAY_MAX`.
    Array(Vec<u16>),
    /// Uncompressed bit set with cached cardinality.
    Bits { words: Box<[u64; WORDS]>, len: u32 },
    /// Sorted, disjoint, non-adjacent inclusive runs.
    Runs(Vec<(u16, u16)>),
}

impl Container {
    /// An empty array container.
    pub fn new() -> Self {
        Container::Array(Vec::new())
    }

    /// A container holding the inclusive low-value range `lo..=hi`.
    pub fn full_run(lo: u16, hi: u16) -> Self {
        debug_assert!(lo <= hi);
        Container::Runs(vec![(lo, hi)])
    }

    pub fn len(&self) -> usize {
        match self {
            Container::Array(values) => values.len(),
            Container::Bits { len, .. } => *len as usize,
            Container::Runs(runs) => runs
                .iter()
                .map(|&(start, last)| (last - start) as usize + 1)
                .sum(),
        }
    }

    pub fn is_empty(&self) -> bool {
        match self {
            Container::Array(values) => values.is_empty(),
            Container::Bits { len, .. } => *len == 0,
            Container::Runs(runs) => runs.is_empty(),
        }
    }

    pub fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(values) => values.binary_search(&low).is_ok(),
            Container::Bits { words, .. } => words[(low >> 6) as usize] & (1u64 << (low & 63)) != 0,
            Container::Runs(runs) => match runs.partition_point(|&(start, _)| start <= low) {
                0 => false,
                at => runs[at - 1].1 >= low,
            },
        }
    }

    /// Inserts `low`; returns whether it was absent. Promotes an array at
    /// the [`ARRAY_MAX`] boundary and re-forms a degenerate run list.
    pub fn insert(&mut self, low: u16) -> bool {
        match self {
            Container::Array(values) => match values.binary_search(&low) {
                Ok(_) => false,
                Err(at) => {
                    if values.len() == ARRAY_MAX {
                        let mut bits = self.to_bits();
                        bits.insert(low);
                        *self = bits;
                    } else {
                        values.insert(at, low);
                    }
                    true
                }
            },
            Container::Bits { words, len } => {
                let word = &mut words[(low >> 6) as usize];
                let mask = 1u64 << (low & 63);
                if *word & mask != 0 {
                    false
                } else {
                    *word |= mask;
                    *len += 1;
                    true
                }
            }
            Container::Runs(runs) => {
                // The run starting at or before `low`, if any.
                let at = runs.partition_point(|&(start, _)| start <= low);
                if at > 0 && runs[at - 1].1 >= low {
                    return false; // Covered.
                }
                let extends_prev = at > 0 && low > 0 && runs[at - 1].1 == low - 1;
                let extends_next = at < runs.len() && low < u16::MAX && runs[at].0 == low + 1;
                match (extends_prev, extends_next) {
                    (true, true) => {
                        // Bridges two runs into one.
                        runs[at - 1].1 = runs[at].1;
                        runs.remove(at);
                    }
                    (true, false) => runs[at - 1].1 = low,
                    (false, true) => runs[at].0 = low,
                    (false, false) => {
                        runs.insert(at, (low, low));
                        if runs.len() > RUN_MAX {
                            *self = self.to_bits().normalized();
                        }
                    }
                }
                true
            }
        }
    }

    /// Removes `low`; returns whether it was present. Demotes a bits
    /// container at the [`ARRAY_MAX`] boundary and splits runs.
    pub fn remove(&mut self, low: u16) -> bool {
        match self {
            Container::Array(values) => match values.binary_search(&low) {
                Ok(at) => {
                    values.remove(at);
                    true
                }
                Err(_) => false,
            },
            Container::Bits { words, len } => {
                let word = &mut words[(low >> 6) as usize];
                let mask = 1u64 << (low & 63);
                if *word & mask == 0 {
                    return false;
                }
                *word &= !mask;
                *len -= 1;
                if *len as usize <= ARRAY_MAX {
                    *self = std::mem::take(self).normalized();
                }
                true
            }
            Container::Runs(runs) => {
                let at = runs.partition_point(|&(start, _)| start <= low);
                if at == 0 || runs[at - 1].1 < low {
                    return false;
                }
                let (start, last) = runs[at - 1];
                match (start == low, last == low) {
                    (true, true) => {
                        runs.remove(at - 1);
                    }
                    (true, false) => runs[at - 1].0 = low + 1,
                    (false, true) => runs[at - 1].1 = low - 1,
                    (false, false) => {
                        // Split the run around the removed value.
                        runs[at - 1].1 = low - 1;
                        runs.insert(at, (low + 1, last));
                        if runs.len() > RUN_MAX {
                            *self = self.to_bits().normalized();
                        }
                    }
                }
                true
            }
        }
    }

    /// Number of stored values `<= low`.
    pub fn rank(&self, low: u16) -> usize {
        match self {
            Container::Array(values) => values.partition_point(|&v| v <= low),
            Container::Bits { words, .. } => {
                let word_index = (low >> 6) as usize;
                let full: u32 = words[..word_index].iter().map(|w| w.count_ones()).sum();
                let bit = low & 63;
                let mask = if bit == 63 {
                    u64::MAX
                } else {
                    (1u64 << (bit + 1)) - 1
                };
                full as usize + (words[word_index] & mask).count_ones() as usize
            }
            Container::Runs(runs) => {
                let mut count = 0usize;
                for &(start, last) in runs {
                    if start > low {
                        break;
                    }
                    count += (last.min(low) - start) as usize + 1;
                }
                count
            }
        }
    }

    /// The `k`-th smallest stored value (0-based). Panics when
    /// `k >= len()`.
    pub fn select(&self, k: usize) -> u16 {
        match self {
            Container::Array(values) => values[k],
            Container::Bits { words, .. } => {
                let mut remaining = k;
                for (word_index, &word) in words.iter().enumerate() {
                    let ones = word.count_ones() as usize;
                    if remaining < ones {
                        let mut word = word;
                        for _ in 0..remaining {
                            word &= word - 1; // Clear lowest set bit.
                        }
                        return ((word_index as u16) << 6) | word.trailing_zeros() as u16;
                    }
                    remaining -= ones;
                }
                unreachable!("select index out of range")
            }
            Container::Runs(runs) => {
                let mut remaining = k;
                for &(start, last) in runs {
                    let run_len = (last - start) as usize + 1;
                    if remaining < run_len {
                        return start + remaining as u16;
                    }
                    remaining -= run_len;
                }
                unreachable!("select index out of range")
            }
        }
    }

    /// The content as a bits container (copying).
    pub fn to_bits(&self) -> Container {
        match self {
            Container::Bits { words, len } => Container::Bits {
                words: words.clone(),
                len: *len,
            },
            Container::Array(values) => {
                let mut words = Box::new([0u64; WORDS]);
                for &v in values {
                    words[(v >> 6) as usize] |= 1u64 << (v & 63);
                }
                Container::Bits {
                    words,
                    len: values.len() as u32,
                }
            }
            Container::Runs(runs) => {
                let mut words = Box::new([0u64; WORDS]);
                let mut len = 0u32;
                for &(start, last) in runs {
                    set_word_range(&mut words, start, last);
                    len += (last - start) as u32 + 1;
                }
                Container::Bits { words, len }
            }
        }
    }

    /// Re-forms the container into the canonical array/bits shape for its
    /// cardinality (runs are only produced by [`Container::run_optimize`]
    /// or the run constructors).
    pub fn normalized(self) -> Container {
        match self {
            Container::Bits { words, len } if (len as usize) <= ARRAY_MAX => {
                let mut values = Vec::with_capacity(len as usize);
                for (word_index, &word) in words.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let bit = word.trailing_zeros() as u16;
                        values.push(((word_index as u16) << 6) | bit);
                        word &= word - 1;
                    }
                }
                Container::Array(values)
            }
            other @ Container::Bits { .. } => other,
            Container::Array(values) if values.len() > ARRAY_MAX => {
                Container::Array(values).to_bits()
            }
            other => other,
        }
    }

    /// Converts to a run container when the content compresses well
    /// (average run length of at least four values), to the canonical
    /// array/bits shape otherwise.
    pub fn run_optimize(&mut self) {
        let mut runs: Vec<(u16, u16)> = Vec::new();
        for v in self.iter_values() {
            match runs.last_mut() {
                Some((_, last)) if *last + 1 == v => *last = v,
                _ => runs.push((v, v)),
            }
        }
        let len = self.len();
        if !runs.is_empty() && runs.len() <= RUN_MAX && runs.len() * 4 <= len {
            *self = Container::Runs(runs);
        }
    }

    /// All stored low values, ascending (allocation-free cursor).
    pub fn iter_values(&self) -> ContainerIter<'_> {
        ContainerIter::new(self, 0)
    }

    /// Intersection; `None` when empty.
    pub fn and(&self, other: &Container) -> Option<Container> {
        let result = match (self, other) {
            // A probe loop from the smaller array side stays an array.
            (Container::Array(values), _) => Container::Array(
                values
                    .iter()
                    .copied()
                    .filter(|&v| other.contains(v))
                    .collect(),
            ),
            (_, Container::Array(values)) => Container::Array(
                values
                    .iter()
                    .copied()
                    .filter(|&v| self.contains(v))
                    .collect(),
            ),
            (Container::Bits { words: a, .. }, Container::Bits { words: b, .. }) => {
                let mut words = Box::new([0u64; WORDS]);
                let mut len = 0u32;
                for i in 0..WORDS {
                    let w = a[i] & b[i];
                    len += w.count_ones();
                    words[i] = w;
                }
                Container::Bits { words, len }.normalized()
            }
            // At least one run container and no array: go word-parallel.
            _ => return self.to_bits().and(&other.to_bits()),
        };
        (!result.is_empty()).then_some(result)
    }

    /// Intersection cardinality without materializing the result.
    pub fn intersect_len(&self, other: &Container) -> usize {
        match (self, other) {
            (Container::Array(values), _) => values.iter().filter(|&&v| other.contains(v)).count(),
            (_, Container::Array(values)) => values.iter().filter(|&&v| self.contains(v)).count(),
            (Container::Bits { words: a, .. }, Container::Bits { words: b, .. }) => (0..WORDS)
                .map(|i| (a[i] & b[i]).count_ones() as usize)
                .sum(),
            (Container::Runs(a), Container::Runs(b)) => {
                // Two-pointer overlap of sorted disjoint interval lists.
                let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
                while i < a.len() && j < b.len() {
                    let lo = a[i].0.max(b[j].0);
                    let hi = a[i].1.min(b[j].1);
                    if lo <= hi {
                        count += (hi - lo) as usize + 1;
                    }
                    if a[i].1 <= b[j].1 {
                        i += 1;
                    } else {
                        j += 1;
                    }
                }
                count
            }
            _ => self.to_bits().intersect_len(&other.to_bits()),
        }
    }

    /// Union.
    pub fn or(&self, other: &Container) -> Container {
        match (self, other) {
            (Container::Array(a), Container::Array(b)) if a.len() + b.len() <= ARRAY_MAX => {
                let mut merged = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0usize, 0usize);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            merged.push(a[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            merged.push(b[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            merged.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                merged.extend_from_slice(&a[i..]);
                merged.extend_from_slice(&b[j..]);
                Container::Array(merged)
            }
            _ => {
                let (mut acc, small) = if matches!(self, Container::Bits { .. }) {
                    (self.to_bits(), other)
                } else if matches!(other, Container::Bits { .. }) {
                    (other.to_bits(), self)
                } else {
                    (self.to_bits(), other)
                };
                match (&mut acc, small) {
                    (Container::Bits { words, len }, Container::Bits { words: b, .. }) => {
                        let mut total = 0u32;
                        for i in 0..WORDS {
                            words[i] |= b[i];
                            total += words[i].count_ones();
                        }
                        *len = total;
                    }
                    (acc_bits, small) => {
                        for v in small.iter_values() {
                            acc_bits.insert(v);
                        }
                    }
                }
                acc.normalized()
            }
        }
    }

    /// Difference `self \ other`; `None` when empty.
    pub fn and_not(&self, other: &Container) -> Option<Container> {
        let result = match (self, other) {
            (Container::Array(values), _) => Container::Array(
                values
                    .iter()
                    .copied()
                    .filter(|&v| !other.contains(v))
                    .collect(),
            ),
            (Container::Bits { words: a, .. }, Container::Bits { words: b, .. }) => {
                let mut words = Box::new([0u64; WORDS]);
                let mut len = 0u32;
                for i in 0..WORDS {
                    let w = a[i] & !b[i];
                    len += w.count_ones();
                    words[i] = w;
                }
                Container::Bits { words, len }.normalized()
            }
            _ => return self.to_bits().and_not(&other.to_bits()),
        };
        (!result.is_empty()).then_some(result)
    }
}

impl Default for Container {
    fn default() -> Self {
        Container::new()
    }
}

/// Sets bits `start..=last` across the word array.
fn set_word_range(words: &mut [u64; WORDS], start: u16, last: u16) {
    let (first_word, last_word) = ((start >> 6) as usize, (last >> 6) as usize);
    let head = u64::MAX << (start & 63);
    let tail = u64::MAX >> (63 - (last & 63));
    if first_word == last_word {
        words[first_word] |= head & tail;
    } else {
        words[first_word] |= head;
        for word in &mut words[first_word + 1..last_word] {
            *word = u64::MAX;
        }
        words[last_word] |= tail;
    }
}

/// Ascending cursor over one container's low values.
#[derive(Clone, Debug)]
pub enum ContainerIter<'a> {
    Array(std::slice::Iter<'a, u16>),
    Bits {
        words: &'a [u64; WORDS],
        word_index: usize,
        word: u64,
    },
    Runs {
        runs: &'a [(u16, u16)],
        run_index: usize,
        /// Next value to yield (u32 so the run end 65 535 does not wrap).
        next: u32,
    },
}

impl<'a> ContainerIter<'a> {
    /// A cursor positioned at the first stored value `>= from`.
    pub fn new(container: &'a Container, from: u16) -> Self {
        match container {
            Container::Array(values) => {
                let at = values.partition_point(|&v| v < from);
                ContainerIter::Array(values[at..].iter())
            }
            Container::Bits { words, .. } => {
                let word_index = (from >> 6) as usize;
                let word = words[word_index] & (u64::MAX << (from & 63));
                ContainerIter::Bits {
                    words,
                    word_index,
                    word,
                }
            }
            Container::Runs(runs) => {
                let run_index = runs.partition_point(|&(_, last)| last < from);
                let next = match runs.get(run_index) {
                    Some(&(start, _)) => u32::from(start.max(from)),
                    None => 1 << 16,
                };
                ContainerIter::Runs {
                    runs,
                    run_index,
                    next,
                }
            }
        }
    }
}

impl Iterator for ContainerIter<'_> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        match self {
            ContainerIter::Array(iter) => iter.next().copied(),
            ContainerIter::Bits {
                words,
                word_index,
                word,
            } => {
                while *word == 0 {
                    *word_index += 1;
                    if *word_index >= WORDS {
                        return None;
                    }
                    *word = words[*word_index];
                }
                let bit = word.trailing_zeros() as u16;
                *word &= *word - 1;
                Some(((*word_index as u16) << 6) | bit)
            }
            ContainerIter::Runs {
                runs,
                run_index,
                next,
            } => {
                let &(_, last) = runs.get(*run_index)?;
                let value = *next as u16;
                if *next >= u32::from(last) {
                    *run_index += 1;
                    *next = match runs.get(*run_index) {
                        Some(&(start, _)) => u32::from(start),
                        None => 1 << 16,
                    };
                } else {
                    *next += 1;
                }
                Some(value)
            }
        }
    }
}
