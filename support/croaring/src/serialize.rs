//! Container-level binary serialization.
//!
//! The encoding preserves the *physical* container layout (array / bits /
//! runs), so a run-compressed universe round-trips in a handful of bytes
//! and a bits container never degrades to 65 536 varints:
//!
//! ```text
//! bitmap   := container_count:u32 container*
//! container:= key:u16 tag:u8 payload
//! payload  := tag 0 (array): count:u32 value:u16 ×count     (sorted, unique)
//!          |  tag 1 (bits):  len:u32   word:u64 ×1024       (len == popcount)
//!          |  tag 2 (runs):  count:u32 (start:u16 last:u16) ×count
//! ```
//!
//! Everything is little-endian. [`Bitmap::deserialize`] validates every
//! structural invariant (ordered keys, sorted arrays, disjoint
//! non-adjacent runs, cached cardinality equal to the popcount) and
//! returns `None` on any violation — corrupted input can never construct
//! a bitmap that breaks the container algebra, only fail to load.

use crate::container::{Container, WORDS};
use crate::Bitmap;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian read cursor.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let slice = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn write_container(out: &mut Vec<u8>, container: &Container) {
    match container {
        Container::Array(values) => {
            out.push(0);
            put_u32(out, values.len() as u32);
            for &v in values {
                put_u16(out, v);
            }
        }
        Container::Bits { words, len } => {
            out.push(1);
            put_u32(out, *len);
            for word in words.iter() {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        Container::Runs(runs) => {
            out.push(2);
            put_u32(out, runs.len() as u32);
            for &(start, last) in runs {
                put_u16(out, start);
                put_u16(out, last);
            }
        }
    }
}

fn read_container(cursor: &mut Cursor<'_>) -> Option<Container> {
    match cursor.u8()? {
        0 => {
            let count = cursor.u32()? as usize;
            if count > 1 << 16 {
                return None;
            }
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(cursor.u16()?);
            }
            if !values.windows(2).all(|w| w[0] < w[1]) {
                return None;
            }
            Some(Container::Array(values))
        }
        1 => {
            let len = cursor.u32()?;
            let mut words = Box::new([0u64; WORDS]);
            let mut popcount = 0u32;
            for word in words.iter_mut() {
                let b = cursor.take(8)?;
                *word = u64::from_le_bytes(b.try_into().ok()?);
                popcount += word.count_ones();
            }
            if popcount != len {
                return None;
            }
            Some(Container::Bits { words, len })
        }
        2 => {
            let count = cursor.u32()? as usize;
            if count > 1 << 16 {
                return None;
            }
            let mut runs = Vec::with_capacity(count);
            for _ in 0..count {
                let start = cursor.u16()?;
                let last = cursor.u16()?;
                if start > last {
                    return None;
                }
                runs.push((start, last));
            }
            // Sorted, disjoint, non-adjacent: the next run must start at
            // least two past the previous run's end.
            if !runs
                .windows(2)
                .all(|w| u32::from(w[0].1) + 1 < u32::from(w[1].0))
            {
                return None;
            }
            Some(Container::Runs(runs))
        }
        _ => None,
    }
}

impl Bitmap {
    /// Serializes into `out` (appending), preserving the physical
    /// container layout.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        put_u32(out, self.containers.len() as u32);
        for (key, container) in &self.containers {
            put_u16(out, *key);
            write_container(out, container);
        }
    }

    /// Serializes to a fresh buffer. See the module docs for the format.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.serialize_into(&mut out);
        out
    }

    /// Parses a bitmap written by [`Bitmap::serialize`], consuming the
    /// whole slice. Returns `None` on truncation, trailing garbage, or
    /// any structural-invariant violation — never panics on corrupt
    /// input.
    pub fn deserialize(bytes: &[u8]) -> Option<Bitmap> {
        let mut cursor = Cursor::new(bytes);
        let bitmap = Self::read_from(&mut cursor)?;
        cursor.done().then_some(bitmap)
    }

    fn read_from(cursor: &mut Cursor<'_>) -> Option<Bitmap> {
        let count = cursor.u32()? as usize;
        if count > 1 << 16 {
            return None;
        }
        let mut containers = Vec::with_capacity(count);
        let mut last_key: Option<u16> = None;
        for _ in 0..count {
            let key = cursor.u16()?;
            if last_key.is_some_and(|prev| prev >= key) {
                return None;
            }
            last_key = Some(key);
            let container = read_container(cursor)?;
            if container.is_empty() {
                return None;
            }
            containers.push((key, container));
        }
        Some(Bitmap { containers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_across_container_kinds() {
        let cases: Vec<Bitmap> = vec![
            Bitmap::new(),
            [5u32, 9, 70_000].into_iter().collect(),
            (0u32..10_000).collect(),                     // bits container
            Bitmap::from_range(0..200_000),               // runs
            (0u32..8_192).step_by(2).collect::<Bitmap>(), // promoted, no runs
        ];
        for bitmap in cases {
            let bytes = bitmap.serialize();
            let back = Bitmap::deserialize(&bytes).expect("valid encoding");
            assert_eq!(back, bitmap);
        }
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        let bitmap: Bitmap = (0u32..5_000).collect();
        let bytes = bitmap.serialize();
        // Truncations at every prefix length parse to None, never panic.
        for cut in 0..bytes.len() {
            assert!(Bitmap::deserialize(&bytes[..cut]).is_none(), "cut={cut}");
        }
        // Trailing garbage is rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert!(Bitmap::deserialize(&long).is_none());
        // A wrong cached cardinality is rejected.
        let mut wrong_len = bytes.clone();
        wrong_len[4 + 2 + 1] ^= 1; // bits container cached len, low byte
        assert!(Bitmap::deserialize(&wrong_len).is_none());
        // An unsorted array is rejected.
        let array: Bitmap = [3u32, 8].into_iter().collect();
        let mut swapped = array.serialize();
        let tail = swapped.len();
        swapped.swap(tail - 4, tail - 2);
        swapped.swap(tail - 3, tail - 1);
        assert!(Bitmap::deserialize(&swapped).is_none());
    }
}
