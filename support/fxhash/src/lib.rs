//! Offline stand-in for the `fxhash` / `rustc-hash` crates.
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate implements the Fx hash function (the Firefox/rustc hasher)
//! in-tree: a multiply-and-rotate mix per word, with no per-hasher seed.
//! It is **not** DoS-resistant — all keys hashed in this workspace are
//! small dense interned identifiers (`ConceptId`, `PathId`, `Ind`, packed
//! attribute words) under the process's own control, which is exactly the
//! workload Fx was designed for and where SipHash's per-byte cost
//! dominates the lookup.
//!
//! The API mirrors the slice of `rustc-hash`/`fxhash` the workspace uses:
//! [`FxHasher`], [`FxBuildHasher`], and the [`FxHashMap`] / [`FxHashSet`]
//! aliases.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Zero-sized builder producing default [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hash state: one 64-bit word mixed by rotate-xor-multiply.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_to_hash(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
        assert_eq!(hash_of(&"constraint"), hash_of(&"constraint"));
    }

    #[test]
    fn distinguishes_small_keys() {
        let values: Vec<u64> = (0..1000).map(|i| hash_of(&(i as u32))).collect();
        let distinct: std::collections::HashSet<u64> = values.iter().copied().collect();
        assert_eq!(distinct.len(), values.len());
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        // Streams differing only past the last full word must differ.
        assert_ne!(
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9]),
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 10])
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        map.insert((1, 2), 3);
        assert_eq!(map.get(&(1, 2)), Some(&3));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(7));
        assert!(!set.insert(7));
    }
}
