//! Structural abstraction of DL models into the concept languages SL and
//! QL (Section 3.2 of the paper).
//!
//! The translation deliberately forgets the *non-structural* parts:
//! constraint clauses of classes and query classes are dropped, which is
//! exactly what makes the resulting subsumption check sound but incomplete
//! (Proposition 3.1): if the QL translation of a query is Σ-subsumed by the
//! QL translation of a view, then in every database state the query's
//! answers are contained in the view's answers.
//!
//! * [`translate_schema`] maps class and attribute declarations to SL
//!   axioms (Figure 6).
//! * [`translate_query`] maps a query class to a QL concept (the concepts
//!   `C_Q` and `D_V` of Section 3.2).
//! * [`translate_model`] bundles both and returns a [`TranslatedModel`]
//!   ready to be handed to the subsumption checker.

pub mod error;
pub mod query;
pub mod schema;

pub use error::TranslateError;
pub use query::translate_query;
pub use schema::translate_schema;

use std::collections::HashMap;
use subq_concepts::prelude::*;
use subq_dl::DlModel;

/// The universal class of DL; it is mapped to `⊤` in QL and dropped from SL
/// axioms (where it would be trivially true).
pub const OBJECT_CLASS: &str = "Object";

/// A fully translated DL model.
#[derive(Debug, Default)]
pub struct TranslatedModel {
    /// The vocabulary shared by the schema and all query concepts.
    pub vocabulary: Vocabulary,
    /// The term arena holding all query concepts.
    pub arena: TermArena,
    /// The SL schema Σ obtained from the structural part of the schema.
    pub schema: Schema,
    /// One QL concept per query class, keyed by query class name.
    pub queries: HashMap<String, ConceptId>,
}

impl TranslatedModel {
    /// The QL concept of a query class, if it was translated.
    pub fn query_concept(&self, name: &str) -> Option<ConceptId> {
        self.queries.get(name).copied()
    }
}

/// Translates a whole model: the schema into SL axioms and every query
/// class into a QL concept.
pub fn translate_model(model: &DlModel) -> Result<TranslatedModel, TranslateError> {
    let mut out = TranslatedModel::default();
    out.schema = translate_schema(model, &mut out.vocabulary)?;
    for query in &model.queries {
        let concept = translate_query(query, model, &mut out.vocabulary, &mut out.arena)?;
        out.queries.insert(query.name.clone(), concept);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_calculus::SubsumptionChecker;
    use subq_dl::samples;

    /// End-to-end reproduction of the paper's worked example: translating
    /// Figures 1, 3 and 5 and running the calculus detects that
    /// QueryPatient is subsumed by ViewPatient, but not vice versa.
    #[test]
    fn paper_example_subsumption_detected_after_translation() {
        let model = samples::medical_model();
        let mut translated = translate_model(&model).expect("translates");
        let query = translated
            .query_concept("QueryPatient")
            .expect("QueryPatient translated");
        let view = translated
            .query_concept("ViewPatient")
            .expect("ViewPatient translated");
        let checker = SubsumptionChecker::new(&translated.schema);
        assert!(checker.subsumes(&mut translated.arena, query, view));
        assert!(!checker.subsumes(&mut translated.arena, view, query));
    }

    /// Dropping the schema loses the subsumption — the schema knowledge
    /// (inverse attributes, necessary name, suffers typing) is essential.
    #[test]
    fn subsumption_requires_schema_knowledge() {
        let model = samples::medical_model();
        let mut translated = translate_model(&model).expect("translates");
        let query = translated.query_concept("QueryPatient").expect("present");
        let view = translated.query_concept("ViewPatient").expect("present");
        let empty = Schema::new();
        let checker = SubsumptionChecker::new(&empty);
        assert!(!checker.subsumes(&mut translated.arena, query, view));
    }

    /// Every translated query class is subsumed by each of its (schema
    /// class) superclasses.
    #[test]
    fn queries_are_subsumed_by_their_superclasses() {
        let model = samples::medical_model();
        let mut translated = translate_model(&model).expect("translates");
        let checker = SubsumptionChecker::new(&translated.schema);
        for query_decl in &model.queries {
            let concept = translated
                .query_concept(&query_decl.name)
                .expect("translated");
            for sup in &query_decl.is_a {
                if model.class(sup).is_none() {
                    continue;
                }
                let class = translated
                    .vocabulary
                    .find_class(sup)
                    .expect("superclass interned");
                let sup_concept = translated.arena.prim(class);
                assert!(
                    checker.subsumes(&mut translated.arena, concept, sup_concept),
                    "{} should be subsumed by its superclass {}",
                    query_decl.name,
                    sup
                );
            }
        }
    }
}
