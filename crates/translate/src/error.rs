//! Errors of the structural translation.

use std::fmt;

/// A problem encountered while abstracting a DL model into SL/QL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// A path step uses an attribute (or synonym) that is not declared.
    UnknownAttribute { attribute: String, context: String },
    /// An attribute synonym appears inside a schema declaration, where only
    /// primitive attributes are allowed.
    SynonymInSchema { synonym: String, context: String },
    /// Query classes inherit from each other in a cycle, so their
    /// structural definitions cannot be expanded.
    CyclicQueryInheritance { query: String },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::UnknownAttribute { attribute, context } => {
                write!(
                    f,
                    "attribute `{attribute}` used in {context} is not declared"
                )
            }
            TranslateError::SynonymInSchema { synonym, context } => write!(
                f,
                "attribute synonym `{synonym}` cannot appear in schema declaration {context}"
            ),
            TranslateError::CyclicQueryInheritance { query } => write!(
                f,
                "query class `{query}` participates in a cyclic isA chain of query classes"
            ),
        }
    }
}

impl std::error::Error for TranslateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = TranslateError::UnknownAttribute {
            attribute: "knows".into(),
            context: "query class `Q`".into(),
        };
        assert!(e.to_string().contains("knows"));
        assert!(e.to_string().contains('Q'));
        let e = TranslateError::CyclicQueryInheritance { query: "Q".into() };
        assert!(e.to_string().contains("cyclic"));
    }
}
