//! Translation of the structural part of a DL schema into SL axioms
//! (Figure 6 of the paper).
//!
//! For each class declaration `Class A isA B with attribute [,necessary]
//! [,single] a: R … end A`:
//!
//! * every isA link becomes `A ⊑ B`,
//! * every attribute typing becomes `A ⊑ ∀a.R`,
//! * every `necessary` marker becomes `A ⊑ ∃a`,
//! * every `single` marker becomes `A ⊑ (≤1 a)`,
//! * the constraint clause (the non-structural part) is dropped.
//!
//! For each attribute declaration `Attribute a with domain: D range: R`,
//! the typing becomes `a ⊑ D × R`. Inverse synonyms generate no axiom —
//! they are resolved away when queries are translated.
//!
//! The universal class `Object` is dropped wherever it would produce a
//! trivial axiom.

use crate::error::TranslateError;
use crate::OBJECT_CLASS;
use subq_concepts::prelude::*;
use subq_dl::DlModel;

/// Translates the schema declarations of a model into an SL schema.
pub fn translate_schema(model: &DlModel, voc: &mut Vocabulary) -> Result<Schema, TranslateError> {
    let mut schema = Schema::new();

    for class in &model.classes {
        let class_id = voc.class(&class.name);
        for sup in &class.is_a {
            if sup == OBJECT_CLASS {
                continue;
            }
            let sup_id = voc.class(sup);
            schema.add_isa(class_id, sup_id);
        }
        for spec in &class.attributes {
            let attr_id = match model.resolve_attribute(&spec.name) {
                Some((decl, false)) => voc.attribute(&decl.name),
                Some((decl, true)) => {
                    return Err(TranslateError::SynonymInSchema {
                        synonym: spec.name.clone(),
                        context: format!("class `{}` (inverse of `{}`)", class.name, decl.name),
                    })
                }
                // Attributes used in a class without a global declaration
                // are still structural information: intern them directly.
                None => voc.attribute(&spec.name),
            };
            if spec.range != OBJECT_CLASS {
                let range_id = voc.class(&spec.range);
                schema.add_value_restriction(class_id, attr_id, range_id);
            }
            if spec.necessary {
                schema.add_necessary(class_id, attr_id);
            }
            if spec.single {
                schema.add_functional(class_id, attr_id);
            }
        }
        // The constraint clause is the non-structural part: ignored here.
    }

    for attr in &model.attributes {
        let attr_id = voc.attribute(&attr.name);
        if attr.domain == OBJECT_CLASS && attr.range == OBJECT_CLASS {
            continue;
        }
        // `P ⊑ A₁ × A₂` needs both classes; when one side is Object the
        // paper's axiom degenerates, so we keep the informative side by
        // interning Object as an ordinary (unconstrained) class.
        let domain_id = voc.class(&attr.domain);
        let range_id = voc.class(&attr.range);
        schema.add_attr_typing(attr_id, domain_id, range_id);
    }

    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_dl::parser::parse_model;
    use subq_dl::samples;

    /// Figure 6: the SL axioms of the medical schema.
    #[test]
    fn medical_schema_produces_figure_6_axioms() {
        let model = samples::medical_model();
        let mut voc = Vocabulary::new();
        let schema = translate_schema(&model, &mut voc).expect("translates");
        let rendered = schema.render(&voc);
        for expected in [
            "Patient ⊑ Person",
            "Patient ⊑ ∀takes.Drug",
            "Patient ⊑ ∀consults.Doctor",
            "Patient ⊑ ∀suffers.Disease",
            "Patient ⊑ ∃suffers",
            "Person ⊑ ∀name.String",
            "Person ⊑ ∃name",
            "Person ⊑ (≤1 name)",
            "Doctor ⊑ ∀skilled_in.Disease",
            "skilled_in ⊑ Person × Topic",
        ] {
            assert!(
                rendered.contains(expected),
                "missing Figure 6 axiom `{expected}` in:\n{rendered}"
            );
        }
    }

    /// The constraint clause of Patient (the non-structural part) does not
    /// contribute any axiom.
    #[test]
    fn constraint_clauses_are_dropped() {
        let model = samples::medical_model();
        let mut voc = Vocabulary::new();
        let schema = translate_schema(&model, &mut voc).expect("translates");
        // All axioms stem from isA links, attribute specs, and attribute
        // declarations; Patient has 1 isA + 3 typings + 1 necessary = 5.
        let patient = voc.find_class("Patient").expect("interned");
        let patient_axioms = schema
            .axioms()
            .iter()
            .filter(|ax| matches!(ax, SchemaAxiom::Inclusion(a, _) if *a == patient))
            .count();
        assert_eq!(patient_axioms, 5);
    }

    /// `Object` produces no trivial axioms.
    #[test]
    fn object_class_is_dropped() {
        let model = parse_model(
            "Class Object with end Object
             Class Thing isA Object with
               attribute
                 related: Object
             end Thing",
        )
        .expect("parses");
        let mut voc = Vocabulary::new();
        let schema = translate_schema(&model, &mut voc).expect("translates");
        assert!(schema.is_empty(), "got axioms: {}", schema.render(&voc));
    }

    /// Synonyms in schema declarations are rejected.
    #[test]
    fn synonym_in_schema_is_an_error() {
        let model = parse_model(
            "Class Person with end Person
             Class Topic with end Topic
             Attribute skilled_in with
               domain: Person
               range: Topic
               inverse: specialist
             end skilled_in
             Class Doctor with
               attribute
                 specialist: Person
             end Doctor",
        )
        .expect("parses");
        let mut voc = Vocabulary::new();
        let err = translate_schema(&model, &mut voc).expect_err("must fail");
        assert!(matches!(err, TranslateError::SynonymInSchema { .. }));
    }

    /// Attributes used in classes without a global declaration are still
    /// translated (the paper's footnote 2 allows leaving those implicit in
    /// examples).
    #[test]
    fn undeclared_attributes_are_interned_on_the_fly() {
        let model = parse_model(
            "Class A with
               attribute, necessary
                 r: B
             end A
             Class B with end B",
        )
        .expect("parses");
        let mut voc = Vocabulary::new();
        let schema = translate_schema(&model, &mut voc).expect("translates");
        let a = voc.find_class("A").expect("interned");
        let r = voc.find_attribute("r").expect("interned");
        assert!(schema.is_necessary(a, r));
        assert_eq!(schema.value_restrictions_of(a).len(), 1);
    }
}
