//! Translation of query classes into QL concepts (Section 3.2).
//!
//! The structural part of a query class is mapped as follows:
//!
//! * every superclass contributes a conjunct: a primitive concept for
//!   schema classes, the recursively expanded concept for query-class
//!   superclasses (query classes are completely defined, so inlining their
//!   structural definition is exact for the structural fragment);
//! * labeled paths become paths of restricted attributes, with inverse
//!   synonyms made explicit as `P⁻¹`;
//! * a `where` equality `l₁ = l₂` turns the two labeled paths into a path
//!   agreement `∃p₁ ≐ p₂`;
//! * remaining paths (unlabeled, or with labels not used in `where`)
//!   become plain existential path quantifications `∃p`;
//! * the constraint clause — the non-structural part — is dropped.

use crate::error::TranslateError;
use crate::OBJECT_CLASS;
use std::collections::HashSet;
use subq_concepts::prelude::*;
use subq_dl::{DlModel, LabeledPath, PathFilter, QueryClassDecl};

/// Translates one query class into a QL concept.
pub fn translate_query(
    query: &QueryClassDecl,
    model: &DlModel,
    voc: &mut Vocabulary,
    arena: &mut TermArena,
) -> Result<ConceptId, TranslateError> {
    let mut in_progress = HashSet::new();
    translate_query_rec(query, model, voc, arena, &mut in_progress)
}

fn translate_query_rec(
    query: &QueryClassDecl,
    model: &DlModel,
    voc: &mut Vocabulary,
    arena: &mut TermArena,
    in_progress: &mut HashSet<String>,
) -> Result<ConceptId, TranslateError> {
    if !in_progress.insert(query.name.clone()) {
        return Err(TranslateError::CyclicQueryInheritance {
            query: query.name.clone(),
        });
    }

    let mut conjuncts = Vec::new();

    // Superclasses.
    for sup in &query.is_a {
        if sup == OBJECT_CLASS {
            continue;
        }
        if let Some(sup_query) = model.query_class(sup) {
            let expanded = translate_query_rec(sup_query, model, voc, arena, in_progress)?;
            conjuncts.push(expanded);
        } else {
            let class = voc.class(sup);
            conjuncts.push(arena.prim(class));
        }
    }

    // Paths: those whose labels are equated in the `where` clause become
    // agreements, the rest plain existentials.
    let context = format!("query class `{}`", query.name);
    let mut used_labels: HashSet<&str> = HashSet::new();
    for (left, right) in &query.where_eqs {
        let left_path = find_labeled_path(query, left);
        let right_path = find_labeled_path(query, right);
        let (Some(lp), Some(rp)) = (left_path, right_path) else {
            // Dangling labels are a validation error; skip them here so the
            // translation stays total on the structural fragment.
            continue;
        };
        let p = translate_path(lp, model, voc, arena, &context)?;
        let q = translate_path(rp, model, voc, arena, &context)?;
        conjuncts.push(arena.agree(p, q));
        used_labels.insert(left.as_str());
        used_labels.insert(right.as_str());
    }
    for path in &query.derived {
        if let Some(label) = &path.label {
            if used_labels.contains(label.as_str()) {
                continue;
            }
        }
        let p = translate_path(path, model, voc, arena, &context)?;
        conjuncts.push(arena.exists(p));
    }

    // The constraint clause is the non-structural part: dropped.

    in_progress.remove(&query.name);
    Ok(arena.and_all(conjuncts))
}

fn find_labeled_path<'a>(query: &'a QueryClassDecl, label: &str) -> Option<&'a LabeledPath> {
    query
        .derived
        .iter()
        .find(|p| p.label.as_deref() == Some(label))
}

/// Translates a labeled path into a QL path, making inverse synonyms
/// explicit.
pub fn translate_path(
    path: &LabeledPath,
    model: &DlModel,
    voc: &mut Vocabulary,
    arena: &mut TermArena,
    context: &str,
) -> Result<PathId, TranslateError> {
    let mut steps = Vec::with_capacity(path.steps.len());
    for step in &path.steps {
        let attr = match model.resolve_attribute(&step.attr) {
            Some((decl, false)) => Attr::primitive(voc.attribute(&decl.name)),
            Some((decl, true)) => Attr::inverse_of(voc.attribute(&decl.name)),
            None => {
                // Attributes that are used in classes but have no global
                // declaration are still primitive attributes.
                if model
                    .classes
                    .iter()
                    .any(|c| c.attributes.iter().any(|a| a.name == step.attr))
                {
                    Attr::primitive(voc.attribute(&step.attr))
                } else {
                    return Err(TranslateError::UnknownAttribute {
                        attribute: step.attr.clone(),
                        context: context.to_owned(),
                    });
                }
            }
        };
        let filter = match &step.filter {
            PathFilter::Any => arena.top(),
            PathFilter::Class(name) if name == OBJECT_CLASS => arena.top(),
            PathFilter::Class(name) => {
                let class = voc.class(name);
                arena.prim(class)
            }
            PathFilter::Singleton(object) => {
                let constant = voc.constant(object);
                arena.singleton(constant)
            }
        };
        steps.push((attr, filter));
    }
    Ok(arena.path_of(&steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate_schema;
    use subq_concepts::display::DisplayCtx;
    use subq_dl::parser::parse_model;
    use subq_dl::samples;

    fn translate_named(name: &str) -> (Vocabulary, TermArena, ConceptId) {
        let model = samples::medical_model();
        let mut voc = Vocabulary::new();
        let _ = translate_schema(&model, &mut voc).expect("schema translates");
        let mut arena = TermArena::new();
        let query = model.query_class(name).expect("declared");
        let concept = translate_query(query, &model, &mut voc, &mut arena).expect("translates");
        (voc, arena, concept)
    }

    /// The concept C_Q of Section 3.2, printed in the paper's notation.
    #[test]
    fn query_patient_translates_to_c_q() {
        let (voc, arena, concept) = translate_named("QueryPatient");
        let rendered = DisplayCtx::new(&voc, &arena).concept(concept);
        assert_eq!(
            rendered,
            "Male ⊓ Patient ⊓ ∃(consults: Female) ≐ (suffers: ⊤)(skilled_in⁻¹: Doctor)"
        );
    }

    /// The concept D_V of Section 3.2.
    #[test]
    fn view_patient_translates_to_d_v() {
        let (voc, arena, concept) = translate_named("ViewPatient");
        let rendered = DisplayCtx::new(&voc, &arena).concept(concept);
        assert_eq!(
            rendered,
            "Patient ⊓ ∃(consults: Doctor)(skilled_in: Disease) ≐ (suffers: Disease) ⊓ ∃(name: String)"
        );
    }

    /// The constraint clause of QueryPatient (the Aspirin condition) leaves
    /// no trace in the translation.
    #[test]
    fn constraints_are_dropped_from_queries() {
        let (voc, arena, concept) = translate_named("QueryPatient");
        let rendered = DisplayCtx::new(&voc, &arena).concept(concept);
        assert!(!rendered.contains("Aspirin"));
        assert!(!rendered.contains("Drug"));
    }

    /// Inverse synonyms become explicit inverse attributes.
    #[test]
    fn synonyms_become_inverse_attributes() {
        let (voc, arena, concept) = translate_named("QueryPatient");
        let classes = arena.classes_in(concept);
        assert!(classes.iter().any(|c| voc.class_name(*c) == "Doctor"));
        let rendered = DisplayCtx::new(&voc, &arena).concept(concept);
        assert!(rendered.contains("skilled_in⁻¹"));
        assert!(!rendered.contains("specialist"));
    }

    /// Query classes inheriting from query classes are expanded
    /// structurally.
    #[test]
    fn query_superclasses_are_inlined() {
        let model = parse_model(
            "Class Person with end Person
             Class Doctor isA Person with end Doctor
             Attribute consults with
               domain: Person
               range: Doctor
             end consults
             QueryClass Consulters isA Person with
               derived
                 (consults: Doctor)
             end Consulters
             QueryClass YoungConsulters isA Consulters with
             end YoungConsulters",
        )
        .expect("parses");
        let mut voc = Vocabulary::new();
        let mut arena = TermArena::new();
        let inner = model.query_class("YoungConsulters").expect("declared");
        let concept = translate_query(inner, &model, &mut voc, &mut arena).expect("translates");
        let rendered = DisplayCtx::new(&voc, &arena).concept(concept);
        assert!(rendered.contains("Person"));
        assert!(rendered.contains("∃(consults: Doctor)"));
    }

    /// Cyclic query-class inheritance is reported rather than looping.
    #[test]
    fn cyclic_query_inheritance_is_an_error() {
        let model = parse_model(
            "QueryClass A isA B with end A
             QueryClass B isA A with end B",
        )
        .expect("parses");
        let mut voc = Vocabulary::new();
        let mut arena = TermArena::new();
        let a = model.query_class("A").expect("declared");
        let err = translate_query(a, &model, &mut voc, &mut arena).expect_err("must fail");
        assert!(matches!(err, TranslateError::CyclicQueryInheritance { .. }));
    }

    /// Unknown attributes in paths are reported with their context.
    #[test]
    fn unknown_attribute_is_an_error() {
        let model = parse_model(
            "Class Person with end Person
             QueryClass Q isA Person with
               derived
                 (unknown_attr: Person)
             end Q",
        )
        .expect("parses");
        let mut voc = Vocabulary::new();
        let mut arena = TermArena::new();
        let q = model.query_class("Q").expect("declared");
        let err = translate_query(q, &model, &mut voc, &mut arena).expect_err("must fail");
        assert!(
            matches!(err, TranslateError::UnknownAttribute { ref attribute, .. } if attribute == "unknown_attr")
        );
    }

    /// Object filters become ⊤ and singleton filters become singleton
    /// concepts.
    #[test]
    fn object_and_singleton_filters() {
        let model = parse_model(
            "Class Person with end Person
             Class Drug with end Drug
             Attribute takes with
               domain: Person
               range: Drug
             end takes
             QueryClass AspirinTaker isA Person with
               derived
                 (takes: {Aspirin})
                 (takes: Object)
             end AspirinTaker",
        )
        .expect("parses");
        let mut voc = Vocabulary::new();
        let mut arena = TermArena::new();
        let q = model.query_class("AspirinTaker").expect("declared");
        let concept = translate_query(q, &model, &mut voc, &mut arena).expect("translates");
        let rendered = DisplayCtx::new(&voc, &arena).concept(concept);
        assert!(rendered.contains("{Aspirin}"));
        assert!(rendered.contains("∃(takes: ⊤)"));
    }
}
