//! Seeded mixed read/write traces for the incremental-maintenance
//! experiments (E10) and the `incremental_equivalence` property suite.
//!
//! A churn instance is a database over a shaped class hierarchy (the
//! [`FamilyShape`]s of the [`hierarchy`](crate::hierarchy) generator)
//! extended with a global `link` attribute (inverse synonym `rev_link`),
//! a catalog of views — plain class views `Vi = isA Ki`, and optionally
//! views with a one- or two-step derived `link` path ending in a class
//! filter — and a sequence of **transactions**, each a batch of
//! [`ChurnOp`]s mixing object creation, class assertion and retraction,
//! and attribute assertion and retraction.
//!
//! Ops are generated against a simulated object population, so retracts
//! usually hit existing facts (exercising real deletions) but sometimes
//! miss (exercising the no-op path). Everything is deterministic per
//! seed.

use crate::hierarchy::class_parents;
use crate::FamilyShape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subq_dl::{AttrDecl, ClassDecl, DlModel, LabeledPath, PathFilter, PathStep, QueryClassDecl};
use subq_oodb::Database;

/// One state mutation of a churn trace, by object *name* (applied through
/// [`ChurnOp::apply`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnOp {
    /// Create an object.
    AddObject(String),
    /// Assert `object in class`.
    AssertClass(String, String),
    /// Retract `object in class` (and its subclasses, per store
    /// semantics).
    RetractClass(String, String),
    /// Assert `from link to`.
    AssertAttr(String, String),
    /// Retract `from link to`.
    RetractAttr(String, String),
}

impl ChurnOp {
    /// Applies the op to a database (objects are created on demand).
    pub fn apply(&self, db: &mut Database) {
        match self {
            ChurnOp::AddObject(name) => {
                db.add_object(name);
            }
            ChurnOp::AssertClass(object, class) => {
                let id = db.add_object(object);
                db.assert_class(id, class);
            }
            ChurnOp::RetractClass(object, class) => {
                let id = db.add_object(object);
                db.retract_class(id, class);
            }
            ChurnOp::AssertAttr(from, to) => {
                let (from, to) = (db.add_object(from), db.add_object(to));
                db.assert_attr(from, "link", to);
            }
            ChurnOp::RetractAttr(from, to) => {
                let (from, to) = (db.add_object(from), db.add_object(to));
                db.retract_attr(from, "link", to);
            }
        }
    }
}

/// Parameters of the churn generator.
#[derive(Clone, Copy, Debug)]
pub struct ChurnParams {
    /// The isA shape of the schema classes.
    pub shape: FamilyShape,
    /// Number of schema classes `K0..`.
    pub classes: usize,
    /// Number of views. Views beyond one per class wrap around with a
    /// fresh name (Σ-equivalent duplicates).
    pub views: usize,
    /// Percent (0–100) of views that add a derived `link` path (one or
    /// two steps) with a class filter.
    pub path_view_percent: u8,
    /// Initial objects (each asserted into a random class, with random
    /// `link` edges).
    pub objects: usize,
    /// Number of transactions.
    pub transactions: usize,
    /// Ops per transaction (uniform in `1..=ops_per_transaction`).
    pub ops_per_transaction: usize,
    /// Percent (0–100) of mutation ops (everything but `AddObject`)
    /// that are retractions. The default keeps the historical blend;
    /// crank it up for retraction-heavy traces that drill downward isA
    /// propagation and attribute-index shrinkage (the crash-recovery
    /// suite replays such traces from the WAL).
    pub retract_percent: u8,
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams {
            shape: FamilyShape::Tree,
            classes: 6,
            views: 8,
            path_view_percent: 40,
            objects: 30,
            transactions: 8,
            ops_per_transaction: 4,
            retract_percent: 40,
        }
    }
}

/// A generated churn instance.
pub struct ChurnTrace {
    /// The initial database state (views declared in the model).
    pub db: Database,
    /// View names, in materialization order.
    pub view_names: Vec<String>,
    /// The transactions to apply, in order.
    pub transactions: Vec<Vec<ChurnOp>>,
}

/// Generates a seeded churn instance.
pub fn churn_trace(seed: u64, params: ChurnParams) -> ChurnTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = params.classes.max(1);
    let mut model = DlModel::new();

    for i in 0..classes {
        let parents = class_parents(params.shape, i, &mut rng);
        model.classes.push(ClassDecl {
            name: format!("K{i}"),
            is_a: parents.iter().map(|p| format!("K{p}")).collect(),
            attributes: vec![],
            constraint: None,
        });
    }
    model.attributes.push(AttrDecl {
        name: "link".into(),
        domain: "Object".into(),
        range: "Object".into(),
        inverse: Some("rev_link".into()),
    });

    // Views: one class view per class (wrapping around for duplicates),
    // some strengthened by a derived link path with a class filter.
    let mut view_names = Vec::new();
    for v in 0..params.views {
        let class = v % classes;
        let mut view = QueryClassDecl {
            name: format!("V{v}"),
            is_a: vec![format!("K{class}")],
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        };
        if rng.gen_range(0..100u8) < params.path_view_percent {
            let target = rng.gen_range(0..classes);
            let mut steps = vec![PathStep {
                attr: if rng.gen_bool(0.25) {
                    "rev_link".into()
                } else {
                    "link".into()
                },
                filter: PathFilter::Any,
            }];
            if rng.gen_bool(0.5) {
                steps.push(PathStep {
                    attr: "link".into(),
                    filter: PathFilter::Class(format!("K{target}")),
                });
            } else {
                steps[0].filter = PathFilter::Class(format!("K{target}"));
            }
            view.derived.push(LabeledPath { label: None, steps });
        }
        view_names.push(view.name.clone());
        model.queries.push(view);
    }

    // Initial population.
    let mut db = Database::new(model);
    let object_name = |i: usize| format!("o{i}");
    for i in 0..params.objects {
        let obj = db.add_object(&object_name(i));
        db.assert_class(obj, &format!("K{}", rng.gen_range(0..classes)));
    }
    for i in 0..params.objects {
        if rng.gen_bool(0.6) {
            let from = db.object(&object_name(i)).expect("created above");
            let to = db
                .object(&object_name(rng.gen_range(0..params.objects)))
                .expect("created above");
            db.assert_attr(from, "link", to);
        }
    }

    // Transactions over a simulated population (so retracts usually hit).
    let mut population = params.objects;
    let transactions: Vec<Vec<ChurnOp>> = (0..params.transactions)
        .map(|_| {
            let ops = rng.gen_range(1..=params.ops_per_transaction.max(1));
            (0..ops)
                .map(|_| {
                    let any = |rng: &mut StdRng, population: usize| {
                        object_name(rng.gen_range(0..population.max(1)))
                    };
                    if rng.gen_range(0..10u8) == 0 {
                        let op = ChurnOp::AddObject(object_name(population));
                        population += 1;
                        op
                    } else {
                        let retract = rng.gen_range(0..100u8) < params.retract_percent;
                        if rng.gen_bool(0.6) {
                            let class = format!("K{}", rng.gen_range(0..classes));
                            let object = any(&mut rng, population);
                            if retract {
                                ChurnOp::RetractClass(object, class)
                            } else {
                                ChurnOp::AssertClass(object, class)
                            }
                        } else {
                            let from = any(&mut rng, population);
                            let to = any(&mut rng, population);
                            if retract {
                                ChurnOp::RetractAttr(from, to)
                            } else {
                                ChurnOp::AssertAttr(from, to)
                            }
                        }
                    }
                })
                .collect()
        })
        .collect();

    ChurnTrace {
        db,
        view_names,
        transactions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let params = ChurnParams::default();
        let a = churn_trace(3, params);
        let b = churn_trace(3, params);
        assert_eq!(a.view_names, b.view_names);
        assert_eq!(a.transactions, b.transactions);
        assert_eq!(a.db.model(), b.db.model());
        assert_eq!(a.db.object_count(), b.db.object_count());
        let c = churn_trace(4, params);
        assert!(a.transactions != c.transactions || a.db.model() != c.db.model());
    }

    #[test]
    fn traces_mix_asserts_and_retracts_and_apply_cleanly() {
        let params = ChurnParams {
            transactions: 20,
            ops_per_transaction: 5,
            ..ChurnParams::default()
        };
        let mut trace = churn_trace(7, params);
        let mut asserts = 0usize;
        let mut retracts = 0usize;
        for txn in &trace.transactions {
            for op in txn {
                match op {
                    ChurnOp::AssertClass(..) | ChurnOp::AssertAttr(..) => asserts += 1,
                    ChurnOp::RetractClass(..) | ChurnOp::RetractAttr(..) => retracts += 1,
                    ChurnOp::AddObject(_) => {}
                }
                op.apply(&mut trace.db);
            }
        }
        assert!(asserts > 0, "no asserts generated");
        assert!(retracts > 0, "no retracts generated");
        // Applying ops moved the data version forward.
        assert!(trace.db.data_version() > 0);
    }

    #[test]
    fn retract_percent_shifts_the_op_mix() {
        let count = |percent: u8| {
            let trace = churn_trace(
                5,
                ChurnParams {
                    transactions: 40,
                    ops_per_transaction: 6,
                    retract_percent: percent,
                    ..ChurnParams::default()
                },
            );
            let mut retracts = 0usize;
            let mut asserts = 0usize;
            for op in trace.transactions.iter().flatten() {
                match op {
                    ChurnOp::RetractClass(..) | ChurnOp::RetractAttr(..) => retracts += 1,
                    ChurnOp::AssertClass(..) | ChurnOp::AssertAttr(..) => asserts += 1,
                    ChurnOp::AddObject(_) => {}
                }
            }
            (retracts, asserts)
        };
        let (none, some_asserts) = count(0);
        assert_eq!(none, 0, "0% must generate no retractions");
        assert!(some_asserts > 0);
        let (all, no_asserts) = count(100);
        assert!(all > 0);
        assert_eq!(no_asserts, 0, "100% must generate only retractions");
    }

    #[test]
    fn declared_views_are_structural_and_evaluable() {
        let params = ChurnParams {
            views: 10,
            path_view_percent: 100,
            ..ChurnParams::default()
        };
        let trace = churn_trace(11, params);
        assert_eq!(trace.view_names.len(), 10);
        let model = trace.db.model().clone();
        for name in &trace.view_names {
            let decl = model.query_class(name).expect("declared");
            assert!(decl.is_view());
            // Evaluation must not panic and stays within the population.
            let extent = subq_oodb::evaluate_query(&trace.db, decl);
            assert!(extent.len() <= trace.db.object_count());
        }
    }
}
