//! Per-client traffic schedules for the server experiments (E14) and the
//! multi-session equivalence suite.
//!
//! A [`churn_trace`](crate::churn::churn_trace) fixes the database, the
//! view catalog, and a sequence of write transactions; this module deals
//! out that trace to `n` concurrent clients as deterministic, seeded
//! schedules of wire-level operations — queries against the declared
//! views interleaved with the client's own share of the transactions.
//! Transactions are partitioned round-robin (client `c` owns every
//! transaction `t` with `t % n == c`), so a fleet of clients collectively
//! applies the whole trace while no two clients race to apply the same
//! transaction; a client that exhausts its share cycles through it again,
//! keeping write pressure up for as long as the schedule runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One wire-level operation of a mixed traffic schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficOp {
    /// Execute the definition of view `i` (an index into the trace's
    /// `view_names`) as a query.
    Query(usize),
    /// Apply transaction `i` of the trace as one write transaction.
    Txn(usize),
}

/// Parameters of the per-client schedule generator.
#[derive(Clone, Copy, Debug)]
pub struct TrafficParams {
    /// Percent (0–100) of operations that are queries.
    pub query_percent: u8,
    /// Operations per client schedule.
    pub ops: usize,
}

impl Default for TrafficParams {
    fn default() -> Self {
        TrafficParams {
            query_percent: 70,
            ops: 40,
        }
    }
}

/// The seeded schedule of client `client` out of `clients`, over a trace
/// with `transactions` transactions and `views` declared views.
pub fn client_schedule(
    seed: u64,
    client: usize,
    clients: usize,
    transactions: usize,
    views: usize,
    params: TrafficParams,
) -> Vec<TrafficOp> {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (client as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let own: Vec<usize> = (0..transactions)
        .filter(|t| t % clients.max(1) == client)
        .collect();
    let mut next = 0usize;
    let mut out = Vec::with_capacity(params.ops);
    for _ in 0..params.ops {
        let wants_query = views > 0 && rng.gen_range(0..100u8) < params.query_percent;
        if wants_query || own.is_empty() {
            if views > 0 {
                out.push(TrafficOp::Query(rng.gen_range(0..views)));
            }
        } else {
            out.push(TrafficOp::Txn(own[next % own.len()]));
            next += 1;
        }
    }
    out
}

/// Parameters of the phase-shifting schedule generator: the adversarial
/// workload of experiment E15, whose hot view set rotates mid-run so a
/// statically tuned catalog goes stale and a workload-adaptive one must
/// re-tune.
#[derive(Clone, Copy, Debug)]
pub struct ShiftParams {
    /// Operations per phase (per client); after each phase the hot view
    /// window rotates by `views_per_phase`.
    pub phase_ops: usize,
    /// Number of views hot in any one phase.
    pub views_per_phase: usize,
}

impl Default for ShiftParams {
    fn default() -> Self {
        ShiftParams {
            phase_ops: 20,
            views_per_phase: 2,
        }
    }
}

/// Like [`client_schedule`], but queries in phase `p` (operation indices
/// `p * phase_ops ..`) draw only from the hot window
/// `{(p * views_per_phase + j) % views | j < views_per_phase}` — the
/// workload's interest keeps moving across the catalog. Transactions are
/// partitioned round-robin exactly as in [`client_schedule`].
pub fn shifting_schedule(
    seed: u64,
    client: usize,
    clients: usize,
    transactions: usize,
    views: usize,
    params: TrafficParams,
    shift: ShiftParams,
) -> Vec<TrafficOp> {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (client as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let own: Vec<usize> = (0..transactions)
        .filter(|t| t % clients.max(1) == client)
        .collect();
    let mut next = 0usize;
    let mut out = Vec::with_capacity(params.ops);
    for i in 0..params.ops {
        let phase = i / shift.phase_ops.max(1);
        let wants_query = views > 0 && rng.gen_range(0..100u8) < params.query_percent;
        if wants_query || own.is_empty() {
            if views > 0 {
                let window = shift.views_per_phase.clamp(1, views);
                let hot = (phase * window + rng.gen_range(0..window)) % views;
                out.push(TrafficOp::Query(hot));
            }
        } else {
            out.push(TrafficOp::Txn(own[next % own.len()]));
            next += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifting_schedules_rotate_the_hot_window() {
        let params = TrafficParams {
            query_percent: 100,
            ops: 40,
        };
        let shift = ShiftParams {
            phase_ops: 10,
            views_per_phase: 2,
        };
        let schedule = shifting_schedule(5, 0, 1, 8, 8, params, shift);
        assert_eq!(schedule.len(), 40);
        for (i, op) in schedule.iter().enumerate() {
            let TrafficOp::Query(v) = op else {
                panic!("query_percent = 100")
            };
            let phase = i / 10;
            let window: Vec<usize> = (0..2).map(|j| (phase * 2 + j) % 8).collect();
            assert!(window.contains(v), "op {i} queried {v} outside {window:?}");
        }
        // Deterministic per seed.
        assert_eq!(schedule, shifting_schedule(5, 0, 1, 8, 8, params, shift));
    }

    #[test]
    fn schedules_are_deterministic_per_seed_and_client() {
        let a = client_schedule(7, 1, 4, 16, 8, TrafficParams::default());
        let b = client_schedule(7, 1, 4, 16, 8, TrafficParams::default());
        assert_eq!(a, b);
        let c = client_schedule(7, 2, 4, 16, 8, TrafficParams::default());
        assert_ne!(a, c, "clients draw distinct schedules");
    }

    #[test]
    fn transactions_are_partitioned_round_robin() {
        let clients = 3;
        for client in 0..clients {
            let params = TrafficParams {
                query_percent: 0,
                ops: 100,
            };
            let schedule = client_schedule(11, client, clients, 12, 4, params);
            for op in schedule {
                match op {
                    TrafficOp::Txn(t) => assert_eq!(t % clients, client),
                    TrafficOp::Query(_) => panic!("query_percent = 0"),
                }
            }
        }
    }

    #[test]
    fn pure_query_schedules_stay_in_view_range() {
        let params = TrafficParams {
            query_percent: 100,
            ops: 50,
        };
        let schedule = client_schedule(3, 0, 1, 10, 5, params);
        assert_eq!(schedule.len(), 50);
        assert!(schedule
            .iter()
            .all(|op| matches!(op, TrafficOp::Query(v) if *v < 5)));
    }
}
