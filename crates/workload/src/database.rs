//! Synthetic hospital states over the paper's medical schema (experiment
//! E8).
//!
//! The generator produces conforming states of tunable size in which a
//! tunable fraction of the patients falls into the materialized view
//! `ViewPatient` (they consult a doctor who is a specialist in one of their
//! diseases), and a smaller fraction additionally satisfies the stricter
//! query `QueryPatient` (male, consulting a *female* such doctor, taking
//! only Aspirin).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subq_dl::samples;
use subq_oodb::Database;

/// Parameters of the synthetic hospital generator.
#[derive(Clone, Copy, Debug)]
pub struct HospitalParams {
    /// Number of patients.
    pub patients: usize,
    /// Number of doctors.
    pub doctors: usize,
    /// Number of diseases.
    pub diseases: usize,
    /// Fraction (0–100) of patients that match the view `ViewPatient`.
    pub view_match_percent: u8,
    /// Fraction (0–100) of the view-matching patients that also match the
    /// stricter query `QueryPatient`.
    pub query_match_percent: u8,
}

impl Default for HospitalParams {
    fn default() -> Self {
        HospitalParams {
            patients: 200,
            doctors: 20,
            diseases: 10,
            view_match_percent: 20,
            query_match_percent: 50,
        }
    }
}

/// Generates a conforming hospital state.
pub fn synthetic_hospital(seed: u64, params: HospitalParams) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(samples::medical_model());

    let aspirin = db.add_object("Aspirin");
    db.assert_class(aspirin, "Drug");
    let other_drug = db.add_object("Ibuprofen");
    db.assert_class(other_drug, "Drug");

    let diseases: Vec<_> = (0..params.diseases.max(1))
        .map(|i| {
            let d = db.add_object(&format!("disease{i}"));
            db.assert_class(d, "Disease");
            d
        })
        .collect();

    // Doctors: every doctor is skilled in at least one disease; half of
    // them are female.
    let doctors: Vec<_> = (0..params.doctors.max(1))
        .map(|i| {
            let doc = db.add_object(&format!("doctor{i}"));
            let name = db.add_object(&format!("doctor{i}_name"));
            db.assert_class(doc, "Doctor");
            db.assert_class(name, "String");
            db.assert_attr(doc, "name", name);
            if i % 2 == 0 {
                db.assert_class(doc, "Female");
            } else {
                db.assert_class(doc, "Male");
            }
            let skill = diseases[rng.gen_range(0..diseases.len())];
            db.assert_attr(doc, "skilled_in", skill);
            doc
        })
        .collect();

    for i in 0..params.patients {
        let patient = db.add_object(&format!("patient{i}"));
        let name = db.add_object(&format!("patient{i}_name"));
        db.assert_class(patient, "Patient");
        db.assert_class(name, "String");
        db.assert_attr(patient, "name", name);
        let disease = diseases[rng.gen_range(0..diseases.len())];
        db.assert_attr(patient, "suffers", disease);

        let in_view = rng.gen_range(0..100u8) < params.view_match_percent;
        if !in_view {
            // Not in the view: either consults nobody, or consults a doctor
            // who is not a specialist in the patient's disease.
            db.assert_class(patient, if rng.gen_bool(0.5) { "Male" } else { "Female" });
            db.assert_attr(patient, "takes", other_drug);
            continue;
        }
        // In the view: consult a doctor skilled in the suffered disease. To
        // guarantee agreement we give that doctor the patient's disease as
        // an additional skill.
        let doctor = doctors[rng.gen_range(0..doctors.len())];
        db.assert_attr(patient, "consults", doctor);
        db.assert_attr(doctor, "skilled_in", disease);

        let in_query = rng.gen_range(0..100u8) < params.query_match_percent;
        if in_query {
            // QueryPatient additionally requires: male patient, female
            // consulted doctor, and no drug other than Aspirin.
            db.assert_class(patient, "Male");
            db.assert_class(doctor, "Female");
            db.assert_attr(patient, "takes", aspirin);
        } else {
            db.assert_class(patient, if rng.gen_bool(0.5) { "Male" } else { "Female" });
            db.assert_attr(patient, "takes", other_drug);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_oodb::evaluate_query;

    #[test]
    fn generated_states_conform_to_the_schema() {
        let db = synthetic_hospital(
            1,
            HospitalParams {
                patients: 50,
                ..HospitalParams::default()
            },
        );
        let violations = db.check_conformance();
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn view_and_query_extents_follow_the_requested_selectivity() {
        let params = HospitalParams {
            patients: 200,
            view_match_percent: 30,
            query_match_percent: 50,
            ..HospitalParams::default()
        };
        let db = synthetic_hospital(42, params);
        let model = samples::medical_model();
        let view = model.query_class("ViewPatient").expect("declared");
        let query = model.query_class("QueryPatient").expect("declared");
        let view_ext = evaluate_query(&db, view);
        let query_ext = evaluate_query(&db, query);
        assert!(query_ext.is_subset(&view_ext));
        // Selectivity is approximately as requested (generous tolerance —
        // doctors shared between patients can only add matches).
        let view_fraction = view_ext.len() as f64 / params.patients as f64;
        assert!(
            view_fraction > 0.15 && view_fraction < 0.75,
            "view fraction {view_fraction} out of expected range"
        );
        assert!(!query_ext.is_empty());
    }

    #[test]
    fn generation_is_reproducible() {
        let params = HospitalParams::default();
        let a = synthetic_hospital(7, params);
        let b = synthetic_hospital(7, params);
        assert_eq!(a.object_count(), b.object_count());
        assert_eq!(a.class_extent("Patient"), b.class_extent("Patient"));
        let c = synthetic_hospital(8, params);
        assert_eq!(a.object_count(), c.object_count());
    }
}
