//! Hierarchical view-catalog families for the lattice experiments (E9).
//!
//! The subsumption-lattice planner pays off exactly when the materialized
//! views form a hierarchy — and degenerates gracefully when they do not.
//! This generator produces both regimes as seeded instances: a schema
//! whose classes `K0..K(n-1)` are arranged in one of several isA shapes, a
//! catalog of structural views over those classes (occasionally
//! strengthened by a second superclass, occasionally duplicating an
//! earlier view under a new name to exercise Σ-equivalence collapse), a
//! conforming database state, and a batch of incoming queries.
//!
//! Shapes:
//!
//! * [`FamilyShape::Chain`] — a single isA chain `K0 ⊒ K1 ⊒ …`; the
//!   deepest hierarchy, worst case for insertion cost, best for pruning
//!   below the query's level;
//! * [`FamilyShape::Tree`] — a balanced binary isA tree; the canonical
//!   "hierarchical catalog", probes per plan grow with `log N`;
//! * [`FamilyShape::Diamond`] — stacked 4-class diamonds (`top ⊒ left`,
//!   `top ⊒ right`, `left, right ⊒ bottom`), exercising multi-parent
//!   traversal (a node is probed only after *all* parents);
//! * [`FamilyShape::Flat`] — the adversarial anti-hierarchy: pairwise
//!   incomparable classes, so the traversal degenerates to the flat scan;
//! * [`FamilyShape::Random`] — each class draws 0–2 random earlier
//!   parents, a seeded DAG of irregular shape.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subq_dl::{ClassDecl, DlModel, QueryClassDecl};
use subq_oodb::Database;

/// The isA shape of a hierarchical view family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FamilyShape {
    /// A single chain `K0 ⊒ K1 ⊒ …`.
    Chain,
    /// A balanced binary tree rooted at `K0`.
    Tree,
    /// Stacked 4-class diamonds.
    Diamond,
    /// Pairwise incomparable classes (the anti-hierarchy).
    Flat,
    /// A seeded random DAG (0–2 parents per class).
    Random,
}

impl FamilyShape {
    /// Stable lowercase name (used in bench tables and JSON rows).
    pub fn name(self) -> &'static str {
        match self {
            FamilyShape::Chain => "chain",
            FamilyShape::Tree => "tree",
            FamilyShape::Diamond => "diamond",
            FamilyShape::Flat => "flat",
            FamilyShape::Random => "random",
        }
    }
}

/// Parameters of the hierarchy generator.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyParams {
    /// The isA shape.
    pub shape: FamilyShape,
    /// Number of materialized views (one class per view, plus peers).
    pub views: usize,
    /// Objects asserted per class (each propagates to all ancestors).
    pub members_per_class: usize,
    /// Number of incoming queries to generate.
    pub queries: usize,
    /// Percent (0–100) of views that take a second random superclass,
    /// exercising concept-level (not purely isA-graph) subsumption.
    pub intersect_percent: u8,
    /// Percent (0–100) of views duplicated under a fresh name — the
    /// duplicates are Σ-equivalent to the original and must collapse onto
    /// its lattice node.
    pub duplicate_percent: u8,
}

impl Default for HierarchyParams {
    fn default() -> Self {
        HierarchyParams {
            shape: FamilyShape::Tree,
            views: 50,
            members_per_class: 2,
            queries: 8,
            intersect_percent: 0,
            duplicate_percent: 0,
        }
    }
}

/// A generated instance: the database (whose model declares the views as
/// query classes), the names of the views to materialize (in order), and
/// the incoming queries.
pub struct HierarchyInstance {
    /// The database state over the generated model.
    pub db: Database,
    /// View names, in materialization order.
    pub view_names: Vec<String>,
    /// Incoming queries (not declared in the model).
    pub queries: Vec<QueryClassDecl>,
}

/// The isA parents of class `i` under the shape (shared with the churn
/// generator).
pub(crate) fn class_parents(shape: FamilyShape, i: usize, rng: &mut StdRng) -> Vec<usize> {
    match shape {
        FamilyShape::Chain => {
            if i == 0 {
                vec![]
            } else {
                vec![i - 1]
            }
        }
        FamilyShape::Tree => {
            if i == 0 {
                vec![]
            } else {
                vec![(i - 1) / 2]
            }
        }
        FamilyShape::Diamond => match i % 4 {
            0 => {
                if i == 0 {
                    vec![]
                } else {
                    vec![i - 1]
                }
            }
            1 | 2 => vec![i - (i % 4)],
            _ => vec![i - 2, i - 1],
        },
        FamilyShape::Flat => vec![],
        FamilyShape::Random => {
            let max_parents = rng.gen_range(0..=2usize.min(i));
            let mut parents = Vec::new();
            for _ in 0..max_parents {
                let p = rng.gen_range(0..i);
                if !parents.contains(&p) {
                    parents.push(p);
                }
            }
            parents
        }
    }
}

/// Generates a seeded hierarchical view family.
pub fn hierarchical_catalog(seed: u64, params: HierarchyParams) -> HierarchyInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = params.views.max(1);
    let mut model = DlModel::new();

    // Schema classes in the requested shape.
    let parents: Vec<Vec<usize>> = (0..n)
        .map(|i| class_parents(params.shape, i, &mut rng))
        .collect();
    for (i, ps) in parents.iter().enumerate() {
        model.classes.push(ClassDecl {
            name: format!("K{i}"),
            is_a: ps.iter().map(|p| format!("K{p}")).collect(),
            attributes: vec![],
            constraint: None,
        });
    }

    // One structural view per class; some take a second superclass, some
    // are duplicated under a fresh name (Σ-equivalent peers).
    let mut view_names = Vec::new();
    let mut views = Vec::new();
    for i in 0..n {
        let mut is_a = vec![format!("K{i}")];
        if rng.gen_range(0..100u8) < params.intersect_percent && n > 1 {
            let other = rng.gen_range(0..n);
            if other != i {
                is_a.push(format!("K{other}"));
            }
        }
        let view = QueryClassDecl {
            name: format!("V{i}"),
            is_a,
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        };
        view_names.push(view.name.clone());
        if rng.gen_range(0..100u8) < params.duplicate_percent {
            let twin = QueryClassDecl {
                name: format!("V{i}dup"),
                ..view.clone()
            };
            view_names.push(twin.name.clone());
            views.push(view);
            views.push(twin);
        } else {
            views.push(view);
        }
    }
    model.queries.extend(views);

    // Incoming queries: one or two target classes, drawn uniformly — in
    // the deterministic shapes higher indexes sit deeper, so the draws
    // cover shallow and deep probes alike.
    let queries: Vec<QueryClassDecl> = (0..params.queries)
        .map(|q| {
            let target = rng.gen_range(0..n);
            let mut is_a = vec![format!("K{target}")];
            if rng.gen_bool(0.3) && n > 1 {
                let second = rng.gen_range(0..n);
                if second != target {
                    is_a.push(format!("K{second}"));
                }
            }
            QueryClassDecl {
                name: format!("Q{q}"),
                is_a,
                derived: vec![],
                where_eqs: vec![],
                constraint: None,
            }
        })
        .collect();

    // The state: members per class, asserted at their own class (and
    // propagated to every ancestor by the store), so deeper classes have
    // smaller extents — the "most specific view is the best filter"
    // regime of the paper.
    let mut db = Database::new(model);
    for i in 0..n {
        for m in 0..params.members_per_class {
            let obj = db.add_object(&format!("o_{i}_{m}"));
            db.assert_class(obj, &format!("K{i}"));
        }
    }

    HierarchyInstance {
        db,
        view_names,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_oodb::evaluate_query;

    #[test]
    fn shapes_generate_the_requested_catalog_sizes() {
        for shape in [
            FamilyShape::Chain,
            FamilyShape::Tree,
            FamilyShape::Diamond,
            FamilyShape::Flat,
            FamilyShape::Random,
        ] {
            let params = HierarchyParams {
                shape,
                views: 12,
                queries: 4,
                ..HierarchyParams::default()
            };
            let instance = hierarchical_catalog(5, params);
            assert_eq!(instance.view_names.len(), 12, "{shape:?}");
            assert_eq!(instance.queries.len(), 4, "{shape:?}");
            for name in &instance.view_names {
                let decl = instance.db.model().query_class(name).expect("declared");
                assert!(decl.is_view());
            }
        }
    }

    #[test]
    fn deeper_chain_views_have_smaller_extents() {
        let params = HierarchyParams {
            shape: FamilyShape::Chain,
            views: 6,
            members_per_class: 3,
            queries: 1,
            ..HierarchyParams::default()
        };
        let instance = hierarchical_catalog(1, params);
        let model = instance.db.model().clone();
        let sizes: Vec<usize> = (0..6)
            .map(|i| {
                let view = model.query_class(&format!("V{i}")).expect("declared");
                evaluate_query(&instance.db, view).len()
            })
            .collect();
        // K0 sees all 18 objects, each level below loses 3.
        assert_eq!(sizes, vec![18, 15, 12, 9, 6, 3]);
    }

    #[test]
    fn duplicates_share_the_original_definition() {
        let params = HierarchyParams {
            shape: FamilyShape::Tree,
            views: 20,
            duplicate_percent: 100,
            queries: 1,
            ..HierarchyParams::default()
        };
        let instance = hierarchical_catalog(9, params);
        assert_eq!(instance.view_names.len(), 40);
        let model = instance.db.model();
        for i in 0..20 {
            let original = model.query_class(&format!("V{i}")).expect("declared");
            let twin = model.query_class(&format!("V{i}dup")).expect("declared");
            assert_eq!(original.is_a, twin.is_a);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let params = HierarchyParams {
            shape: FamilyShape::Random,
            views: 15,
            intersect_percent: 30,
            duplicate_percent: 10,
            queries: 6,
            ..HierarchyParams::default()
        };
        let a = hierarchical_catalog(7, params);
        let b = hierarchical_catalog(7, params);
        assert_eq!(a.view_names, b.view_names);
        assert_eq!(a.db.model(), b.db.model());
        assert_eq!(a.queries, b.queries);
        let c = hierarchical_catalog(8, params);
        assert!(c.view_names.len() >= 15);
        // Different seed, (almost certainly) different DAG.
        assert!(a.db.model() != c.db.model() || a.queries != c.queries);
    }
}
