//! Seeded synthetic workloads for the experiments.
//!
//! The paper reports no measurements of its own (it defers them to
//! "practical experiments"), so every experiment in this reproduction runs
//! on synthetic inputs produced here:
//!
//! * [`scaling`] — deterministic instance families whose query size, view
//!   size, or schema size grows with a parameter, all constructed so that
//!   the subsumption holds and the completion does maximal work
//!   (experiment E5, Theorem 4.9 / Proposition 4.8);
//! * [`random`] — seeded random QL concept pairs with known or unknown
//!   subsumption status (experiments E5 and E7);
//! * [`database`] — synthetic hospital states over the paper's medical
//!   schema with tunable size and view selectivity (experiment E8);
//! * [`hierarchy`] — hierarchical view-catalog families (chains, balanced
//!   trees, diamonds, flat anti-hierarchies, random DAGs) for the
//!   subsumption-lattice planner (experiment E9);
//! * [`churn`] — seeded mixed read/write traces (class and attribute
//!   asserts and retracts in transactions) for the incremental
//!   view-maintenance engine (experiment E10);
//! * [`crash`] — crash-point and bit-flip scripting over write-ahead-log
//!   bytes for the durable engine's kill-and-recover property suite and
//!   experiment E13;
//! * [`traffic`] — per-client mixed query/transaction schedules dealing a
//!   churn trace out to a fleet of concurrent server clients (experiment
//!   E14 and the multi-session equivalence suite).
//!
//! All generators take explicit seeds (or are fully deterministic) so the
//! benches are reproducible.

pub mod churn;
pub mod crash;
pub mod database;
pub mod hierarchy;
pub mod random;
pub mod scaling;
pub mod traffic;

pub use churn::{churn_trace, ChurnOp, ChurnParams, ChurnTrace};
pub use crash::{crash_points, flip_points};
pub use database::{synthetic_hospital, HospitalParams};
pub use hierarchy::{hierarchical_catalog, FamilyShape, HierarchyInstance, HierarchyParams};
pub use random::{random_concept, random_pair, subsumed_pair, RandomConceptParams, RandomEnv};
pub use scaling::ScalingInstance;
pub use traffic::{client_schedule, shifting_schedule, ShiftParams, TrafficOp, TrafficParams};
