//! Seeded random QL concepts and query/view pairs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subq_concepts::prelude::*;

/// Parameters of the random concept generator.
#[derive(Clone, Copy, Debug)]
pub struct RandomConceptParams {
    /// Number of primitive classes to draw from.
    pub classes: usize,
    /// Number of primitive attributes to draw from.
    pub attributes: usize,
    /// Maximum nesting depth of paths.
    pub max_depth: usize,
    /// Maximum number of conjuncts at each level.
    pub max_width: usize,
    /// Probability (0–100) that a path step uses an inverse attribute.
    pub inverse_percent: u8,
}

impl Default for RandomConceptParams {
    fn default() -> Self {
        RandomConceptParams {
            classes: 6,
            attributes: 4,
            max_depth: 3,
            max_width: 3,
            inverse_percent: 25,
        }
    }
}

/// A shared environment for random generation: fixed class and attribute
/// pools interned once.
pub struct RandomEnv {
    /// The vocabulary.
    pub vocabulary: Vocabulary,
    /// The term arena.
    pub arena: TermArena,
    classes: Vec<ClassId>,
    attributes: Vec<AttrId>,
    rng: StdRng,
    params: RandomConceptParams,
}

impl RandomEnv {
    /// Creates an environment with the given seed and parameters.
    pub fn new(seed: u64, params: RandomConceptParams) -> Self {
        let mut vocabulary = Vocabulary::new();
        let classes = (0..params.classes)
            .map(|i| vocabulary.class(&format!("K{i}")))
            .collect();
        let attributes = (0..params.attributes)
            .map(|i| vocabulary.attribute(&format!("r{i}")))
            .collect();
        RandomEnv {
            vocabulary,
            arena: TermArena::new(),
            classes,
            attributes,
            rng: StdRng::seed_from_u64(seed),
            params,
        }
    }

    fn random_attr(&mut self) -> Attr {
        let base = self.attributes[self.rng.gen_range(0..self.attributes.len())];
        if self.rng.gen_range(0..100u8) < self.params.inverse_percent {
            Attr::inverse_of(base)
        } else {
            Attr::primitive(base)
        }
    }

    fn random_leaf(&mut self) -> ConceptId {
        if self.rng.gen_bool(0.2) {
            self.arena.top()
        } else {
            let class = self.classes[self.rng.gen_range(0..self.classes.len())];
            self.arena.prim(class)
        }
    }

    fn random_path(&mut self, depth: usize) -> PathId {
        let len = self.rng.gen_range(1..=2);
        let steps: Vec<(Attr, ConceptId)> = (0..len)
            .map(|_| {
                let attr = self.random_attr();
                let filler = self.random_concept_at(depth.saturating_sub(1));
                (attr, filler)
            })
            .collect();
        self.arena.path_of(&steps)
    }

    fn random_concept_at(&mut self, depth: usize) -> ConceptId {
        if depth == 0 {
            return self.random_leaf();
        }
        match self.rng.gen_range(0..4) {
            0 => self.random_leaf(),
            1 => {
                let width = self.rng.gen_range(2..=self.params.max_width.max(2));
                let parts: Vec<ConceptId> = (0..width)
                    .map(|_| self.random_concept_at(depth - 1))
                    .collect();
                self.arena.and_all(parts)
            }
            2 => {
                let path = self.random_path(depth);
                self.arena.exists(path)
            }
            _ => {
                let p = self.random_path(depth);
                let q = self.random_path(depth);
                self.arena.agree(p, q)
            }
        }
    }

    /// Draws a random QL concept.
    pub fn concept(&mut self) -> ConceptId {
        let depth = self.params.max_depth;
        self.random_concept_at(depth)
    }

    /// Draws a pair `(query, view)` where the query is the view
    /// strengthened by extra conjuncts, so `query ⊑ view` holds by
    /// construction (for any schema).
    pub fn subsumed_pair(&mut self) -> (ConceptId, ConceptId) {
        let view = self.concept();
        let extra = self.concept();
        let query = self.arena.and(view, extra);
        (query, view)
    }

    /// Draws an unconstrained pair (its subsumption status is unknown; most
    /// draws are incomparable).
    pub fn pair(&mut self) -> (ConceptId, ConceptId) {
        (self.concept(), self.concept())
    }
}

/// Draws one random concept (convenience wrapper used by benches that only
/// need a single draw).
pub fn random_concept(seed: u64, params: RandomConceptParams) -> (RandomEnv, ConceptId) {
    let mut env = RandomEnv::new(seed, params);
    let concept = env.concept();
    (env, concept)
}

/// Draws a pair with `query ⊑ view` by construction.
pub fn subsumed_pair(seed: u64, params: RandomConceptParams) -> (RandomEnv, ConceptId, ConceptId) {
    let mut env = RandomEnv::new(seed, params);
    let (query, view) = env.subsumed_pair();
    (env, query, view)
}

/// Draws an unconstrained random pair.
pub fn random_pair(seed: u64, params: RandomConceptParams) -> (RandomEnv, ConceptId, ConceptId) {
    let mut env = RandomEnv::new(seed, params);
    let (query, view) = env.pair();
    (env, query, view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_calculus::SubsumptionChecker;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (mut a_env, a) = random_concept(7, RandomConceptParams::default());
        let (mut b_env, b) = random_concept(7, RandomConceptParams::default());
        assert_eq!(
            a_env.arena.concept_size(a),
            b_env.arena.concept_size(b),
            "same seed must give the same concept"
        );
        let ctx_a = subq_concepts::display::DisplayCtx::new(&a_env.vocabulary, &a_env.arena);
        let ctx_b = subq_concepts::display::DisplayCtx::new(&b_env.vocabulary, &b_env.arena);
        assert_eq!(ctx_a.concept(a), ctx_b.concept(b));
        // Different seeds are (almost certainly) different.
        let (mut c_env, c) = random_concept(8, RandomConceptParams::default());
        let ctx_c = subq_concepts::display::DisplayCtx::new(&c_env.vocabulary, &c_env.arena);
        let _ = (c_env.arena.concept_size(c), ctx_c.concept(c));
        let _ = &mut a_env;
        let _ = &mut b_env;
        let _ = &mut c_env;
    }

    #[test]
    fn subsumed_pairs_really_are_subsumed() {
        for seed in 0..20 {
            let (mut env, query, view) = subsumed_pair(seed, RandomConceptParams::default());
            let schema = Schema::new();
            let checker = SubsumptionChecker::new(&schema);
            assert!(
                checker.subsumes(&mut env.arena, query, view),
                "seed {seed}: constructed pair must be subsumed"
            );
        }
    }

    #[test]
    fn random_pairs_have_bounded_size() {
        let params = RandomConceptParams {
            max_depth: 2,
            ..RandomConceptParams::default()
        };
        for seed in 0..10 {
            let (env, query, view) = random_pair(seed, params);
            assert!(env.arena.concept_size(query) < 200);
            assert!(env.arena.concept_size(view) < 200);
        }
    }
}
