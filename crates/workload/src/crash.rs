//! Crash-point scripting over write-ahead-log bytes.
//!
//! The crash-recovery property suite replays a churn trace through the
//! durable engine, captures the WAL bytes of the full (golden) run, and
//! then re-opens the database from every prefix a crash could leave
//! behind. This module enumerates those prefixes: every record boundary
//! (a clean kill between transactions), torn offsets inside each record
//! (mid-header, one byte short, seeded interior cuts), and seeded
//! bit-flip scripts that model silent corruption rather than a torn
//! tail. Everything is deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use subq_oodb::durable::record_boundaries;

/// The byte lengths a crash during WAL appends can leave on disk:
/// every record boundary of `wal` (including 0 and the full length),
/// the torn offsets just after and just before each boundary, a
/// mid-header cut, and `torn_per_record` seeded interior offsets per
/// record. Sorted, deduplicated.
pub fn crash_points(wal: &[u8], torn_per_record: usize, seed: u64) -> Vec<usize> {
    let boundaries = record_boundaries(wal);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A5_4B01);
    let mut points = boundaries.clone();
    for window in boundaries.windows(2) {
        let (start, end) = (window[0], window[1]);
        // Torn inside the frame header, torn mid-record, and torn one
        // byte short of complete — the adversarial neighborhoods of a
        // boundary.
        points.push(start + 1);
        points.push((start + 6).min(end - 1));
        points.push(end - 1);
        for _ in 0..torn_per_record {
            points.push(rng.gen_range(start..end));
        }
    }
    points.sort_unstable();
    points.dedup();
    points
}

/// Seeded `(byte offset, bit)` corruption scripts over a log of
/// `wal_len` bytes: `count` single-bit flips spread across the whole
/// log. Applied one at a time (each to a fresh copy), they model bit
/// rot the CRC framing must catch.
pub fn flip_points(wal_len: usize, count: usize, seed: u64) -> Vec<(usize, u8)> {
    if wal_len == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF11B_0B17);
    (0..count)
        .map(|_| (rng.gen_range(0..wal_len), rng.gen_range(0..8u8)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A syntactically valid WAL built from the oodb codec, three
    /// records long.
    fn sample_wal() -> Vec<u8> {
        use subq_oodb::durable::codec::encode_record;
        use subq_oodb::durable::WalRecord;
        use subq_oodb::maintain::Delta;
        use subq_oodb::ObjId;
        let mut bytes = Vec::new();
        for i in 0..3u64 {
            encode_record(
                &WalRecord {
                    start_version: i,
                    deltas: vec![(
                        Delta::AddObject {
                            object: ObjId(i as u32),
                        },
                        Some(format!("o{i}")),
                    )],
                },
                &mut bytes,
            );
        }
        bytes
    }

    #[test]
    fn crash_points_cover_boundaries_and_interiors() {
        let wal = sample_wal();
        let boundaries = record_boundaries(&wal);
        assert_eq!(boundaries.len(), 4);
        let points = crash_points(&wal, 2, 9);
        // Every clean boundary is a crash point…
        for b in &boundaries {
            assert!(points.contains(b), "boundary {b} missing");
        }
        // …as is the one-byte-short tear of every record.
        for window in boundaries.windows(2) {
            assert!(points.contains(&(window[1] - 1)));
            assert!(points.contains(&(window[0] + 1)));
        }
        // Points are sorted, unique, and in range.
        assert!(points.windows(2).all(|w| w[0] < w[1]));
        assert!(points.iter().all(|&p| p <= wal.len()));
        // Deterministic per seed.
        assert_eq!(points, crash_points(&wal, 2, 9));
        assert_ne!(points, crash_points(&wal, 8, 10));
    }

    #[test]
    fn flip_points_are_seeded_and_in_range() {
        let flips = flip_points(1000, 32, 4);
        assert_eq!(flips.len(), 32);
        assert!(flips.iter().all(|&(o, b)| o < 1000 && b < 8));
        assert_eq!(flips, flip_points(1000, 32, 4));
        assert_ne!(flips, flip_points(1000, 32, 5));
        assert!(flip_points(0, 10, 1).is_empty());
    }
}
