//! Deterministic instance families for the polynomial-scaling experiment
//! (E5): Theorem 4.9 promises time polynomial in the sizes of the query
//! `C`, the view `D`, and the schema Σ, and Proposition 4.8 bounds the
//! individuals by `|C| · |D|`. Each family below grows exactly one of the
//! three sizes while keeping the subsumption valid, so the completion has
//! to do its full work.

use subq_concepts::prelude::*;

/// One instance of a scaling family: a schema plus a query/view pair whose
/// subsumption holds.
pub struct ScalingInstance {
    /// The vocabulary of the instance.
    pub vocabulary: Vocabulary,
    /// The term arena holding the concepts.
    pub arena: TermArena,
    /// The schema Σ.
    pub schema: Schema,
    /// The query concept `C`.
    pub query: ConceptId,
    /// The view concept `D`.
    pub view: ConceptId,
    /// The family parameter that produced this instance.
    pub parameter: usize,
}

impl ScalingInstance {
    /// Size of the query concept (`M` in Proposition 4.8).
    pub fn query_size(&self) -> usize {
        self.arena.concept_size(self.query)
    }

    /// Size of the view concept (`N` in Proposition 4.8).
    pub fn view_size(&self) -> usize {
        self.arena.concept_size(self.view)
    }

    /// Size of the schema.
    pub fn schema_size(&self) -> usize {
        self.schema.size()
    }
}

/// Family 1 — growing path depth on both sides.
///
/// Query: `A ⊓ ∃(r:B)ⁿ ≐ ε` over a cyclic path; view: `∃(r:⊤)ⁿ`. The query
/// decomposes into a chain of `n` fresh individuals, the view's goals walk
/// the same chain, so both `M` and `N` grow linearly with `n`.
pub fn path_depth_instance(n: usize) -> ScalingInstance {
    let mut voc = Vocabulary::new();
    let mut arena = TermArena::new();
    let a = voc.class("A");
    let b = voc.class("B");
    let r = Attr::primitive(voc.attribute("r"));
    let mut schema = Schema::new();
    schema.add_value_restriction(a, r.base(), b);

    let a_c = arena.prim(a);
    let b_c = arena.prim(b);
    let top = arena.top();
    let query_path = arena.path_of(&vec![(r, b_c); n.max(1)]);
    let view_path = arena.path_of(&vec![(r, top); n.max(1)]);
    let exists_q = arena.exists(query_path);
    let query = arena.and(a_c, exists_q);
    let view = arena.exists(view_path);
    ScalingInstance {
        vocabulary: voc,
        arena,
        schema,
        query,
        view,
        parameter: n,
    }
}

/// Family 2 — growing conjunction width.
///
/// Query: `A₁ ⊓ … ⊓ Aₙ ⊓ ∃(r:A₁) ⊓ … ⊓ ∃(r:Aₙ)`; view: the same with every
/// other conjunct dropped. Both concepts grow linearly in `n`, the schema
/// stays fixed.
pub fn conjunction_width_instance(n: usize) -> ScalingInstance {
    let mut voc = Vocabulary::new();
    let mut arena = TermArena::new();
    let r = Attr::primitive(voc.attribute("r"));
    let schema = Schema::new();

    let mut query_parts = Vec::new();
    let mut view_parts = Vec::new();
    for i in 0..n.max(1) {
        let class = voc.class(&format!("A{i}"));
        let prim = arena.prim(class);
        let path = arena.path1(r, prim);
        let exists = arena.exists(path);
        query_parts.push(prim);
        query_parts.push(exists);
        if i % 2 == 0 {
            view_parts.push(prim);
            view_parts.push(exists);
        }
    }
    let query = arena.and_all(query_parts);
    let view = arena.and_all(view_parts);
    ScalingInstance {
        vocabulary: voc,
        arena,
        schema,
        query,
        view,
        parameter: n,
    }
}

/// Family 3 — growing schema size.
///
/// A subclass chain `A₀ ⊑ A₁ ⊑ … ⊑ Aₙ` with one necessary, value-restricted
/// attribute per level; the query is `A₀`, the view asks for the attribute
/// filler typed at the top of the chain, so every axiom is touched.
pub fn schema_size_instance(n: usize) -> ScalingInstance {
    let mut voc = Vocabulary::new();
    let mut arena = TermArena::new();
    let mut schema = Schema::new();
    let r = Attr::primitive(voc.attribute("r"));
    let n = n.max(1);
    let classes: Vec<ClassId> = (0..=n).map(|i| voc.class(&format!("A{i}"))).collect();
    for i in 0..n {
        schema.add_isa(classes[i], classes[i + 1]);
        schema.add_value_restriction(classes[i], r.base(), classes[i + 1]);
    }
    schema.add_necessary(classes[0], r.base());

    let query = arena.prim(classes[0]);
    let filler = arena.prim(classes[1]);
    let path = arena.path1(r, filler);
    let exists = arena.exists(path);
    let topmost = arena.prim(classes[n]);
    let view = arena.and(topmost, exists);
    ScalingInstance {
        vocabulary: voc,
        arena,
        schema,
        query,
        view,
        parameter: n,
    }
}

/// Family 4 — growing view size against a fixed query.
///
/// Query: `A` with a schema making `r` necessary and reflexively typed;
/// view: `∃(r:A)(r:A)…(r:A)` of growing depth, which forces rule S5 to
/// manufacture one new individual per view step (the situation discussed
/// before Proposition 4.8).
pub fn view_growth_instance(n: usize) -> ScalingInstance {
    let mut voc = Vocabulary::new();
    let mut arena = TermArena::new();
    let mut schema = Schema::new();
    let a = voc.class("A");
    let r = Attr::primitive(voc.attribute("r"));
    schema.add_necessary(a, r.base());
    schema.add_value_restriction(a, r.base(), a);

    let a_c = arena.prim(a);
    let view_path = arena.path_of(&vec![(r, a_c); n.max(1)]);
    let view = arena.exists(view_path);
    ScalingInstance {
        vocabulary: voc,
        arena,
        schema,
        query: a_c,
        view,
        parameter: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_calculus::SubsumptionChecker;

    fn check(mut instance: ScalingInstance) -> (bool, usize) {
        let checker = SubsumptionChecker::new(&instance.schema);
        let outcome = checker.check(&mut instance.arena, instance.query, instance.view);
        (outcome.subsumed(), outcome.stats.individuals)
    }

    #[test]
    fn all_families_produce_valid_subsumptions() {
        for n in [1, 2, 4, 8] {
            assert!(check(path_depth_instance(n)).0, "path depth {n}");
            assert!(check(conjunction_width_instance(n)).0, "width {n}");
            assert!(check(schema_size_instance(n)).0, "schema {n}");
            assert!(check(view_growth_instance(n)).0, "view growth {n}");
        }
    }

    #[test]
    fn sizes_grow_with_the_parameter() {
        assert!(path_depth_instance(8).query_size() > path_depth_instance(2).query_size());
        assert!(
            conjunction_width_instance(8).view_size() > conjunction_width_instance(2).view_size()
        );
        assert!(schema_size_instance(8).schema_size() > schema_size_instance(2).schema_size());
        assert!(view_growth_instance(8).view_size() > view_growth_instance(2).view_size());
    }

    #[test]
    fn view_growth_individuals_scale_linearly_not_exponentially() {
        let (_, small) = check(view_growth_instance(4));
        let (_, large) = check(view_growth_instance(8));
        assert!(large <= 2 * small + 2, "individuals must grow linearly");
        // And stay within the M·N bound.
        let instance = view_growth_instance(8);
        let bound = instance.query_size() * instance.view_size() + 1;
        let (_, individuals) = check(view_growth_instance(8));
        assert!(individuals <= bound);
    }
}
