//! Extended *schema* languages and the filler-demand analysis behind
//! Proposition 4.10.
//!
//! The paper explains why qualified existential quantification (`A ⊑
//! ∃P.A'`) and inverse attributes in the schema destroy tractability: a
//! complete procedure must create *distinct* attribute fillers for
//! differently qualified existentials, and must create fillers for every
//! necessary attribute to detect implicit inclusions through inverse value
//! restrictions — and both processes iterate, producing exponentially many
//! individuals. This module makes those counting arguments executable:
//!
//! * [`filler_demand`] computes how many individuals a complete expansion
//!   of the schema constraints on a single object requires, and
//! * [`expand_and_detect`] runs the naive complete expansion for schemas
//!   with inverse value restrictions and reports both the implicit atomic
//!   inclusions it finds and the number of individuals it had to create.
//!
//! Instance families ([`qualified_chain`], [`inverse_chain`] and their SL
//! approximations) exhibit the exponential-versus-linear contrast that
//! experiment E6 measures.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use subq_concepts::symbol::{AttrId, ClassId, Vocabulary};

/// An axiom of the extended schema language.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExtAxiom {
    /// `A ⊑ B` for primitive `B`.
    IsA(ClassId, ClassId),
    /// `A ⊑ ∃P` (plain necessity, as in SL).
    Necessary(ClassId, AttrId),
    /// `A ⊑ ∃P.B` — qualified existential (Proposition 4.10, case 1).
    QualifiedNecessary(ClassId, AttrId, ClassId),
    /// `A ⊑ ∀P.B` (as in SL).
    ValueRestriction(ClassId, AttrId, ClassId),
    /// `A ⊑ ∀P⁻¹.B` — inverse value restriction (Proposition 4.10, case 2).
    InverseValueRestriction(ClassId, AttrId, ClassId),
}

/// An extended schema: a set of [`ExtAxiom`]s with lookup indexes.
#[derive(Clone, Debug, Default)]
pub struct ExtSchema {
    axioms: Vec<ExtAxiom>,
    supers: HashMap<ClassId, Vec<ClassId>>,
}

impl ExtSchema {
    /// Creates an empty extended schema.
    pub fn new() -> Self {
        ExtSchema::default()
    }

    /// Adds an axiom.
    pub fn add(&mut self, axiom: ExtAxiom) {
        if self.axioms.contains(&axiom) {
            return;
        }
        if let ExtAxiom::IsA(a, b) = axiom {
            self.supers.entry(a).or_default().push(b);
        }
        self.axioms.push(axiom);
    }

    /// All axioms.
    pub fn axioms(&self) -> &[ExtAxiom] {
        &self.axioms
    }

    /// Number of axioms (the `|Σ|` measure for the sweeps).
    pub fn len(&self) -> usize {
        self.axioms.len()
    }

    /// Whether the schema is empty.
    pub fn is_empty(&self) -> bool {
        self.axioms.is_empty()
    }

    /// The reflexive-transitive isA closure of a set of classes.
    pub fn upward_closure(&self, classes: &BTreeSet<ClassId>) -> BTreeSet<ClassId> {
        let mut out = classes.clone();
        let mut queue: VecDeque<ClassId> = classes.iter().copied().collect();
        while let Some(class) = queue.pop_front() {
            for sup in self.supers.get(&class).into_iter().flatten() {
                if out.insert(*sup) {
                    queue.push_back(*sup);
                }
            }
        }
        out
    }
}

/// Number of individuals a complete expansion must create for one object of
/// the given class, following qualified and unqualified necessities up to
/// the given depth.
///
/// Differently qualified fillers must be kept distinct (they have different
/// properties), which is the source of the exponential growth the paper
/// describes for Proposition 4.10, case 1.
pub fn filler_demand(schema: &ExtSchema, class: ClassId, depth: usize) -> u64 {
    fn demand(schema: &ExtSchema, classes: &BTreeSet<ClassId>, depth: usize) -> u64 {
        if depth == 0 {
            return 1;
        }
        let closure = schema.upward_closure(classes);
        let mut total = 1u64;
        // Qualified necessities: one distinct filler per (attribute,
        // qualifier) pair.
        let mut qualified: HashSet<(AttrId, ClassId)> = HashSet::new();
        let mut plain: HashSet<AttrId> = HashSet::new();
        for axiom in schema.axioms() {
            match *axiom {
                ExtAxiom::QualifiedNecessary(a, p, b) if closure.contains(&a) => {
                    qualified.insert((p, b));
                }
                ExtAxiom::Necessary(a, p) if closure.contains(&a) => {
                    plain.insert(p);
                }
                _ => {}
            }
        }
        for (attr, qualifier) in &qualified {
            let mut filler_classes = BTreeSet::from([*qualifier]);
            // Value restrictions also type the filler.
            for axiom in schema.axioms() {
                if let ExtAxiom::ValueRestriction(a, p, b) = *axiom {
                    if p == *attr && closure.contains(&a) {
                        filler_classes.insert(b);
                    }
                }
            }
            total += demand(schema, &filler_classes, depth - 1);
        }
        // Plain necessities only need one filler per attribute, and only if
        // no qualified filler for the same attribute exists already.
        for attr in plain {
            if qualified.iter().any(|(p, _)| *p == attr) {
                continue;
            }
            let mut filler_classes = BTreeSet::new();
            for axiom in schema.axioms() {
                if let ExtAxiom::ValueRestriction(a, p, b) = *axiom {
                    if p == attr && closure.contains(&a) {
                        filler_classes.insert(b);
                    }
                }
            }
            total += demand(schema, &filler_classes, depth - 1);
        }
        total
    }
    demand(schema, &BTreeSet::from([class]), depth)
}

/// Result of the naive complete expansion for schemas with inverse value
/// restrictions.
#[derive(Clone, Debug, Default)]
pub struct ExpansionOutcome {
    /// Primitive classes the root object provably belongs to.
    pub root_classes: BTreeSet<ClassId>,
    /// Individuals the expansion created (including the root).
    pub individuals_created: u64,
}

/// Runs the naive complete expansion that Proposition 4.10 (case 2) says is
/// needed in the presence of inverse attributes: create a filler for every
/// necessary attribute of every individual (up to `depth`), apply value
/// restrictions forwards and inverse value restrictions backwards until a
/// fixed point, and report the classes of the root.
pub fn expand_and_detect(schema: &ExtSchema, class: ClassId, depth: usize) -> ExpansionOutcome {
    struct Node {
        classes: BTreeSet<ClassId>,
        depth: usize,
        /// `(attribute, child index)` pairs.
        children: Vec<(AttrId, usize)>,
        parent: Option<(AttrId, usize)>,
    }

    let mut nodes = vec![Node {
        classes: BTreeSet::from([class]),
        depth: 0,
        children: Vec::new(),
        parent: None,
    }];

    loop {
        let mut changed = false;

        // isA saturation.
        for node in nodes.iter_mut() {
            let closure = schema.upward_closure(&node.classes);
            if closure.len() > node.classes.len() {
                node.classes = closure;
                changed = true;
            }
        }

        // Create necessary fillers (both plain and qualified) up to depth.
        for node in 0..nodes.len() {
            if nodes[node].depth >= depth {
                continue;
            }
            let classes = nodes[node].classes.clone();
            let mut required: Vec<(AttrId, BTreeSet<ClassId>)> = Vec::new();
            for axiom in schema.axioms() {
                match *axiom {
                    ExtAxiom::Necessary(a, p) if classes.contains(&a) => {
                        required.push((p, BTreeSet::new()));
                    }
                    ExtAxiom::QualifiedNecessary(a, p, b) if classes.contains(&a) => {
                        required.push((p, BTreeSet::from([b])));
                    }
                    _ => {}
                }
            }
            for (attr, mut filler_classes) in required {
                // One filler per (attribute, qualifier) — reuse an existing
                // child when it already covers the requirement.
                let already = nodes[node].children.iter().any(|&(p, child)| {
                    p == attr
                        && filler_classes
                            .iter()
                            .all(|c| nodes[child].classes.contains(c))
                });
                if already {
                    continue;
                }
                for axiom in schema.axioms() {
                    if let ExtAxiom::ValueRestriction(a, p, b) = *axiom {
                        if p == attr && classes.contains(&a) {
                            filler_classes.insert(b);
                        }
                    }
                }
                let child_depth = nodes[node].depth + 1;
                nodes.push(Node {
                    classes: filler_classes,
                    depth: child_depth,
                    children: Vec::new(),
                    parent: Some((attr, node)),
                });
                let child = nodes.len() - 1;
                nodes[node].children.push((attr, child));
                changed = true;
            }
        }

        // Forward value restrictions and backward inverse value
        // restrictions.
        for node in 0..nodes.len() {
            let classes = nodes[node].classes.clone();
            let children = nodes[node].children.clone();
            for (attr, child) in children {
                for axiom in schema.axioms() {
                    match *axiom {
                        ExtAxiom::ValueRestriction(a, p, b)
                            if p == attr && classes.contains(&a) =>
                        {
                            changed |= nodes[child].classes.insert(b);
                        }
                        ExtAxiom::InverseValueRestriction(a, p, b)
                            if p == attr && nodes[child].classes.contains(&a) =>
                        {
                            changed |= nodes[node].classes.insert(b);
                        }
                        _ => {}
                    }
                }
            }
            if let Some((attr, parent)) = nodes[node].parent {
                for axiom in schema.axioms() {
                    if let ExtAxiom::InverseValueRestriction(a, p, b) = *axiom {
                        if p == attr && classes.contains(&a) {
                            changed |= nodes[parent].classes.insert(b);
                        }
                    }
                }
            }
        }

        if !changed {
            break;
        }
    }

    ExpansionOutcome {
        root_classes: nodes[0].classes.clone(),
        individuals_created: nodes.len() as u64,
    }
}

// ----- instance families ----------------------------------------------------

/// The qualified-existential chain of Proposition 4.10 (case 1): at every
/// level the class requires two differently qualified `P`-fillers, each of
/// which is again such a class. A complete expansion needs `2^(n+1) - 1`
/// individuals.
pub fn qualified_chain(voc: &mut Vocabulary, levels: usize) -> (ExtSchema, ClassId) {
    let mut schema = ExtSchema::new();
    let p = voc.attribute("p");
    let root = voc.class("Level0");
    for level in 0..levels {
        let current = voc.class(&format!("Level{level}"));
        let left = voc.class(&format!("Left{}", level + 1));
        let right = voc.class(&format!("Right{}", level + 1));
        let next = voc.class(&format!("Level{}", level + 1));
        schema.add(ExtAxiom::QualifiedNecessary(current, p, left));
        schema.add(ExtAxiom::QualifiedNecessary(current, p, right));
        schema.add(ExtAxiom::IsA(left, next));
        schema.add(ExtAxiom::IsA(right, next));
    }
    (schema, root)
}

/// The SL approximation of [`qualified_chain`]: the qualifications are
/// dropped (`A ⊑ ∃P` plus `A ⊑ ∀P.Level_{i+1}`), which is expressible in SL
/// and needs only a linear number of fillers.
pub fn unqualified_chain(voc: &mut Vocabulary, levels: usize) -> (ExtSchema, ClassId) {
    let mut schema = ExtSchema::new();
    let p = voc.attribute("p");
    let root = voc.class("Level0");
    for level in 0..levels {
        let current = voc.class(&format!("Level{level}"));
        let next = voc.class(&format!("Level{}", level + 1));
        schema.add(ExtAxiom::Necessary(current, p));
        schema.add(ExtAxiom::ValueRestriction(current, p, next));
    }
    (schema, root)
}

/// The inverse-attribute schema Σ₁ of Section 4.4 generalized to a chain.
///
/// Every level class `A_i` has two necessary attributes `p` and `q` whose
/// fillers belong to the next level (`A_i ⊑ ∀p.B_{i+1}`, `A_i ⊑ ∀q.C_{i+1}`,
/// `B_{i+1} ⊑ A_{i+1}`, `C_{i+1} ⊑ A_{i+1}`). The deepest level is marked
/// (`A_n ⊑ T_n`) and the marking propagates back only through inverse value
/// restrictions along `p`-edges (`T_{i+1} ⊑ ∀p⁻¹.T_i`). The implicit
/// inclusion `A_0 ⊑_Σ T_0` therefore holds, but a complete procedure can
/// only find it by materializing fillers for *all* necessary attributes
/// down to depth `n` — `2^{n+1} − 1` individuals. Returns the schema, the
/// root class `A_0`, and the target class `T_0`.
pub fn inverse_chain(voc: &mut Vocabulary, levels: usize) -> (ExtSchema, ClassId, ClassId) {
    let mut schema = ExtSchema::new();
    let p = voc.attribute("p");
    let q = voc.attribute("q");
    let root = voc.class("A0");
    let target = voc.class("T0");
    for level in 0..levels {
        let current = voc.class(&format!("A{level}"));
        let left = voc.class(&format!("B{}", level + 1));
        let right = voc.class(&format!("C{}", level + 1));
        let next = voc.class(&format!("A{}", level + 1));
        let marker = voc.class(&format!("T{level}"));
        let next_marker = voc.class(&format!("T{}", level + 1));
        schema.add(ExtAxiom::Necessary(current, p));
        schema.add(ExtAxiom::Necessary(current, q));
        schema.add(ExtAxiom::ValueRestriction(current, p, left));
        schema.add(ExtAxiom::ValueRestriction(current, q, right));
        schema.add(ExtAxiom::IsA(left, next));
        schema.add(ExtAxiom::IsA(right, next));
        schema.add(ExtAxiom::InverseValueRestriction(next_marker, p, marker));
    }
    let deepest = voc.class(&format!("A{levels}"));
    let deepest_marker = voc.class(&format!("T{levels}"));
    schema.add(ExtAxiom::IsA(deepest, deepest_marker));
    (schema, root, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualified_chain_demand_is_exponential() {
        let mut voc = Vocabulary::new();
        let (schema, root) = qualified_chain(&mut voc, 4);
        // 1 + 2 + 4 + 8 + 16 = 2^(4+1) - 1.
        assert_eq!(filler_demand(&schema, root, 4), 31);
        let (schema6, root6) = {
            let mut voc = Vocabulary::new();
            qualified_chain(&mut voc, 6)
        };
        assert_eq!(filler_demand(&schema6, root6, 6), 127);
    }

    #[test]
    fn unqualified_chain_demand_is_linear() {
        let mut voc = Vocabulary::new();
        let (schema, root) = unqualified_chain(&mut voc, 4);
        assert_eq!(filler_demand(&schema, root, 4), 5);
        let mut voc = Vocabulary::new();
        let (schema, root) = unqualified_chain(&mut voc, 10);
        assert_eq!(filler_demand(&schema, root, 10), 11);
    }

    #[test]
    fn inverse_chain_detects_the_implicit_subsumption() {
        let mut voc = Vocabulary::new();
        let (schema, root, target) = inverse_chain(&mut voc, 3);
        let shallow = expand_and_detect(&schema, root, 1);
        assert!(
            !shallow.root_classes.contains(&target),
            "one level of expansion must not yet reveal A0 ⊑ A3"
        );
        let deep = expand_and_detect(&schema, root, 3);
        assert!(
            deep.root_classes.contains(&target),
            "full expansion reveals the implicit subsumption A0 ⊑ A3"
        );
        assert!(deep.individuals_created > shallow.individuals_created);
    }

    #[test]
    fn inverse_chain_expansion_grows_exponentially() {
        let mut voc = Vocabulary::new();
        let (schema3, root3, _) = inverse_chain(&mut voc, 3);
        let mut voc = Vocabulary::new();
        let (schema5, root5, _) = inverse_chain(&mut voc, 5);
        let small = expand_and_detect(&schema3, root3, 3).individuals_created;
        let large = expand_and_detect(&schema5, root5, 5).individuals_created;
        assert!(small >= 2u64.pow(3));
        assert!(large >= 2u64.pow(5));
        assert!(large > 3 * small);
    }

    #[test]
    fn filler_demand_depth_zero_is_one() {
        let mut voc = Vocabulary::new();
        let (schema, root) = qualified_chain(&mut voc, 3);
        assert_eq!(filler_demand(&schema, root, 0), 1);
        assert!(!schema.is_empty());
    }

    #[test]
    fn upward_closure_follows_isa_links() {
        let mut voc = Vocabulary::new();
        let a = voc.class("A");
        let b = voc.class("B");
        let c = voc.class("C");
        let mut schema = ExtSchema::new();
        schema.add(ExtAxiom::IsA(a, b));
        schema.add(ExtAxiom::IsA(b, c));
        let closure = schema.upward_closure(&BTreeSet::from([a]));
        assert!(closure.contains(&a) && closure.contains(&b) && closure.contains(&c));
    }
}
