//! A complete satisfiability and subsumption tableau for the extended
//! concept language (empty schema).
//!
//! The procedure is the standard one for ALC with inverse attributes and
//! no terminology: decompose intersections, branch on unions, create one
//! successor per qualified existential, and propagate universal
//! restrictions along (possibly inverted) edges until a clash (`⊥`, or
//! `A` together with `¬A`) appears or the system is complete. Because
//! there is no terminology, role depth strictly decreases along edges and
//! the procedure terminates; the union rule makes it worst-case
//! exponential, which is exactly the hardness source of Propositions
//! 4.11–4.13.
//!
//! Subsumption is reduced to unsatisfiability: `C ⊑ D` iff `C ⊓ ¬D` has no
//! model.

use crate::concept::ExtConcept;
use std::collections::HashSet;
use subq_concepts::attribute::Attr;
use subq_concepts::symbol::AttrId;

/// Statistics of a tableau run, used by experiment E6 to show the blow-up.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableauStats {
    /// Number of or-branches explored.
    pub branches: u64,
    /// Largest number of individuals in any explored branch.
    pub max_nodes: usize,
}

#[derive(Clone, Debug, Default)]
struct State {
    labels: Vec<HashSet<ExtConcept>>,
    /// Edges in primitive direction: `(from, attribute, to)`.
    edges: Vec<(usize, AttrId, usize)>,
    exists_done: HashSet<(usize, ExtConcept)>,
}

impl State {
    fn new_root(concept: ExtConcept) -> State {
        let mut state = State::default();
        state.labels.push(HashSet::from([concept]));
        state
    }

    fn add(&mut self, node: usize, concept: ExtConcept) -> bool {
        self.labels[node].insert(concept)
    }

    fn new_node(&mut self, concept: ExtConcept) -> usize {
        self.labels.push(HashSet::from([concept]));
        self.labels.len() - 1
    }

    fn has_clash(&self) -> bool {
        self.labels.iter().any(|label| {
            label.contains(&ExtConcept::Bottom)
                || label.iter().any(|c| {
                    matches!(c, ExtConcept::Prim(a)
                        if label.contains(&ExtConcept::Not(Box::new(ExtConcept::Prim(*a)))))
                })
        })
    }

    /// The nodes reachable from `node` through attribute `attr` (respecting
    /// inversion).
    fn successors(&self, node: usize, attr: Attr) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(from, p, to)| {
                if attr.is_inverted() {
                    (p == attr.base() && to == node).then_some(from)
                } else {
                    (p == attr.base() && from == node).then_some(to)
                }
            })
            .collect()
    }
}

/// Decides satisfiability of an extended concept (empty schema) and
/// reports search statistics.
pub fn satisfiable_with_stats(concept: &ExtConcept) -> (bool, TableauStats) {
    let mut stats = TableauStats::default();
    let state = State::new_root(concept.nnf());
    let sat = expand(state, &mut stats);
    (sat, stats)
}

/// Decides satisfiability of an extended concept (empty schema).
pub fn is_satisfiable(concept: &ExtConcept) -> bool {
    satisfiable_with_stats(concept).0
}

/// Decides subsumption `sub ⊑ sup` for extended concepts (empty schema) by
/// refuting `sub ⊓ ¬sup`.
pub fn ext_subsumes(sub: &ExtConcept, sup: &ExtConcept) -> bool {
    let test = ExtConcept::And(vec![sub.clone(), ExtConcept::Not(Box::new(sup.clone()))]);
    !is_satisfiable(&test)
}

/// Subsumption with statistics (for experiment E6).
pub fn ext_subsumes_with_stats(sub: &ExtConcept, sup: &ExtConcept) -> (bool, TableauStats) {
    let test = ExtConcept::And(vec![sub.clone(), ExtConcept::Not(Box::new(sup.clone()))]);
    let (sat, stats) = satisfiable_with_stats(&test);
    (!sat, stats)
}

fn expand(mut state: State, stats: &mut TableauStats) -> bool {
    stats.branches += 1;
    loop {
        if state.has_clash() {
            stats.max_nodes = stats.max_nodes.max(state.labels.len());
            return false;
        }
        if apply_deterministic(&mut state) {
            continue;
        }
        stats.max_nodes = stats.max_nodes.max(state.labels.len());
        // Branch on the first unexpanded union.
        let choice = state.labels.iter().enumerate().find_map(|(node, label)| {
            label.iter().find_map(|concept| match concept {
                ExtConcept::Or(parts) if !parts.iter().any(|p| label.contains(p)) => {
                    Some((node, parts.clone()))
                }
                _ => None,
            })
        });
        match choice {
            None => return true,
            Some((node, parts)) => {
                for part in parts {
                    let mut branch = state.clone();
                    branch.add(node, part);
                    if expand(branch, stats) {
                        return true;
                    }
                }
                return false;
            }
        }
    }
}

/// Applies one round of the deterministic rules; returns whether anything
/// changed.
fn apply_deterministic(state: &mut State) -> bool {
    let mut changed = false;

    // ⊓-rule.
    for node in 0..state.labels.len() {
        let ands: Vec<Vec<ExtConcept>> = state.labels[node]
            .iter()
            .filter_map(|c| match c {
                ExtConcept::And(parts) => Some(parts.clone()),
                _ => None,
            })
            .collect();
        for parts in ands {
            for part in parts {
                changed |= state.add(node, part);
            }
        }
    }

    // ∃-rule: one fresh successor per (node, ∃R.C) pair.
    for node in 0..state.labels.len() {
        let exists: Vec<(Attr, ExtConcept)> = state.labels[node]
            .iter()
            .filter_map(|c| match c {
                ExtConcept::Exists(attr, filler) => Some((*attr, (**filler).clone())),
                _ => None,
            })
            .collect();
        for (attr, filler) in exists {
            let key = (node, ExtConcept::Exists(attr, Box::new(filler.clone())));
            if state.exists_done.contains(&key) {
                continue;
            }
            state.exists_done.insert(key);
            let successor = state.new_node(filler);
            if attr.is_inverted() {
                state.edges.push((successor, attr.base(), node));
            } else {
                state.edges.push((node, attr.base(), successor));
            }
            changed = true;
        }
    }

    // ∀-rule: propagate along existing edges.
    for node in 0..state.labels.len() {
        let alls: Vec<(Attr, ExtConcept)> = state.labels[node]
            .iter()
            .filter_map(|c| match c {
                ExtConcept::All(attr, filler) => Some((*attr, (**filler).clone())),
                _ => None,
            })
            .collect();
        for (attr, filler) in alls {
            for successor in state.successors(node, attr) {
                changed |= state.add(successor, filler.clone());
            }
        }
    }

    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_concepts::symbol::Vocabulary;

    fn setup() -> (Vocabulary, ExtConcept, ExtConcept, Attr) {
        let mut voc = Vocabulary::new();
        let a = ExtConcept::Prim(voc.class("A"));
        let b = ExtConcept::Prim(voc.class("B"));
        let r = Attr::primitive(voc.attribute("r"));
        (voc, a, b, r)
    }

    #[test]
    fn primitive_clash_is_unsatisfiable() {
        let (_voc, a, _b, _r) = setup();
        let bad = ExtConcept::And(vec![a.clone(), ExtConcept::Not(Box::new(a.clone()))]);
        assert!(!is_satisfiable(&bad));
        assert!(is_satisfiable(&a));
        assert!(!is_satisfiable(&ExtConcept::Bottom));
        assert!(is_satisfiable(&ExtConcept::Top));
    }

    #[test]
    fn exists_and_forall_interact() {
        let (_voc, a, _b, r) = setup();
        // ∃r.A ⊓ ∀r.¬A is unsatisfiable.
        let c = ExtConcept::And(vec![
            ExtConcept::Exists(r, Box::new(a.clone())),
            ExtConcept::All(r, Box::new(ExtConcept::Not(Box::new(a.clone())))),
        ]);
        assert!(!is_satisfiable(&c));
        // ∃r.A ⊓ ∀r.B is satisfiable.
        let (_voc2, a2, b2, _) = setup();
        let ok = ExtConcept::And(vec![
            ExtConcept::Exists(r, Box::new(a2)),
            ExtConcept::All(r, Box::new(b2)),
        ]);
        assert!(is_satisfiable(&ok));
    }

    #[test]
    fn inverse_attributes_propagate_backwards() {
        let (_voc, a, _b, r) = setup();
        // ∃r.(∀r⁻¹.¬A) ⊓ A is unsatisfiable: the successor's inverse-∀
        // constrains the root.
        let c = ExtConcept::And(vec![
            a.clone(),
            ExtConcept::Exists(
                r,
                Box::new(ExtConcept::All(
                    r.inverse(),
                    Box::new(ExtConcept::Not(Box::new(a.clone()))),
                )),
            ),
        ]);
        assert!(!is_satisfiable(&c));
    }

    #[test]
    fn subsumption_via_refutation() {
        let (_voc, a, b, r) = setup();
        let ab = ExtConcept::And(vec![a.clone(), b.clone()]);
        assert!(ext_subsumes(&ab, &a));
        assert!(!ext_subsumes(&a, &ab));
        // ∃r.(A ⊓ B) ⊑ ∃r.A
        let strong = ExtConcept::Exists(r, Box::new(ab.clone()));
        let weak = ExtConcept::Exists(r, Box::new(a.clone()));
        assert!(ext_subsumes(&strong, &weak));
        assert!(!ext_subsumes(&weak, &strong));
        // Disjunction: A ⊑ A ⊔ B and A ⊓ B ⊑ A ⊔ B, but A ⊔ B ⋢ A.
        let or = ExtConcept::Or(vec![a.clone(), b.clone()]);
        assert!(ext_subsumes(&a, &or));
        assert!(ext_subsumes(&ab, &or));
        assert!(!ext_subsumes(&or, &a));
    }

    #[test]
    fn branch_statistics_grow_with_disjunctions() {
        let mut voc = Vocabulary::new();
        let build = |voc: &mut Vocabulary, n: usize| {
            let parts: Vec<ExtConcept> = (0..n)
                .map(|i| {
                    ExtConcept::Or(vec![
                        ExtConcept::Prim(voc.class(&format!("A{i}"))),
                        ExtConcept::Prim(voc.class(&format!("B{i}"))),
                    ])
                })
                .collect();
            ExtConcept::And(parts)
        };
        // Force exploration of every branch by asking for an unsatisfiable
        // subsumption whose refutation concept keeps all disjunctions.
        let c3 = build(&mut voc, 3);
        let c6 = build(&mut voc, 6);
        let bottom = ExtConcept::Bottom;
        let (_, stats3) = ext_subsumes_with_stats(&c3, &bottom);
        let (_, stats6) = ext_subsumes_with_stats(&c6, &bottom);
        assert!(stats6.branches > stats3.branches);
    }
}
