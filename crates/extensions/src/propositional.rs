//! The role-free (propositional) fragment of the extended language, a
//! complete decision procedure by valuation enumeration, and the hard
//! instance families used by experiment E6.
//!
//! Proposition 4.12 of the paper: adding disjunction to either language
//! gives, together with conjunction, "the power of propositional logic",
//! making subsumption co-NP-hard. The procedure below is the canonical
//! complete method for that fragment — enumerate all `2^k` valuations of
//! the `k` primitive concepts — so its cost is exactly the lower-bound
//! intuition of the paper made executable.

use crate::concept::ExtConcept;
use std::collections::BTreeSet;
use subq_concepts::symbol::{ClassId, Vocabulary};

/// Result of a propositional subsumption check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PropOutcome {
    /// Whether the subsumption holds.
    pub subsumed: bool,
    /// Number of valuations enumerated (`2^k` unless a counterexample was
    /// found earlier).
    pub valuations: u64,
}

/// Collects the primitive concepts of a role-free concept; `None` if the
/// concept mentions a quantifier (not propositional).
pub fn propositional_classes(concept: &ExtConcept) -> Option<BTreeSet<ClassId>> {
    let mut out = BTreeSet::new();
    if collect(concept, &mut out) {
        Some(out)
    } else {
        None
    }
}

fn collect(concept: &ExtConcept, out: &mut BTreeSet<ClassId>) -> bool {
    match concept {
        ExtConcept::Top | ExtConcept::Bottom => true,
        ExtConcept::Prim(c) => {
            out.insert(*c);
            true
        }
        ExtConcept::Not(inner) => collect(inner, out),
        ExtConcept::And(parts) | ExtConcept::Or(parts) => parts.iter().all(|p| collect(p, out)),
        ExtConcept::Exists(..) | ExtConcept::All(..) => false,
    }
}

fn eval(concept: &ExtConcept, truth: &dyn Fn(ClassId) -> bool) -> bool {
    match concept {
        ExtConcept::Top => true,
        ExtConcept::Bottom => false,
        ExtConcept::Prim(c) => truth(*c),
        ExtConcept::Not(inner) => !eval(inner, truth),
        ExtConcept::And(parts) => parts.iter().all(|p| eval(p, truth)),
        ExtConcept::Or(parts) => parts.iter().any(|p| eval(p, truth)),
        ExtConcept::Exists(..) | ExtConcept::All(..) => {
            unreachable!("propositional evaluation of a quantified concept")
        }
    }
}

/// Decides `sub ⊑ sup` for role-free concepts by enumerating all valuations
/// of their primitive concepts. Returns `None` when either concept
/// contains a quantifier.
pub fn prop_subsumes(sub: &ExtConcept, sup: &ExtConcept) -> Option<PropOutcome> {
    let mut classes = propositional_classes(sub)?;
    classes.extend(propositional_classes(sup)?);
    let classes: Vec<ClassId> = classes.into_iter().collect();
    assert!(
        classes.len() < 63,
        "valuation enumeration only supports up to 62 primitive concepts"
    );
    let total = 1u64 << classes.len();
    let mut checked = 0u64;
    for bits in 0..total {
        checked += 1;
        let truth = |class: ClassId| {
            classes
                .iter()
                .position(|c| *c == class)
                .is_some_and(|i| bits & (1 << i) != 0)
        };
        if eval(sub, &truth) && !eval(sup, &truth) {
            return Some(PropOutcome {
                subsumed: false,
                valuations: checked,
            });
        }
    }
    Some(PropOutcome {
        subsumed: true,
        valuations: checked,
    })
}

/// The family `⊓_{i<n} (A_i ⊔ B_i)` of independent binary choices; any
/// complete method based on case analysis inspects exponentially many
/// cases on it.
pub fn independent_choices(voc: &mut Vocabulary, n: usize) -> ExtConcept {
    let parts = (0..n)
        .map(|i| {
            ExtConcept::Or(vec![
                ExtConcept::Prim(voc.class(&format!("A{i}"))),
                ExtConcept::Prim(voc.class(&format!("B{i}"))),
            ])
        })
        .collect();
    ExtConcept::And(parts)
}

/// The conjunction `⊓_{i<n} (¬A_i ⊔ ¬B_i)`: together with
/// [`independent_choices`] it forces every case analysis to pick exactly
/// one of `A_i`, `B_i` per position.
pub fn exclusive_choices(voc: &mut Vocabulary, n: usize) -> ExtConcept {
    let parts = (0..n)
        .map(|i| {
            ExtConcept::Or(vec![
                ExtConcept::Not(Box::new(ExtConcept::Prim(voc.class(&format!("A{i}"))))),
                ExtConcept::Not(Box::new(ExtConcept::Prim(voc.class(&format!("B{i}"))))),
            ])
        })
        .collect();
    ExtConcept::And(parts)
}

/// The pigeonhole concept `PHP(n)`: `n+1` pigeons cannot sit in `n` holes.
/// The concept is unsatisfiable, and refutation-based procedures need
/// exponential effort on it.
pub fn pigeonhole(voc: &mut Vocabulary, holes: usize) -> ExtConcept {
    let var = |voc: &mut Vocabulary, pigeon: usize, hole: usize| {
        ExtConcept::Prim(voc.class(&format!("P_{pigeon}_{hole}")))
    };
    let mut conjuncts = Vec::new();
    // Every pigeon sits somewhere.
    for pigeon in 0..=holes {
        conjuncts.push(ExtConcept::Or(
            (0..holes).map(|h| var(voc, pigeon, h)).collect(),
        ));
    }
    // No two pigeons share a hole.
    for hole in 0..holes {
        for p1 in 0..=holes {
            for p2 in (p1 + 1)..=holes {
                conjuncts.push(ExtConcept::Or(vec![
                    ExtConcept::Not(Box::new(var(voc, p1, hole))),
                    ExtConcept::Not(Box::new(var(voc, p2, hole))),
                ]));
            }
        }
    }
    ExtConcept::And(conjuncts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tableau::is_satisfiable;

    #[test]
    fn basic_propositional_laws() {
        let mut voc = Vocabulary::new();
        let a = ExtConcept::Prim(voc.class("A"));
        let b = ExtConcept::Prim(voc.class("B"));
        let ab = ExtConcept::And(vec![a.clone(), b.clone()]);
        let a_or_b = ExtConcept::Or(vec![a.clone(), b.clone()]);
        assert!(prop_subsumes(&ab, &a).expect("propositional").subsumed);
        assert!(prop_subsumes(&a, &a_or_b).expect("propositional").subsumed);
        assert!(!prop_subsumes(&a_or_b, &a).expect("propositional").subsumed);
        assert!(!prop_subsumes(&a, &ab).expect("propositional").subsumed);
    }

    #[test]
    fn quantified_concepts_are_rejected() {
        let mut voc = Vocabulary::new();
        let a = ExtConcept::Prim(voc.class("A"));
        let r = subq_concepts::attribute::Attr::primitive(voc.attribute("r"));
        let quantified = ExtConcept::Exists(r, Box::new(a.clone()));
        assert!(prop_subsumes(&quantified, &a).is_none());
        assert!(propositional_classes(&quantified).is_none());
    }

    #[test]
    fn valuation_count_doubles_per_extra_choice() {
        let mut voc = Vocabulary::new();
        let c4 = independent_choices(&mut voc, 2);
        let c8 = independent_choices(&mut voc, 4);
        let bottom = ExtConcept::Bottom;
        let o4 = prop_subsumes(&c4, &bottom).expect("propositional");
        let o8 = prop_subsumes(&c8, &bottom).expect("propositional");
        assert!(!o4.subsumed && !o8.subsumed);
        // Finding the counterexample still requires walking past the
        // all-false valuations; the full check (subsumed case) is 2^k.
        let o_full = prop_subsumes(&c4, &c4).expect("propositional");
        assert!(o_full.subsumed);
        assert_eq!(o_full.valuations, 1 << 4);
        let o_full8 = prop_subsumes(&c8, &c8).expect("propositional");
        assert_eq!(o_full8.valuations, 1 << 8);
    }

    #[test]
    fn pigeonhole_is_unsatisfiable() {
        let mut voc = Vocabulary::new();
        let php2 = pigeonhole(&mut voc, 2);
        assert!(!is_satisfiable(&php2));
        let out = prop_subsumes(&php2, &ExtConcept::Bottom).expect("propositional");
        assert!(out.subsumed, "an unsatisfiable concept is subsumed by ⊥");
    }

    #[test]
    fn choices_plus_exclusions_remain_satisfiable() {
        let mut voc = Vocabulary::new();
        let choices = independent_choices(&mut voc, 3);
        let exclusions = exclusive_choices(&mut voc, 3);
        let both = ExtConcept::And(vec![choices, exclusions]);
        assert!(is_satisfiable(&both));
        let out = prop_subsumes(&both, &ExtConcept::Bottom).expect("propositional");
        assert!(!out.subsumed);
    }
}
