//! The computationally harmful language extensions of Section 4.4.
//!
//! The paper shows that SL and QL sit directly at the tractability
//! frontier: several natural extensions make Σ-subsumption NP-hard or
//! co-NP-hard. This crate implements those extensions together with
//! *complete* decision procedures whose cost is worst-case exponential, so
//! that the frontier can be measured rather than just cited:
//!
//! * [`concept`] — an extended concept language (negation, disjunction,
//!   qualified existential and universal quantification over possibly
//!   inverted attributes), covering the languages `L` and `L_⊥` of Donini
//!   et al. that Propositions 4.11–4.13 build on;
//! * [`tableau`] — a complete satisfiability/subsumption tableau for the
//!   extended language with an empty schema (exponential because of
//!   disjunction branching);
//! * [`propositional`] — DNF-expansion subsumption for the role-free
//!   fragment, plus the instance families whose expansion grows
//!   exponentially (Proposition 4.12);
//! * [`expansion`] — the extended *schema* language with qualified
//!   existentials and inverse value restrictions (Proposition 4.10), and a
//!   filler-demand analysis that counts how many individuals a complete
//!   model construction must create — the quantity the paper's informal
//!   argument says explodes.
//!
//! Experiment E6 sweeps the instance families of this crate and contrasts
//! their exponential growth with the polynomial behaviour of the core
//! calculus on the corresponding SL/QL approximations.

pub mod concept;
pub mod expansion;
pub mod propositional;
pub mod tableau;

pub use concept::ExtConcept;
pub use expansion::{filler_demand, ExtAxiom, ExtSchema};
pub use tableau::{ext_subsumes, is_satisfiable};
