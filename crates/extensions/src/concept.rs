//! The extended concept language of Section 4.4.
//!
//! Compared to QL, the language adds full negation, disjunction, and
//! qualified universal/existential quantification over (possibly inverted)
//! attributes, but drops path agreements (which are orthogonal to the
//! hardness arguments). It therefore contains the language `L` of
//! [DHL⁺92] referenced by the paper, whose subsumption problem is NP-hard.

use subq_concepts::attribute::Attr;
use subq_concepts::symbol::{ClassId, Vocabulary};
use subq_concepts::term::{Concept, ConceptId, Path, PathId, TermArena};

/// A concept of the extended language.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ExtConcept {
    /// The universal concept `⊤`.
    Top,
    /// The empty concept `⊥`.
    Bottom,
    /// A primitive concept.
    Prim(ClassId),
    /// Negation `¬C`.
    Not(Box<ExtConcept>),
    /// Intersection.
    And(Vec<ExtConcept>),
    /// Union (the harmful construct of Proposition 4.12).
    Or(Vec<ExtConcept>),
    /// Qualified existential quantification `∃R.C` (Proposition 4.10/4.11).
    Exists(Attr, Box<ExtConcept>),
    /// Universal quantification `∀R.C` (Proposition 4.11).
    All(Attr, Box<ExtConcept>),
}

impl ExtConcept {
    /// Syntactic size (number of constructors).
    pub fn size(&self) -> usize {
        match self {
            ExtConcept::Top | ExtConcept::Bottom | ExtConcept::Prim(_) => 1,
            ExtConcept::Not(c) => 1 + c.size(),
            ExtConcept::And(cs) | ExtConcept::Or(cs) => {
                1 + cs.iter().map(ExtConcept::size).sum::<usize>()
            }
            ExtConcept::Exists(_, c) | ExtConcept::All(_, c) => 1 + c.size(),
        }
    }

    /// Negation normal form: negation pushed to primitive concepts.
    pub fn nnf(&self) -> ExtConcept {
        self.nnf_inner(false)
    }

    fn nnf_inner(&self, negated: bool) -> ExtConcept {
        match self {
            ExtConcept::Top => {
                if negated {
                    ExtConcept::Bottom
                } else {
                    ExtConcept::Top
                }
            }
            ExtConcept::Bottom => {
                if negated {
                    ExtConcept::Top
                } else {
                    ExtConcept::Bottom
                }
            }
            ExtConcept::Prim(class) => {
                if negated {
                    ExtConcept::Not(Box::new(ExtConcept::Prim(*class)))
                } else {
                    ExtConcept::Prim(*class)
                }
            }
            ExtConcept::Not(inner) => inner.nnf_inner(!negated),
            ExtConcept::And(cs) => {
                let parts = cs.iter().map(|c| c.nnf_inner(negated)).collect();
                if negated {
                    ExtConcept::Or(parts)
                } else {
                    ExtConcept::And(parts)
                }
            }
            ExtConcept::Or(cs) => {
                let parts = cs.iter().map(|c| c.nnf_inner(negated)).collect();
                if negated {
                    ExtConcept::And(parts)
                } else {
                    ExtConcept::Or(parts)
                }
            }
            ExtConcept::Exists(attr, c) => {
                let inner = Box::new(c.nnf_inner(negated));
                if negated {
                    ExtConcept::All(*attr, inner)
                } else {
                    ExtConcept::Exists(*attr, inner)
                }
            }
            ExtConcept::All(attr, c) => {
                let inner = Box::new(c.nnf_inner(negated));
                if negated {
                    ExtConcept::Exists(*attr, inner)
                } else {
                    ExtConcept::All(*attr, inner)
                }
            }
        }
    }

    /// Renders the concept with vocabulary names.
    pub fn render(&self, voc: &Vocabulary) -> String {
        match self {
            ExtConcept::Top => "⊤".into(),
            ExtConcept::Bottom => "⊥".into(),
            ExtConcept::Prim(c) => voc.class_name(*c).to_owned(),
            ExtConcept::Not(c) => format!("¬{}", c.render(voc)),
            ExtConcept::And(cs) => format!(
                "({})",
                cs.iter()
                    .map(|c| c.render(voc))
                    .collect::<Vec<_>>()
                    .join(" ⊓ ")
            ),
            ExtConcept::Or(cs) => format!(
                "({})",
                cs.iter()
                    .map(|c| c.render(voc))
                    .collect::<Vec<_>>()
                    .join(" ⊔ ")
            ),
            ExtConcept::Exists(attr, c) => {
                let name = voc.attr_name(attr.base());
                let inv = if attr.is_inverted() { "⁻¹" } else { "" };
                format!("∃{name}{inv}.{}", c.render(voc))
            }
            ExtConcept::All(attr, c) => {
                let name = voc.attr_name(attr.base());
                let inv = if attr.is_inverted() { "⁻¹" } else { "" };
                format!("∀{name}{inv}.{}", c.render(voc))
            }
        }
    }

    /// Translates an agreement-free QL concept into the extended language.
    ///
    /// Returns `None` when the concept contains a path agreement or a
    /// singleton — constructs the extended language does not model (they
    /// are orthogonal to the hardness arguments of Section 4.4).
    pub fn from_ql(arena: &TermArena, concept: ConceptId) -> Option<ExtConcept> {
        match arena.concept(concept) {
            Concept::Top => Some(ExtConcept::Top),
            Concept::Prim(class) => Some(ExtConcept::Prim(class)),
            Concept::Singleton(_) => None,
            Concept::And(l, r) => Some(ExtConcept::And(vec![
                ExtConcept::from_ql(arena, l)?,
                ExtConcept::from_ql(arena, r)?,
            ])),
            Concept::Exists(path) => ExtConcept::from_ql_path(arena, path),
            Concept::Agree(..) => None,
        }
    }

    fn from_ql_path(arena: &TermArena, path: PathId) -> Option<ExtConcept> {
        match arena.path(path) {
            Path::Empty => Some(ExtConcept::Top),
            Path::Step(restriction, rest) => {
                let filler = ExtConcept::from_ql(arena, restriction.concept)?;
                let rest = ExtConcept::from_ql_path(arena, rest)?;
                Some(ExtConcept::Exists(
                    restriction.attr,
                    Box::new(ExtConcept::And(vec![filler, rest])),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voc() -> (Vocabulary, ClassId, ClassId, Attr) {
        let mut voc = Vocabulary::new();
        let a = voc.class("A");
        let b = voc.class("B");
        let r = Attr::primitive(voc.attribute("r"));
        (voc, a, b, r)
    }

    #[test]
    fn nnf_pushes_negation_inward() {
        let (_voc, a, b, r) = voc();
        // ¬(A ⊓ ∃r.B) → ¬A ⊔ ∀r.¬B
        let c = ExtConcept::Not(Box::new(ExtConcept::And(vec![
            ExtConcept::Prim(a),
            ExtConcept::Exists(r, Box::new(ExtConcept::Prim(b))),
        ])));
        let nnf = c.nnf();
        assert_eq!(
            nnf,
            ExtConcept::Or(vec![
                ExtConcept::Not(Box::new(ExtConcept::Prim(a))),
                ExtConcept::All(r, Box::new(ExtConcept::Not(Box::new(ExtConcept::Prim(b))))),
            ])
        );
    }

    #[test]
    fn double_negation_cancels() {
        let (_voc, a, ..) = voc();
        let c = ExtConcept::Not(Box::new(ExtConcept::Not(Box::new(ExtConcept::Prim(a)))));
        assert_eq!(c.nnf(), ExtConcept::Prim(a));
        assert_eq!(
            ExtConcept::Not(Box::new(ExtConcept::Top)).nnf(),
            ExtConcept::Bottom
        );
    }

    #[test]
    fn size_and_render() {
        let (voc, a, b, r) = voc();
        let c = ExtConcept::Or(vec![
            ExtConcept::Prim(a),
            ExtConcept::All(r, Box::new(ExtConcept::Prim(b))),
        ]);
        assert_eq!(c.size(), 4);
        assert_eq!(c.render(&voc), "(A ⊔ ∀r.B)");
    }

    #[test]
    fn from_ql_translates_paths_and_rejects_agreements() {
        let mut voc = Vocabulary::new();
        let a = voc.class("A");
        let r = Attr::primitive(voc.attribute("r"));
        let mut arena = TermArena::new();
        let a_c = arena.prim(a);
        let top = arena.top();
        let path = arena.path_of(&[(r, a_c), (r, top)]);
        let exists = arena.exists(path);
        let translated = ExtConcept::from_ql(&arena, exists).expect("translates");
        assert_eq!(
            translated,
            ExtConcept::Exists(
                r,
                Box::new(ExtConcept::And(vec![
                    ExtConcept::Prim(a),
                    ExtConcept::Exists(
                        r,
                        Box::new(ExtConcept::And(vec![ExtConcept::Top, ExtConcept::Top]))
                    ),
                ]))
            )
        );
        let agree = arena.agree_epsilon(path);
        assert!(ExtConcept::from_ql(&arena, agree).is_none());
    }
}
