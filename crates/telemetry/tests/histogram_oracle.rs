//! Property suites for the telemetry primitives:
//!
//! * the histogram's quantile estimation against a sorted-vec oracle —
//!   for every seeded sample distribution and every quantile, the
//!   estimate must land in the same log2 bucket as the exact sample
//!   quantile (the crate's documented accuracy contract);
//! * the sharded counter under concurrent writers — the shard sum must
//!   equal the arithmetic total, with no lost updates across threads.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use subq_telemetry::{Counter, Histogram};

/// The library's bucket mapping, restated independently: bucket 0 holds
/// {0, 1}, bucket `i ≥ 1` holds `[2^i, 2^(i+1))`.
fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// The exact sample quantile under the histogram's rank rule: the
/// `ceil(q·n)`-th smallest sample (1-based, clamped into the set).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

/// One seeded sample stream per named shape, sized by `len`.
fn sample_stream(shape: &str, seed: u64, len: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| match shape {
            // Uniform over a wide range: many buckets populated.
            "uniform" => rng.gen_range(0u64..1_000_000),
            // Log-uniform: every bucket equally likely — the adversarial
            // case for bucket-midpoint estimation.
            "log_uniform" => {
                let bits = rng.gen_range(0u32..40);
                rng.next_u64() >> (64 - bits.max(1))
            }
            // Heavy tail: mostly small values, occasional huge ones.
            "heavy_tail" => {
                if rng.gen_bool(0.05) {
                    rng.gen_range(1_000_000u64..1_000_000_000)
                } else {
                    rng.gen_range(0u64..1_000)
                }
            }
            // Constant: every quantile is the same sample.
            "constant" => 42,
            // Two spikes far apart: quantiles jump between them.
            "bimodal" => {
                if i % 3 == 0 {
                    rng.gen_range(10u64..20)
                } else {
                    rng.gen_range(1_000_000u64..2_000_000)
                }
            }
            _ => unreachable!("unknown shape {shape}"),
        })
        .collect()
}

#[test]
fn quantile_estimates_share_the_oracle_bucket() {
    let shapes = [
        "uniform",
        "log_uniform",
        "heavy_tail",
        "constant",
        "bimodal",
    ];
    let mut cases = 0usize;
    for shape in shapes {
        for seed in 0..20u64 {
            for len in [1usize, 2, 3, 10, 127, 1024] {
                let samples = sample_stream(shape, 0xC0FFEE ^ seed, len);
                let histogram = Histogram::unregistered();
                for &v in &samples {
                    histogram.record(v);
                }
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                for q in [0.5, 0.9, 0.99] {
                    let estimate = histogram.quantile(q);
                    let exact = oracle_quantile(&sorted, q);
                    assert_eq!(
                        bucket_index(estimate),
                        bucket_index(exact),
                        "{shape} seed={seed} len={len} q={q}: estimate {estimate} \
                         not in the exact quantile {exact}'s log2 bucket"
                    );
                }
                let (count, sum, p50, p90, p99) = histogram.summary();
                assert_eq!(count, samples.len() as u64);
                assert_eq!(sum, samples.iter().copied().sum::<u64>());
                assert!(p50 <= p90 && p90 <= p99, "{shape} quantiles out of order");
                cases += 1;
            }
        }
    }
    assert_eq!(cases, shapes.len() * 20 * 6);
}

#[test]
fn quantile_of_empty_histogram_is_zero() {
    let histogram = Histogram::unregistered();
    assert_eq!(histogram.quantile(0.5), 0);
    assert_eq!(histogram.summary(), (0, 0, 0, 0, 0));
}

#[test]
fn counter_shards_lose_no_updates_across_threads() {
    let counter = Counter::unregistered();
    let threads = 8usize;
    let per_thread = 10_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let counter = &counter;
            scope.spawn(move || {
                for i in 0..per_thread {
                    // Mix unit bumps and wider adds so both entry points
                    // are covered under contention.
                    if (i + t as u64).is_multiple_of(4) {
                        counter.add(3);
                    } else {
                        counter.inc();
                    }
                }
            });
        }
    });
    let expected: u64 = (0..threads as u64)
        .map(|t| {
            (0..per_thread)
                .map(|i| if (i + t).is_multiple_of(4) { 3 } else { 1 })
                .sum::<u64>()
        })
        .sum();
    assert_eq!(counter.get(), expected);
}

#[test]
fn histogram_records_are_thread_safe() {
    let histogram = Histogram::unregistered();
    let threads = 4usize;
    let per_thread = 5_000u64;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let histogram = &histogram;
            scope.spawn(move || {
                for i in 0..per_thread {
                    histogram.record(i);
                }
            });
        }
    });
    assert_eq!(histogram.count(), threads as u64 * per_thread);
    let per_thread_sum: u64 = (0..per_thread).sum();
    assert_eq!(histogram.sum(), threads as u64 * per_thread_sum);
}
