//! Leveled, timestamped stderr logging for daemon lifecycle events.
//!
//! Off by default so the library crates and the test suites stay silent;
//! `subqd --log-level {off,info,debug}` turns it on. Messages are built
//! lazily (the closure runs only when the level admits the line), so a
//! disabled logger costs one relaxed atomic load per call site.

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log verbosity, ordered: `Off < Info < Debug`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Off = 0,
    Info = 1,
    Debug = 2,
}

impl Level {
    /// Parses the `--log-level` flag values.
    pub fn parse(s: &str) -> Option<Level> {
        Some(match s {
            "off" => Level::Off,
            "info" => Level::Info,
            "debug" => Level::Debug,
            _ => return None,
        })
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// Sets the process-wide log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide log level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        1 => Level::Info,
        2 => Level::Debug,
        _ => Level::Off,
    }
}

fn emit(admit: Level, tag: &str, message: impl FnOnce() -> String) {
    if level() >= admit {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default();
        eprintln!(
            "[{}.{:03} {tag}] {}",
            now.as_secs(),
            now.subsec_millis(),
            message()
        );
    }
}

/// Logs a lifecycle event at `info`.
pub fn info(message: impl FnOnce() -> String) {
    emit(Level::Info, "INFO", message);
}

/// Logs a per-event detail at `debug`.
pub fn debug(message: impl FnOnce() -> String) {
    emit(Level::Debug, "DEBUG", message);
}
