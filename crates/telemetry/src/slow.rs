//! A bounded ring buffer of slow-operation records.
//!
//! The server records queries whose round trip exceeded the
//! `--slow-query-us` threshold; `STATS SLOW` reads the ring back over
//! the wire. The ring keeps the **most recent** entries — a burst of
//! slow queries evicts the oldest records, never blocks the recorder.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One slow operation: how long it took and what it was.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowEntry {
    /// Elapsed microseconds.
    pub micros: u64,
    /// A short label (the query-class name).
    pub label: String,
}

/// A bounded, thread-safe ring of [`SlowEntry`] records.
#[derive(Debug)]
pub struct SlowLog {
    cap: usize,
    entries: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    /// A ring retaining at most `cap` entries (at least one).
    pub fn new(cap: usize) -> SlowLog {
        SlowLog {
            cap: cap.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Records one slow operation, evicting the oldest entry when full.
    pub fn record(&self, micros: u64, label: impl Into<String>) {
        let mut entries = self.entries.lock().expect("slow log poisoned");
        if entries.len() >= self.cap {
            entries.pop_front();
        }
        entries.push_back(SlowEntry {
            micros,
            label: label.into(),
        });
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.entries
            .lock()
            .expect("slow log poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("slow log poisoned").len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SlowLog {
    /// A ring of 128 entries — the daemon default.
    fn default() -> Self {
        SlowLog::new(128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_entries() {
        let log = SlowLog::new(3);
        for i in 0..5u64 {
            log.record(i, format!("q{i}"));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].micros, 2);
        assert_eq!(entries[2].label, "q4");
    }
}
