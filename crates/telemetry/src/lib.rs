//! Engine-wide telemetry, dependency-free like `support/croaring`.
//!
//! Everything here is built for the *write* side being on a hot path and
//! the *read* side being rare (a `STATS` request, a metrics dump, a test
//! assertion):
//!
//! * [`Counter`] — a monotonic counter sharded across cache-line-padded
//!   atomics; concurrent writers from different threads land on different
//!   shards, so the hot path is one uncontended relaxed `fetch_add`.
//!   Reading sums the shards.
//! * [`Gauge`] — a single signed atomic for instantaneous levels (queue
//!   depth, active sessions).
//! * [`Histogram`] — log2-bucketed value distribution (64 buckets, one
//!   per bit position) with p50/p90/p99 estimation from the bucket
//!   boundaries. Recording is two relaxed `fetch_add`s; quantiles are
//!   estimated by walking the cumulative counts and answering the
//!   midpoint of the bucket holding the target rank — by construction
//!   within one log2 bucket of the exact sample quantile (the property
//!   suite drills this against a sorted-vec oracle).
//! * [`SpanTimer`] — a zero-alloc scope timer: `let _t = hist.span();`
//!   records the elapsed nanoseconds on drop. When telemetry is disabled
//!   ([`set_enabled`]) the timer skips even the clock reads, which is
//!   what makes the instrumented hot paths measurable against a disabled
//!   baseline (the `perf_smoke` overhead gate).
//! * [`Registry`] — named registration of the above. Handles are `Arc`s:
//!   registration is a one-time lock, after which the holder touches only
//!   its own atomics. [`Registry::render`] emits Prometheus-style text
//!   exposition (counters, gauges, and summaries with quantile labels).
//!   [`global`] is the process-wide registry every subsystem registers
//!   into, so one enumeration covers every counter in the system.
//! * [`SlowLog`] — a bounded ring buffer of slow-operation records
//!   (`STATS SLOW` over the wire).
//! * [`log`] — leveled, timestamped stderr logging for daemon lifecycle
//!   events; off by default so libraries and tests stay silent.

pub mod log;
mod slow;

pub use slow::{SlowEntry, SlowLog};

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Global switch for the *timed* instrumentation: [`Histogram::span`]
/// reads the clock only while enabled. Counters and explicit records are
/// always on — they are a handful of relaxed atomic adds and form the
/// baseline both sides of the overhead gate share.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables span timing process-wide (default: enabled).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span timing is enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of independently padded shards per [`Counter`].
const COUNTER_SHARDS: usize = 16;

/// One cache line per shard so two threads bumping the same counter do
/// not bounce a line between cores.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// Threads are dealt shard slots round-robin on first use.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    static MY_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn my_shard() -> usize {
    MY_SHARD.with(|slot| {
        let assigned = slot.get();
        if assigned != usize::MAX {
            return assigned;
        }
        let assigned = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
        slot.set(assigned);
        assigned
    })
}

#[derive(Default)]
struct CounterCore {
    shards: [Shard; COUNTER_SHARDS],
}

/// A monotonic counter; clone the handle freely — all clones share the
/// same shards.
#[derive(Clone)]
pub struct Counter(Arc<CounterCore>);

impl Counter {
    /// A counter not registered anywhere (useful in tests).
    pub fn unregistered() -> Counter {
        Counter(Arc::new(CounterCore::default()))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.shards[my_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (sums the shards; monotone between calls on any
    /// one shard, so concurrent reads may lag but never overcount).
    pub fn get(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|shard| shard.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// An instantaneous signed level (queue depth, active sessions).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not registered anywhere.
    pub fn unregistered() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// Number of log2 buckets — one per bit position of a `u64` value.
const BUCKETS: usize = 64;

struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        HistogramCore {
            buckets: [ZERO; BUCKETS],
            sum: AtomicU64::new(0),
        }
    }
}

/// The log2 bucket of a value: 0 holds {0, 1}, bucket `i ≥ 1` holds
/// `[2^i, 2^(i+1))`.
fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// The reported representative of a bucket: its midpoint (1 for the
/// {0, 1} bucket), so an estimate always lands in the bucket it came
/// from.
fn bucket_mid(index: usize) -> u64 {
    if index == 0 {
        1
    } else {
        (1u64 << index) + (1u64 << (index - 1))
    }
}

/// A log2-bucketed distribution of `u64` values (latencies in
/// nanoseconds, batch sizes, candidate counts).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A histogram not registered anywhere.
    pub fn unregistered() -> Histogram {
        Histogram(Arc::new(HistogramCore::default()))
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Starts a span timer recording elapsed **nanoseconds** into this
    /// histogram on drop. Zero allocation; reads no clock while telemetry
    /// is disabled.
    #[inline]
    pub fn span(&self) -> SpanTimer<'_> {
        SpanTimer {
            histogram: self,
            started: if enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of recorded values (wrapping).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The estimated `q`-quantile (`0 < q ≤ 1`): the midpoint of the
    /// bucket holding the target rank — within one log2 bucket of the
    /// exact sample quantile. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (index, count) in counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= target {
                return bucket_mid(index);
            }
        }
        bucket_mid(BUCKETS - 1)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Histogram {
    /// `(count, sum, p50, p90, p99)` in one call.
    pub fn summary(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.count(),
            self.sum(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
        )
    }
}

/// A scope timer: records the elapsed nanoseconds into its histogram on
/// drop. Created by [`Histogram::span`].
pub struct SpanTimer<'a> {
    histogram: &'a Histogram,
    started: Option<Instant>,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started.take() {
            self.histogram.record(started.elapsed().as_nanos() as u64);
        }
    }
}

/// One registered metric's handle, by kind.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The current value of one registered metric, as read by
/// [`Registry::snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    /// `count`, `sum`, and the estimated p50/p90/p99.
    Histogram {
        count: u64,
        sum: u64,
        p50: u64,
        p90: u64,
        p99: u64,
    },
}

/// A named collection of metrics. Registration takes a short lock and
/// returns a clonable handle; the registry is only locked again to
/// enumerate (render, snapshot). Re-registering a name returns the
/// existing handle, so independent subsystems share counters by name.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register<T>(
        &self,
        name: &str,
        as_kind: impl Fn(&Metric) -> Option<T>,
        fresh: impl FnOnce() -> (Metric, T),
    ) -> T {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some((_, metric)) = entries.iter().find(|(n, _)| n == name) {
            return as_kind(metric).unwrap_or_else(|| {
                panic!("metric {name} already registered with a different kind")
            });
        }
        let (metric, handle) = fresh();
        entries.push((name.to_owned(), metric));
        handle
    }

    /// Registers (or re-opens) a counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.register(
            name,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::unregistered();
                (Metric::Counter(c.clone()), c)
            },
        )
    }

    /// Registers (or re-opens) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.register(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::unregistered();
                (Metric::Gauge(g.clone()), g)
            },
        )
    }

    /// Registers (or re-opens) a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.register(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Histogram::unregistered();
                (Metric::Histogram(h.clone()), h)
            },
        )
    }

    /// Every registered metric with its current value, in registration
    /// order.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let entries = self.entries.lock().expect("registry poisoned").clone();
        entries
            .into_iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        let (count, sum, p50, p90, p99) = h.summary();
                        MetricValue::Histogram {
                            count,
                            sum,
                            p50,
                            p90,
                            p99,
                        }
                    }
                };
                (name, value)
            })
            .collect()
    }

    /// Prometheus-style text exposition: counters and gauges as single
    /// samples, histograms as summaries with `quantile` labels plus
    /// `_sum`/`_count`. No blank lines, so the output embeds line-per-line
    /// into the wire protocol's `REPORT` frames.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    p50,
                    p90,
                    p99,
                } => {
                    out.push_str(&format!(
                        "# TYPE {name} summary\n\
                         {name}{{quantile=\"0.5\"}} {p50}\n\
                         {name}{{quantile=\"0.9\"}} {p90}\n\
                         {name}{{quantile=\"0.99\"}} {p99}\n\
                         {name}_sum {sum}\n\
                         {name}_count {count}\n"
                    ));
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.entries.lock().expect("poisoned").len())
            .finish()
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry every subsystem registers into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// [`Registry::counter`] on the global registry.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// [`Registry::gauge`] on the global registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// [`Registry::histogram`] on the global registry.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_mid(i)), i, "midpoint stays in bucket");
        }
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_nonzero() {
        let h = Histogram::unregistered();
        for v in [10u64, 100, 1_000, 10_000, 100_000] {
            for _ in 0..20 {
                h.record(v);
            }
        }
        let (count, sum, p50, p90, p99) = h.summary();
        assert_eq!(count, 100);
        assert_eq!(sum, 20 * 111_110);
        assert!(p50 > 0 && p50 <= p90 && p90 <= p99);
    }

    #[test]
    fn registry_reopens_handles_by_name() {
        let registry = Registry::new();
        let a = registry.counter("x_total");
        let b = registry.counter("x_total");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert_eq!(
            registry.snapshot(),
            vec![("x_total".to_owned(), MetricValue::Counter(5))]
        );
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let registry = Registry::new();
        registry.counter("ops_total").add(7);
        registry.gauge("depth").set(-2);
        registry.histogram("lat_ns").record(1000);
        let text = registry.render();
        assert!(text.contains("# TYPE ops_total counter\nops_total 7\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth -2\n"));
        assert!(text.contains("# TYPE lat_ns summary\n"));
        assert!(text.contains("lat_ns{quantile=\"0.5\"}"));
        assert!(text.contains("lat_ns_count 1\n"));
        assert!(!text.lines().any(|l| l.is_empty()));
    }

    #[test]
    fn disabled_span_records_nothing() {
        let h = Histogram::unregistered();
        set_enabled(false);
        drop(h.span());
        set_enabled(true);
        assert_eq!(h.count(), 0);
        drop(h.span());
        assert_eq!(h.count(), 1);
    }
}
