//! Experiment E4 — Table 1: evaluating concepts under the set semantics and
//! under the transformational (first-order) semantics over finite
//! interpretations. The two must agree (checked) and the bench records the
//! cost of each.

use criterion::{criterion_group, criterion_main, Criterion};
use subq::concepts::fol::concept_holds_at;
use subq::concepts::{Element, Interpretation};
use subq::workload::{random_concept, RandomConceptParams};

fn build_interpretation(env: &subq::workload::random::RandomEnv, size: u32) -> Interpretation {
    // A deterministic ring-shaped interpretation: element i is in class
    // K_{i mod classes} and attribute r_j connects i to i+j+1 (mod size).
    let mut interp = Interpretation::new(size);
    let classes: Vec<_> = env.vocabulary.classes().collect();
    let attrs: Vec<_> = env.vocabulary.attributes().collect();
    for i in 0..size {
        interp.add_class_member(classes[(i as usize) % classes.len()], Element(i));
        for (j, attr) in attrs.iter().enumerate() {
            let to = (i + j as u32 + 1) % size;
            interp.add_attr_pair(*attr, Element(i), Element(to));
        }
    }
    for (k, constant) in env.vocabulary.constants().enumerate() {
        interp.set_constant(constant, Element(k as u32 % size));
    }
    interp
}

fn bench_semantics(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_semantics");
    group.sample_size(20);

    let params = RandomConceptParams::default();
    for &domain in &[4u32, 8, 16] {
        let (env, concept) = random_concept(11, params);
        let interp = build_interpretation(&env, domain);

        // Cross-check once outside the measurement loop.
        for e in interp.domain() {
            assert_eq!(
                interp.satisfies_concept(&env.arena, concept, e),
                concept_holds_at(&env.arena, &interp, concept, e),
                "Table 1 agreement violated"
            );
        }

        group.bench_function(format!("set_semantics/domain_{domain}"), |b| {
            b.iter(|| interp.eval_concept(&env.arena, concept))
        });
        group.bench_function(format!("fol_semantics/domain_{domain}"), |b| {
            b.iter(|| {
                interp
                    .domain()
                    .filter(|&e| concept_holds_at(&env.arena, &interp, concept, e))
                    .count()
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_semantics);
criterion_main!(benches);
