//! Experiment E3 — Figure 11: the subsumption check of the paper's worked
//! example (QueryPatient against ViewPatient under the medical schema), in
//! both directions and with/without trace recording.

use criterion::{criterion_group, criterion_main, Criterion};
use subq::calculus::SubsumptionChecker;
use subq::dl::samples;
use subq::translate::translate_model;

fn bench_paper_example(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_paper_example");
    group.sample_size(50);

    let model = samples::medical_model();

    group.bench_function("query_subsumed_by_view", |b| {
        b.iter_batched(
            || translate_model(&model).expect("translates"),
            |mut translated| {
                let query = translated.query_concept("QueryPatient").expect("present");
                let view = translated.query_concept("ViewPatient").expect("present");
                let checker = SubsumptionChecker::new(&translated.schema);
                assert!(checker.subsumes(&mut translated.arena, query, view));
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("view_not_subsumed_by_query", |b| {
        b.iter_batched(
            || translate_model(&model).expect("translates"),
            |mut translated| {
                let query = translated.query_concept("QueryPatient").expect("present");
                let view = translated.query_concept("ViewPatient").expect("present");
                let checker = SubsumptionChecker::new(&translated.schema);
                assert!(!checker.subsumes(&mut translated.arena, view, query));
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("with_figure11_trace", |b| {
        b.iter_batched(
            || translate_model(&model).expect("translates"),
            |mut translated| {
                let query = translated.query_concept("QueryPatient").expect("present");
                let view = translated.query_concept("ViewPatient").expect("present");
                let checker = SubsumptionChecker::new(&translated.schema);
                let outcome = checker.check_with_trace(&mut translated.arena, query, view);
                assert!(outcome.subsumed());
                outcome.trace.map(|t| t.len())
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_paper_example);
criterion_main!(benches);
