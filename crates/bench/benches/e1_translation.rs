//! Experiment E1/E2 — Figures 1–6: parsing the medical schema, translating
//! it to first-order logic and to SL/QL.
//!
//! The paper reports no timings for these steps; the bench documents that
//! the whole front end is far cheaper than a single query evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use subq::dl::{fol, parse_model, samples, validate_model};
use subq::translate::translate_model;

fn bench_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_translation");
    group.sample_size(30);

    group.bench_function("parse_medical_schema", |b| {
        b.iter(|| parse_model(black_box(samples::MEDICAL_SOURCE)).expect("parses"))
    });

    let model = samples::medical_model();
    group.bench_function("validate_medical_schema", |b| {
        b.iter(|| validate_model(black_box(&model)))
    });

    group.bench_function("figure2_first_order_translation", |b| {
        b.iter(|| fol::model_axioms(black_box(&model)))
    });

    group.bench_function("figure4_query_formulas", |b| {
        b.iter(|| {
            model
                .queries
                .iter()
                .map(fol::query_formula)
                .map(|f| f.size())
                .sum::<usize>()
        })
    });

    group.bench_function("figure6_structural_translation", |b| {
        b.iter(|| translate_model(black_box(&model)).expect("translates"))
    });

    group.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
