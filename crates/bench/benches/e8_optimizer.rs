//! Experiment E8 — the optimization payoff of Sections 1 and 6: answering a
//! query by filtering a subsuming materialized view versus evaluating it
//! from scratch, across database sizes and view selectivities.
//!
//! The companion binary `e8_optimizer_table` prints the candidate-count
//! table (the size-independent measure of the search-space reduction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subq::dl::samples;
use subq::oodb::OptimizedDatabase;
use subq::workload::{synthetic_hospital, HospitalParams};

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_optimizer");
    group.sample_size(10);

    let model = samples::medical_model();
    let query = model.query_class("QueryPatient").expect("declared").clone();

    for &patients in &[500usize, 2_000, 8_000] {
        let params = HospitalParams {
            patients,
            doctors: (patients / 40).max(5),
            diseases: 20,
            view_match_percent: 15,
            query_match_percent: 40,
        };
        let db = synthetic_hospital(7, params);
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        odb.materialize_view("ViewPatient").expect("materializes");
        // Warm up the materialization and check correctness once.
        let (optimized, stats) = odb.execute(&query);
        let (baseline, base_stats) = odb.execute_unoptimized(&query);
        assert_eq!(optimized, baseline);
        assert!(stats.candidates_examined <= base_stats.candidates_examined);

        group.bench_with_input(
            BenchmarkId::new("optimized_via_view", patients),
            &patients,
            |b, _| b.iter(|| odb.execute(&query).1.answers),
        );
        group.bench_with_input(
            BenchmarkId::new("from_scratch", patients),
            &patients,
            |b, _| b.iter(|| odb.execute_unoptimized(&query).1.answers),
        );
    }

    // Sweep view selectivity at a fixed size: the payoff shrinks as the
    // view covers more of the database.
    for &selectivity in &[5u8, 25, 60] {
        let params = HospitalParams {
            patients: 2_000,
            doctors: 50,
            diseases: 20,
            view_match_percent: selectivity,
            query_match_percent: 40,
        };
        let db = synthetic_hospital(11, params);
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        odb.materialize_view("ViewPatient").expect("materializes");
        let _ = odb.execute(&query);
        group.bench_with_input(
            BenchmarkId::new("optimized_by_selectivity", selectivity),
            &selectivity,
            |b, _| b.iter(|| odb.execute(&query).1.answers),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
