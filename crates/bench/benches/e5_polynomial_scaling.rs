//! Experiment E5 — Theorem 4.9 and Proposition 4.8: the subsumption check
//! scales polynomially in the size of the query, the view, and the schema,
//! and the number of individuals stays below `M · N`.
//!
//! Four deterministic families (see `subq-workload::scaling`) each grow one
//! size parameter; the bench measures wall-clock time per instance and the
//! companion binary `e5_scaling_table` prints the individual counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subq::calculus::SubsumptionChecker;
use subq::workload::scaling::{
    conjunction_width_instance, path_depth_instance, schema_size_instance, view_growth_instance,
};
use subq::workload::ScalingInstance;

fn run(mut instance: ScalingInstance) -> usize {
    let checker = SubsumptionChecker::new(&instance.schema);
    let outcome = checker.check(&mut instance.arena, instance.query, instance.view);
    assert!(
        outcome.subsumed(),
        "scaling instances are subsumed by construction"
    );
    // Proposition 4.8, asserted on every measured instance.
    let bound = instance.arena.concept_size(outcome.normalized_query)
        * instance.arena.concept_size(outcome.normalized_view)
        + 1;
    assert!(outcome.stats.individuals <= bound);
    outcome.stats.rule_applications
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_polynomial_scaling");
    group.sample_size(15);

    type Family = fn(usize) -> ScalingInstance;
    let families: [(&str, Family); 4] = [
        ("path_depth", path_depth_instance),
        ("conjunction_width", conjunction_width_instance),
        ("schema_size", schema_size_instance),
        ("view_growth", view_growth_instance),
    ];
    for (name, family) in families {
        for n in [2usize, 4, 8, 16, 32] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter_batched(|| family(n), run, criterion::BatchSize::SmallInput)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
