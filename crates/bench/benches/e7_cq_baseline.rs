//! Experiment E7 — Section 5 ("Conjunctive Queries"): the polynomial
//! structural calculus versus the NP-complete Chandra–Merlin containment
//! test on QL-expressible query/view pairs with an empty schema.
//!
//! Both deciders return the same answers (asserted); the bench measures
//! their running times on seeded random pairs and on pairs that are
//! subsumed by construction. The companion binary `e7_agreement_table`
//! prints the agreement/hit-rate table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subq::calculus::SubsumptionChecker;
use subq::concepts::Schema;
use subq::conjunctive::{concept_to_cq, contains};
use subq::workload::{random_pair, subsumed_pair, RandomConceptParams};

fn bench_cq_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_cq_baseline");
    group.sample_size(20);

    let schema = Schema::new();
    for depth in [2usize, 3] {
        let params = RandomConceptParams {
            max_depth: depth,
            ..RandomConceptParams::default()
        };

        group.bench_with_input(
            BenchmarkId::new("calculus_random_pairs", depth),
            &depth,
            |b, _| {
                b.iter_batched(
                    || {
                        (0..16u64)
                            .map(|seed| random_pair(seed, params))
                            .collect::<Vec<_>>()
                    },
                    |pairs| {
                        let checker = SubsumptionChecker::new(&schema);
                        pairs
                            .into_iter()
                            .filter(|_| true)
                            .map(|(mut env, q, v)| checker.subsumes(&mut env.arena, q, v))
                            .filter(|&b| b)
                            .count()
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );

        group.bench_with_input(
            BenchmarkId::new("chandra_merlin_random_pairs", depth),
            &depth,
            |b, _| {
                b.iter_batched(
                    || {
                        (0..16u64)
                            .map(|seed| random_pair(seed, params))
                            .collect::<Vec<_>>()
                    },
                    |pairs| {
                        pairs
                            .into_iter()
                            .map(|(env, q, v)| {
                                contains(
                                    &concept_to_cq(&env.arena, q),
                                    &concept_to_cq(&env.arena, v),
                                )
                            })
                            .filter(|&b| b)
                            .count()
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );

        group.bench_with_input(
            BenchmarkId::new("calculus_subsumed_pairs", depth),
            &depth,
            |b, _| {
                b.iter_batched(
                    || {
                        (0..16u64)
                            .map(|seed| subsumed_pair(seed, params))
                            .collect::<Vec<_>>()
                    },
                    |pairs| {
                        let checker = SubsumptionChecker::new(&schema);
                        for (mut env, q, v) in pairs {
                            assert!(checker.subsumes(&mut env.arena, q, v));
                        }
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );

        group.bench_with_input(
            BenchmarkId::new("chandra_merlin_subsumed_pairs", depth),
            &depth,
            |b, _| {
                b.iter_batched(
                    || {
                        (0..16u64)
                            .map(|seed| subsumed_pair(seed, params))
                            .collect::<Vec<_>>()
                    },
                    |pairs| {
                        for (env, q, v) in pairs {
                            assert!(contains(
                                &concept_to_cq(&env.arena, q),
                                &concept_to_cq(&env.arena, v)
                            ));
                        }
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_cq_baseline);
criterion_main!(benches);
