//! Experiment E6 — Propositions 4.10–4.12: the cost of complete reasoning
//! for the harmful language extensions, contrasted with the polynomial core
//! on comparable SL/QL instances.
//!
//! Measured quantities: the filler demand of qualified-existential schemas,
//! the expansion size for inverse-attribute schemas, the valuation count
//! for disjunctive (propositional) subsumption, and tableau satisfiability
//! on pigeonhole instances. The companion binary `e6_blowup_table` prints
//! the counter table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subq::concepts::Vocabulary;
use subq::extensions::expansion::{
    expand_and_detect, filler_demand, inverse_chain, qualified_chain, unqualified_chain,
};
use subq::extensions::propositional::{independent_choices, pigeonhole, prop_subsumes};
use subq::extensions::tableau::is_satisfiable;

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_extension_blowup");
    group.sample_size(10);

    // Proposition 4.10 case 1: qualified existentials vs the SL
    // approximation.
    for n in [4usize, 8, 12] {
        group.bench_with_input(
            BenchmarkId::new("qualified_exists_demand", n),
            &n,
            |b, &n| {
                b.iter_batched(
                    || {
                        let mut voc = Vocabulary::new();
                        qualified_chain(&mut voc, n)
                    },
                    |(schema, root)| filler_demand(&schema, root, n),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sl_approximation_demand", n),
            &n,
            |b, &n| {
                b.iter_batched(
                    || {
                        let mut voc = Vocabulary::new();
                        unqualified_chain(&mut voc, n)
                    },
                    |(schema, root)| filler_demand(&schema, root, n),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }

    // Proposition 4.10 case 2: inverse attributes force the full expansion.
    for n in [4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::new("inverse_expansion", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    let mut voc = Vocabulary::new();
                    inverse_chain(&mut voc, n)
                },
                |(schema, root, target)| {
                    let outcome = expand_and_detect(&schema, root, n);
                    assert!(outcome.root_classes.contains(&target));
                    outcome.individuals_created
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }

    // Proposition 4.12: disjunction — valuation enumeration.
    for n in [6usize, 10, 14] {
        group.bench_with_input(
            BenchmarkId::new("disjunction_valuations", n),
            &n,
            |b, &n| {
                b.iter_batched(
                    || {
                        let mut voc = Vocabulary::new();
                        independent_choices(&mut voc, n)
                    },
                    |concept| {
                        let outcome = prop_subsumes(&concept, &concept).expect("propositional");
                        assert!(outcome.subsumed);
                        outcome.valuations
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }

    // Propositions 4.11/4.13: the complete tableau on pigeonhole instances.
    for holes in [2usize, 3, 4] {
        group.bench_with_input(
            BenchmarkId::new("tableau_pigeonhole", holes),
            &holes,
            |b, &holes| {
                b.iter_batched(
                    || {
                        let mut voc = Vocabulary::new();
                        pigeonhole(&mut voc, holes)
                    },
                    |concept| {
                        assert!(!is_satisfiable(&concept));
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
