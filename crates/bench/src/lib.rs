//! Shared helpers for the experiment harness (benches and the table
//! binaries under `src/bin`).
//!
//! Each experiment (E1–E8, see DESIGN.md) has a Criterion bench measuring
//! wall-clock time and, where the paper's claim is about growth rates, a
//! binary that prints the corresponding table of counters (individuals,
//! rule applications, branches, valuations, candidates examined) so the
//! shape can be compared with the paper's statements without relying on
//! absolute timings.

use subq::calculus::{CompletionStats, SubsumptionChecker};
use subq::workload::ScalingInstance;

/// Runs a scaling instance through the checker and returns whether it was
/// subsumed together with the completion statistics.
pub fn run_instance(instance: &mut ScalingInstance) -> (bool, CompletionStats) {
    let checker = SubsumptionChecker::new(&instance.schema);
    let outcome = checker.check(&mut instance.arena, instance.query, instance.view);
    (outcome.subsumed(), outcome.stats)
}

/// Formats one row of a markdown-style table.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq::workload::scaling::path_depth_instance;

    #[test]
    fn run_instance_reports_subsumption_and_stats() {
        let mut instance = path_depth_instance(3);
        let (subsumed, stats) = run_instance(&mut instance);
        assert!(subsumed);
        assert!(stats.rule_applications > 0);
    }

    #[test]
    fn row_formats_markdown() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }
}
