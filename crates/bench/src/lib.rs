//! Shared helpers for the experiment harness (benches and the table
//! binaries under `src/bin`).
//!
//! Each experiment (E1–E8, see DESIGN.md) has a Criterion bench measuring
//! wall-clock time and, where the paper's claim is about growth rates, a
//! binary that prints the corresponding table of counters (individuals,
//! rule applications, branches, valuations, candidates examined) so the
//! shape can be compared with the paper's statements without relying on
//! absolute timings. The table binaries additionally write their rows as
//! `BENCH_*.json` files so successive PRs can track the perf trajectory
//! mechanically.

use std::time::{Duration, Instant};
use subq::calculus::reference::ReferenceCompletion;
use subq::calculus::{CompletionStats, SubsumptionChecker};
use subq::concepts::normalize::normalize_concept;
use subq::workload::ScalingInstance;

/// Runs a scaling instance through the checker (delta engine) and returns
/// whether it was subsumed together with the completion statistics.
pub fn run_instance(instance: &mut ScalingInstance) -> (bool, CompletionStats) {
    let checker = SubsumptionChecker::new(&instance.schema);
    let outcome = checker.check(&mut instance.arena, instance.query, instance.view);
    (outcome.subsumed(), outcome.stats)
}

/// Runs a scaling instance through the retained full-scan reference
/// engine, for the naive-versus-incremental counter and timing columns.
pub fn run_reference_instance(instance: &mut ScalingInstance) -> (bool, CompletionStats) {
    let query = normalize_concept(&mut instance.arena, instance.query);
    let view = normalize_concept(&mut instance.arena, instance.view);
    let mut completion =
        ReferenceCompletion::new(&mut instance.arena, &instance.schema, query, view, false);
    let stats = completion.run();
    let derived = completion.view_fact_derived() || completion.find_clash().is_some();
    (derived, stats)
}

/// Times `work` on fresh instances from `make` until ~50 ms of measurement
/// (at least 3 runs) and returns the best per-run time.
pub fn time_best<T>(mut make: impl FnMut() -> T, mut work: impl FnMut(T)) -> Duration {
    let mut best = Duration::MAX;
    let mut spent = Duration::ZERO;
    let mut runs = 0u32;
    while runs < 3 || (spent < Duration::from_millis(50) && runs < 1000) {
        let input = make();
        let start = Instant::now();
        work(input);
        let elapsed = start.elapsed();
        best = best.min(elapsed);
        spent += elapsed;
        runs += 1;
    }
    best
}

/// Formats one row of a markdown-style table.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// A machine-readable benchmark row: `(key, value)` pairs serialized as
/// one flat JSON object. Values are emitted verbatim, so pass numbers as
/// numbers (`"3"`) and strings pre-quoted (`"\"path_depth\""`).
pub fn json_object(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(key, value)| format!("\"{key}\": {value}"))
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// Quotes a string for use as a [`json_object`] value.
pub fn json_str(value: &str) -> String {
    format!("\"{}\"", value.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Writes rows as a JSON array to `path` (one `BENCH_*.json` per table
/// binary).
pub fn write_json_rows(path: &str, rows: &[String]) {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(row);
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    if let Err(error) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {error}");
    } else {
        eprintln!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq::workload::scaling::path_depth_instance;

    #[test]
    fn run_instance_reports_subsumption_and_stats() {
        let mut instance = path_depth_instance(3);
        let (subsumed, stats) = run_instance(&mut instance);
        assert!(subsumed);
        assert!(stats.rule_applications > 0);
    }

    #[test]
    fn reference_instance_agrees_with_delta() {
        let mut delta = path_depth_instance(4);
        let mut naive = path_depth_instance(4);
        let (a, delta_stats) = run_instance(&mut delta);
        let (b, ref_stats) = run_reference_instance(&mut naive);
        assert_eq!(a, b);
        assert_eq!(delta_stats.outcome_only(), ref_stats.outcome_only());
        assert!(ref_stats.constraints_examined >= delta_stats.constraints_examined);
    }

    #[test]
    fn row_formats_markdown() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }

    #[test]
    fn json_rows_are_well_formed() {
        let row = json_object(&[("family", json_str("path_depth")), ("n", "4".into())]);
        assert_eq!(row, "{\"family\": \"path_depth\", \"n\": 4}");
    }
}
