//! Shared helpers for the experiment harness (benches and the table
//! binaries under `src/bin`).
//!
//! Each experiment (E1–E8, see DESIGN.md) has a Criterion bench measuring
//! wall-clock time and, where the paper's claim is about growth rates, a
//! binary that prints the corresponding table of counters (individuals,
//! rule applications, branches, valuations, candidates examined) so the
//! shape can be compared with the paper's statements without relying on
//! absolute timings. The table binaries additionally write their rows as
//! `BENCH_*.json` files so successive PRs can track the perf trajectory
//! mechanically.

use std::time::{Duration, Instant};
use subq::calculus::reference::ReferenceCompletion;
use subq::calculus::{CompletionStats, SubsumptionChecker};
use subq::concepts::normalize::normalize_concept;
use subq::workload::ScalingInstance;

/// Runs a scaling instance through the checker (delta engine) and returns
/// whether it was subsumed together with the completion statistics.
pub fn run_instance(instance: &mut ScalingInstance) -> (bool, CompletionStats) {
    let checker = SubsumptionChecker::new(&instance.schema);
    let outcome = checker.check(&mut instance.arena, instance.query, instance.view);
    (outcome.subsumed(), outcome.stats)
}

/// Runs a scaling instance through the retained full-scan reference
/// engine, for the naive-versus-incremental counter and timing columns.
pub fn run_reference_instance(instance: &mut ScalingInstance) -> (bool, CompletionStats) {
    let query = normalize_concept(&mut instance.arena, instance.query);
    let view = normalize_concept(&mut instance.arena, instance.view);
    let mut completion =
        ReferenceCompletion::new(&mut instance.arena, &instance.schema, query, view, false);
    let stats = completion.run();
    let derived = completion.view_fact_derived() || completion.find_clash().is_some();
    (derived, stats)
}

/// One row of the E10 incremental-maintenance experiment: the maintenance
/// work caused by a single-object update against an `objects`-object,
/// `views`-view catalog, incremental versus full refresh.
pub struct E10Row {
    /// Number of objects in the initial state.
    pub objects: usize,
    /// Number of materialized views.
    pub views: usize,
    /// Log entries the incremental pass consumed.
    pub deltas: u64,
    /// Candidate objects the incremental pass examined.
    pub inc_candidates: u64,
    /// Membership conditions the incremental pass evaluated.
    pub inc_memberships: u64,
    /// Evaluations the subsumption lattice pruned.
    pub inc_prunes: u64,
    /// Membership conditions a full refresh evaluates for the same update
    /// (every view re-checks its whole initial candidate set).
    pub full_memberships: u64,
    /// Wall-clock of the incremental refresh.
    pub inc_ns: u128,
    /// Wall-clock of the full refresh (on an identically mutated twin).
    pub full_ns: u128,
}

/// Builds the E10 arm: a seeded churn instance (tree-shaped hierarchy,
/// one class view per class, 20% with a derived `link` path), all views
/// materialized and fresh, then **one** single-object update — a new
/// object asserted into the deepest class — refreshed incrementally and,
/// on a twin, by full re-evaluation. Deterministic per `(objects, views)`.
pub fn e10_maintenance_arm(objects: usize, views: usize) -> E10Row {
    use subq::oodb::eval::initial_candidates;
    use subq::oodb::OptimizedDatabase;
    use subq::workload::{churn_trace, ChurnParams, FamilyShape};

    let params = ChurnParams {
        shape: FamilyShape::Tree,
        classes: views,
        views,
        path_view_percent: 20,
        objects,
        transactions: 0,
        ops_per_transaction: 1,
        retract_percent: 40,
    };
    let trace = churn_trace(13, params);
    let mut incremental = OptimizedDatabase::new(trace.db.clone()).expect("translates");
    let mut full = OptimizedDatabase::new(trace.db).expect("translates");
    for name in &trace.view_names {
        incremental.materialize_view(name).expect("materializes");
        full.materialize_view(name).expect("materializes");
    }

    // The single-object update: a new object enters the deepest class
    // (membership propagates up the tree, one delta per ancestor).
    let deepest = format!("K{}", views - 1);
    for odb in [&mut incremental, &mut full] {
        odb.update(|db| {
            let obj = db.add_object("update_target");
            db.assert_class(obj, &deepest);
        });
    }

    let before = incremental.maintenance_stats();
    let start = Instant::now();
    incremental.refresh_views();
    let inc_ns = start.elapsed().as_nanos();
    let after = incremental.maintenance_stats();

    // The full baseline evaluates every view's whole candidate set.
    let full_memberships: u64 = trace
        .view_names
        .iter()
        .map(|name| {
            let view = full.catalog().view(name).expect("stored");
            initial_candidates(full.database(), &view.definition).len() as u64
        })
        .sum();
    let start = Instant::now();
    full.catalog().refresh_full(full.database());
    let full_ns = start.elapsed().as_nanos();

    // Both strategies must land on identical extensions.
    for name in &trace.view_names {
        let a = incremental.catalog().view(name).expect("stored");
        let b = full.catalog().view(name).expect("stored");
        assert_eq!(a.extent, b.extent, "E10 {objects}×{views}: view {name}");
    }

    E10Row {
        objects,
        views,
        deltas: after.deltas_applied - before.deltas_applied,
        inc_candidates: after.candidates_examined - before.candidates_examined,
        inc_memberships: after.memberships_evaluated - before.memberships_evaluated,
        inc_prunes: after.lattice_prunes - before.lattice_prunes,
        full_memberships,
        inc_ns,
        full_ns,
    }
}

/// The default E11 concurrency instance: object count, view count, and
/// the per-arm measurement window.
pub mod e11 {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::{Duration, Instant};
    use subq::oodb::OptimizedDatabase;
    use subq::workload::{churn_trace, ChurnParams, ChurnTrace, FamilyShape};

    /// One throughput arm of the E11 table.
    pub struct ThroughputRow {
        /// Reader threads measured.
        pub threads: usize,
        /// Plan+answer operations completed across all readers.
        pub total_ops: u64,
        /// Measurement window.
        pub elapsed_ns: u128,
        /// Median plan latency (over all readers' sampled plans).
        pub p50_plan_ns: u64,
        /// 99th-percentile plan latency.
        pub p99_plan_ns: u64,
        /// Snapshots the readers adopted during the window (lower bound:
        /// sum over readers of observed swaps).
        pub snapshots_adopted: u64,
        /// Per-op probe work after warmup: fresh probes observed across
        /// all readers (0 = every probe answered from a cache — the
        /// deterministic scalability invariant `perf_smoke` asserts).
        pub fresh_probes_after_warmup: u64,
    }

    /// Builds the shared E11 instance: a tree hierarchy with class and
    /// path views, a churny transaction stream, and a warmed writer
    /// (every query shape planned once, so the shared memo and the
    /// published arena carry them).
    pub fn setup(objects: usize, views: usize) -> (OptimizedDatabase, ChurnTrace) {
        let params = ChurnParams {
            shape: FamilyShape::Tree,
            classes: views.max(2),
            views,
            path_view_percent: 30,
            objects,
            transactions: 64,
            ops_per_transaction: 4,
            retract_percent: 40,
        };
        let trace = churn_trace(17, params);
        let mut writer = OptimizedDatabase::new(trace.db.clone()).expect("translates");
        for name in &trace.view_names {
            writer.materialize_view(name).expect("materializes");
        }
        (writer, trace)
    }

    /// Measures aggregate plan+answer throughput with `threads` readers
    /// and a concurrent churn writer committing (and publishing) the
    /// trace's transactions at ~1 ms intervals. Deterministic in *work
    /// shape* (same queries, same churn), wall-clock in *rate*.
    pub fn throughput_arm(threads: usize, run: Duration) -> ThroughputRow {
        let (mut writer, trace) = setup(2_000, 12);
        let queries: Vec<_> = trace
            .view_names
            .iter()
            .map(|name| {
                writer
                    .database()
                    .model()
                    .query_class(name)
                    .expect("declared")
                    .clone()
            })
            .collect();
        // Warm every query shape through the writer: interned in the
        // published arena, verdicts in the shared memo.
        for query in &queries {
            let _ = writer.plan(query);
        }
        writer.publish_snapshot();

        let stop = AtomicBool::new(false);
        let total_ops = AtomicU64::new(0);
        let adopted = AtomicU64::new(0);
        let fresh_after_warmup = AtomicU64::new(0);
        let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let readers: Vec<_> = (0..threads).map(|_| writer.reader()).collect();

        let started = Instant::now();
        std::thread::scope(|scope| {
            for mut reader in readers {
                let stop = &stop;
                let total_ops = &total_ops;
                let adopted = &adopted;
                let fresh_after_warmup = &fresh_after_warmup;
                let latencies = &latencies;
                let queries = &queries;
                scope.spawn(move || {
                    // Per-reader warmup: one pass so private caches hold
                    // every (query, view) pair under the initial snapshot.
                    for query in queries {
                        let _ = reader.execute(query);
                    }
                    let mut ops = 0u64;
                    let mut swaps = 0u64;
                    let mut fresh = 0u64;
                    let mut lats: Vec<u64> = Vec::with_capacity(4096);
                    let mut at = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        if at.is_multiple_of(64) && reader.sync() {
                            swaps += 1;
                        }
                        let query = &queries[at % queries.len()];
                        let t0 = Instant::now();
                        let plan = reader.plan(query);
                        lats.push(t0.elapsed().as_nanos() as u64);
                        fresh += plan.fresh_probes as u64;
                        let _ = reader.execute(query);
                        ops += 1;
                        at += 1;
                    }
                    total_ops.fetch_add(ops, Ordering::Relaxed);
                    adopted.fetch_add(swaps, Ordering::Relaxed);
                    fresh_after_warmup.fetch_add(fresh, Ordering::Relaxed);
                    latencies.lock().expect("latency lock").extend(lats);
                });
            }

            // The churn writer: commit + publish a transaction roughly
            // every millisecond until the window closes.
            let deadline = started + run;
            let mut t = 0usize;
            while Instant::now() < deadline {
                let txn = &trace.transactions[t % trace.transactions.len()];
                t += 1;
                writer.commit(|db| {
                    for op in txn {
                        op.apply(db);
                    }
                });
                std::thread::sleep(Duration::from_millis(1));
            }
            stop.store(true, Ordering::Relaxed);
        });
        let elapsed_ns = started.elapsed().as_nanos();

        let mut lats = latencies.into_inner().expect("latency lock");
        lats.sort_unstable();
        let pick = |q: f64| -> u64 {
            if lats.is_empty() {
                0
            } else {
                lats[((lats.len() - 1) as f64 * q) as usize]
            }
        };
        ThroughputRow {
            threads,
            total_ops: total_ops.into_inner(),
            elapsed_ns,
            p50_plan_ns: pick(0.50),
            p99_plan_ns: pick(0.99),
            snapshots_adopted: adopted.into_inner(),
            fresh_probes_after_warmup: fresh_after_warmup.into_inner(),
        }
    }

    /// One publish-cost arm: the wall-clock of `publish_snapshot` after a
    /// transaction of `txn_ops` effective churn operations, best of 5, on
    /// a 10k-object store — the copy-on-write sharding keeps it
    /// proportional to the shards touched, not to the store. Every
    /// iteration commits *fresh* objects (new names, new memberships, new
    /// edges), so each measured publish follows a transaction that really
    /// moved the data version by ≥ `txn_ops` deltas — re-applying an
    /// idempotent op list would measure a no-op publish instead.
    pub fn publish_cost_arm(txn_ops: usize) -> u128 {
        let (mut writer, trace) = setup(10_000, 12);
        writer.publish_snapshot();
        let classes = trace.view_names.len().max(2);
        let mut best = u128::MAX;
        for round in 0..5 {
            let before = writer.database().data_version();
            writer.update(|db| {
                for j in 0..txn_ops {
                    let name = format!("pub_{txn_ops}_{round}_{j}");
                    let obj = db.add_object(&name);
                    match j % 3 {
                        0 => db.assert_class(obj, &format!("K{}", j % classes)),
                        1 => {
                            let peer = db.add_object(&format!("{name}_peer"));
                            db.assert_attr(obj, "link", peer);
                        }
                        _ => {}
                    }
                }
            });
            assert!(
                writer.database().data_version() >= before + txn_ops as u64,
                "publish-cost transaction must be effective"
            );
            let start = Instant::now();
            writer.publish_snapshot();
            best = best.min(start.elapsed().as_nanos());
        }
        best
    }
}

/// The E12 physical-layer arms: compressed-bitmap intersection throughput
/// against the ordered-set baseline, scatter-gather evaluation speedup
/// versus shard count, cost-model plan quality against the enumerated
/// alternatives, and plan+execute latency on a large store.
pub mod e12 {
    use std::collections::BTreeSet;
    use std::hint::black_box;
    use std::time::Instant;
    use subq::dl::QueryClassDecl;
    use subq::oodb::eval::{evaluate_query_set, set_eval_workers};
    use subq::oodb::{CostModel, Database, ObjId, ObjSet, OptimizedDatabase, Statistics};
    use subq::workload::{
        churn_trace, hierarchical_catalog, ChurnParams, FamilyShape, HierarchyParams,
    };

    /// SplitMix64 — a tiny seeded generator so the arm needs no RNG crate.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Samples ids from `0..universe`, each kept with probability
    /// `target/universe` (deterministic per seed, ≈`target` ids).
    fn sample_ids(seed: u64, universe: u32, target: usize) -> Vec<u32> {
        let mut state = seed;
        let threshold = ((target as u128) << 64) / universe as u128;
        (0..universe)
            .filter(|_| (splitmix(&mut state) as u128) < threshold)
            .collect()
    }

    /// Best per-op wall-clock of `op` (self-calibrating iteration count,
    /// best of 5 rounds).
    fn best_op_ns(mut op: impl FnMut() -> usize) -> u128 {
        let start = Instant::now();
        let mut sink = op();
        let once = start.elapsed().as_nanos().max(1);
        let iters = (5_000_000 / once).clamp(1, 10_000) as u32;
        let mut best = u128::MAX;
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..iters {
                sink = sink.wrapping_add(op());
            }
            best = best.min(start.elapsed().as_nanos() / iters as u128);
        }
        black_box(sink);
        best.max(1)
    }

    /// One intersection-throughput arm: two ≈100k-id sets at the given
    /// density, intersected as compressed bitmaps versus ordered sets.
    pub struct IntersectRow {
        /// Occupancy of the id universe, percent.
        pub density_percent: u32,
        /// Universe size the ids are drawn from.
        pub universe: u32,
        /// Ids in each operand (≈100k).
        pub n: usize,
        /// Cardinality of the intersection (identical for both engines).
        pub intersection: usize,
        /// Best per-intersection wall-clock, compressed bitmap.
        pub bitmap_ns: u128,
        /// Best per-intersection wall-clock, `BTreeSet` baseline.
        pub btree_ns: u128,
        /// `btree_ns / bitmap_ns`.
        pub speedup: f64,
    }

    /// Runs the intersection arm at `density_percent` occupancy with
    /// n≈100k operands. The E12 acceptance gate is ≥5× at the dense end.
    pub fn intersect_arm(density_percent: u32) -> IntersectRow {
        let n = 100_000usize;
        let universe = (n as u64 * 100 / density_percent as u64).max(n as u64) as u32;
        let a_ids = sample_ids(7 + density_percent as u64, universe, n);
        let b_ids = sample_ids(1_007 + density_percent as u64, universe, n);
        let a_bm: ObjSet = a_ids.iter().map(|&i| ObjId(i)).collect();
        let b_bm: ObjSet = b_ids.iter().map(|&i| ObjId(i)).collect();
        let a_bt: BTreeSet<ObjId> = a_ids.iter().map(|&i| ObjId(i)).collect();
        let b_bt: BTreeSet<ObjId> = b_ids.iter().map(|&i| ObjId(i)).collect();
        let intersection = a_bm.intersect_len(&b_bm);
        assert_eq!(
            intersection,
            a_bt.intersection(&b_bt).count(),
            "bitmap and ordered-set intersections must agree"
        );
        let bitmap_ns = best_op_ns(|| a_bm.intersect_len(&b_bm));
        let btree_ns = best_op_ns(|| a_bt.intersection(&b_bt).count());
        IntersectRow {
            density_percent,
            universe,
            n: a_ids.len().min(b_ids.len()),
            intersection,
            bitmap_ns,
            btree_ns,
            speedup: btree_ns as f64 / bitmap_ns as f64,
        }
    }

    /// Builds the scatter-gather instance: `objects` objects over four
    /// classes, every view strengthened with a derived `link` path, and
    /// the first view's definition as the measured query (its candidate
    /// set is a quarter of the store, its membership check walks paths).
    pub fn scatter_setup(objects: usize) -> (Database, QueryClassDecl) {
        let params = ChurnParams {
            shape: FamilyShape::Tree,
            classes: 4,
            views: 4,
            path_view_percent: 100,
            objects,
            transactions: 0,
            ops_per_transaction: 1,
            retract_percent: 40,
        };
        let trace = churn_trace(19, params);
        let query = trace
            .db
            .model()
            .query_class("V0")
            .expect("generated view")
            .clone();
        (trace.db, query)
    }

    /// One scatter-gather arm: full evaluation with the worker count
    /// forced to `workers` (1 = sequential baseline), best of 3.
    pub struct ScatterRow {
        /// Worker threads (= id-range shards) forced for this arm.
        pub workers: usize,
        /// Best full-evaluation wall-clock.
        pub elapsed_ns: u128,
        /// Answer count — must be identical across shard counts.
        pub answers: usize,
    }

    /// Measures one scatter-gather arm and restores the worker default.
    pub fn scatter_arm(db: &Database, query: &QueryClassDecl, workers: usize) -> ScatterRow {
        set_eval_workers(Some(workers));
        let mut best = u128::MAX;
        let mut answers = 0usize;
        for _ in 0..3 {
            let start = Instant::now();
            let result = evaluate_query_set(db, query, None);
            best = best.min(start.elapsed().as_nanos());
            answers = result.len();
        }
        set_eval_workers(None);
        ScatterRow {
            workers,
            elapsed_ns: best,
            answers,
        }
    }

    /// One plan-quality arm: how close the cost-based view choice lands
    /// to the best enumerable choice, per E9 catalog shape. Candidate
    /// counts are deterministic, so these are hard CI numbers.
    pub struct PlanRow {
        /// Catalog shape name.
        pub shape: &'static str,
        /// Views in the catalog.
        pub views: usize,
        /// Queries that had at least one subsuming view.
        pub queries: usize,
        /// Worst `chosen / best` candidates-examined ratio over those
        /// queries (1.0 = the planner always picked the cheapest member).
        pub worst_ratio: f64,
        /// Queries where the cost-based choice examined *more* candidates
        /// than the smallest-extension heuristic would have (must be 0).
        pub worse_than_smallest: usize,
        /// Total candidates the chosen plans examined.
        pub chosen_candidates: usize,
        /// Total candidates the per-query best enumerated plans examine.
        pub best_candidates: usize,
    }

    /// Runs the plan-quality arm on the same seeded catalogs as E9
    /// (seed 11, 2 members per class, 8 queries, no intersections).
    pub fn plan_quality_arm(shape: FamilyShape, views: usize) -> PlanRow {
        let params = HierarchyParams {
            shape,
            views,
            members_per_class: 2,
            queries: 8,
            intersect_percent: 0,
            duplicate_percent: 0,
        };
        let instance = hierarchical_catalog(11, params);
        let mut odb = OptimizedDatabase::new(instance.db.clone()).expect("translates");
        for name in &instance.view_names {
            odb.materialize_view(name).expect("materializes");
        }
        let stats = Statistics::collect(odb.database());
        let mut worst_ratio = 1.0f64;
        let mut worse_than_smallest = 0usize;
        let mut chosen_candidates = 0usize;
        let mut best_candidates = 0usize;
        let mut queries = 0usize;
        for query in &instance.queries {
            let plan = odb.plan(query);
            if plan.subsuming_views.is_empty() {
                continue;
            }
            let (_, exec) = odb.execute(query);
            let cost = CostModel::new(&stats, odb.database());
            let mut best = usize::MAX;
            let mut smallest_extent = usize::MAX;
            let mut smallest_realized = 0usize;
            for name in &plan.subsuming_views {
                let view = odb.catalog().view(name).expect("stored");
                let realized = cost.narrow_candidates(&view.extent, query).len();
                best = best.min(realized);
                if view.extent.len() < smallest_extent {
                    smallest_extent = view.extent.len();
                    smallest_realized = realized;
                }
            }
            let chosen = exec.candidates_examined;
            if chosen > smallest_realized {
                worse_than_smallest += 1;
            }
            worst_ratio = worst_ratio.max(if best == 0 {
                1.0
            } else {
                chosen as f64 / best as f64
            });
            chosen_candidates += chosen;
            best_candidates += best;
            queries += 1;
        }
        PlanRow {
            shape: shape.name(),
            views,
            queries,
            worst_ratio,
            worse_than_smallest,
            chosen_candidates,
            best_candidates,
        }
    }

    /// One large-store latency arm: p50/p99 of plan+execute over the view
    /// queries of an `objects`-object store — 256 flat classes (so each
    /// extent holds ≈`objects/256` ids and the sampled latencies measure
    /// selective plan+execute, not bulk answer materialization), 64
    /// views, 20% of them with a derived `link` path.
    pub struct LatencyRow {
        /// Objects in the store.
        pub objects: usize,
        /// Views materialized (one per class, wrapping).
        pub views: usize,
        /// Plan+execute operations sampled.
        pub ops: usize,
        /// Median latency.
        pub p50_ns: u64,
        /// 99th-percentile latency — the E12 bound is sub-ms on ≥4-core
        /// hardware, relaxed core-proportionally below that.
        pub p99_ns: u64,
    }

    /// Builds the latency store once, warms every query shape, then
    /// samples `ops` plan+execute round trips.
    pub fn latency_arm(objects: usize, ops: usize) -> LatencyRow {
        let params = ChurnParams {
            shape: FamilyShape::Flat,
            classes: 256,
            views: 64,
            path_view_percent: 20,
            objects,
            transactions: 0,
            ops_per_transaction: 1,
            retract_percent: 40,
        };
        let trace = churn_trace(23, params);
        let mut odb = OptimizedDatabase::new(trace.db).expect("translates");
        for name in &trace.view_names {
            odb.materialize_view(name).expect("materializes");
        }
        let queries: Vec<QueryClassDecl> = trace
            .view_names
            .iter()
            .map(|name| {
                odb.database()
                    .model()
                    .query_class(name)
                    .expect("declared")
                    .clone()
            })
            .collect();
        // Warm the subsumption memo and the statistics catalog so the
        // sampled latencies measure the steady state, not first-touch.
        for query in &queries {
            let _ = odb.plan(query);
            let _ = odb.execute(query);
        }
        let mut lats: Vec<u64> = Vec::with_capacity(ops);
        for at in 0..ops {
            let query = &queries[at % queries.len()];
            let start = Instant::now();
            let plan = odb.plan(query);
            let (answers, _) = odb.execute(query);
            lats.push(start.elapsed().as_nanos() as u64);
            black_box((plan.subsuming_views.len(), answers.len()));
        }
        lats.sort_unstable();
        let pick = |q: f64| -> u64 { lats[((lats.len() - 1) as f64 * q) as usize] };
        LatencyRow {
            objects,
            views: 64,
            ops,
            p50_ns: pick(0.50),
            p99_ns: pick(0.99),
        }
    }
}

pub mod e8 {
    //! The E8 repeat-plan arm, shared between the table binary's numbers
    //! and the perf-smoke instrumentation-overhead gate: a warm optimizer
    //! over the hospital store with the full ten-view catalog, planning
    //! the same query until every probe answers from the verdict cache.

    use std::time::Instant;
    use subq::dl::{samples, QueryClassDecl};
    use subq::oodb::OptimizedDatabase;
    use subq::workload::{synthetic_hospital, HospitalParams};

    /// The catalog of the E8 table's section 2 (every schema class
    /// doubles as a trivial view, after the one structural view).
    pub const VIEW_NAMES: [&str; 10] = [
        "ViewPatient",
        "Person",
        "Patient",
        "Doctor",
        "Disease",
        "Drug",
        "String",
        "Topic",
        "Male",
        "Female",
    ];

    /// A warm optimizer (the first plan already taken, so repeats are
    /// fully memoized) plus the query it plans.
    pub fn repeat_plan_setup() -> (OptimizedDatabase, QueryClassDecl) {
        let params = HospitalParams {
            patients: 2_000,
            doctors: 50,
            diseases: 20,
            view_match_percent: 15,
            query_match_percent: 40,
        };
        let query = samples::medical_model()
            .query_class("QueryPatient")
            .expect("declared")
            .clone();
        let mut odb = OptimizedDatabase::new(synthetic_hospital(7, params)).expect("translates");
        for view in VIEW_NAMES {
            odb.materialize_view(view).expect("materializes");
        }
        odb.plan(&query);
        (odb, query)
    }

    /// Wall-clock nanoseconds per memoized repeat plan on the warm
    /// optimizer, averaged over `repeats` plans.
    pub fn repeat_plan_ns(
        odb: &mut OptimizedDatabase,
        query: &QueryClassDecl,
        repeats: u32,
    ) -> u64 {
        let start = Instant::now();
        for _ in 0..repeats {
            odb.plan(query);
        }
        (start.elapsed().as_nanos() as u64 / repeats as u64).max(1)
    }
}

/// E13: the durable storage engine — write-ahead logging with group
/// commit, checkpoint images, and crash recovery (see
/// `e13_durability_table.rs` for the arms and `tests/crash_recovery.rs`
/// for the correctness side).
pub mod e13 {
    use std::path::PathBuf;
    use std::sync::Arc;
    use std::time::Instant;
    use subq::dl::{AttrDecl, ClassDecl, DlModel};
    use subq::oodb::durable::codec::{encode_record, WalRecord};
    use subq::oodb::maintain::Delta;
    use subq::oodb::{
        Database, DurableOptions, FileBackend, ObjId, OptimizedDatabase, StorageBackend,
    };

    /// A fresh scratch directory for one arm (the arm removes it).
    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("subq_e13_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("creating the scratch directory");
        dir
    }

    /// The durable-bench schema: eight classes and a `link` attribute.
    fn bench_model() -> DlModel {
        let mut model = DlModel::new();
        for i in 0..8 {
            model.classes.push(ClassDecl {
                name: format!("K{i}"),
                is_a: vec![],
                attributes: vec![],
                constraint: None,
            });
        }
        model.attributes.push(AttrDecl {
            name: "link".into(),
            domain: "Object".into(),
            range: "Object".into(),
            inverse: None,
        });
        model
    }

    /// One row of the WAL-latency arm: the *durability portion* of a
    /// commit — encode, append, and the (possibly amortized) fsync —
    /// driven directly against the real [`FileBackend`]. The full commit
    /// also pays the in-memory update and snapshot publication, which is
    /// identical at every batch size; isolating the log write is what
    /// makes the fsync amortization visible on any store.
    pub struct WalLatencyRow {
        /// Records per fsync.
        pub batch: usize,
        /// Transactions appended.
        pub txns: usize,
        /// Encoded bytes of the representative record.
        pub record_bytes: usize,
        /// Wall-clock per transaction, append + amortized fsync.
        pub per_txn_ns: u128,
        /// Fsyncs actually issued.
        pub fsyncs: u64,
    }

    /// Appends `txns` representative 4-delta records through the file
    /// backend, fsyncing every `batch` records.
    pub fn wal_latency_arm(batch: usize, txns: usize) -> WalLatencyRow {
        let dir = scratch_dir(&format!("wal{batch}"));
        let backend = FileBackend::new(&dir).expect("backend");
        let record = WalRecord {
            start_version: 0,
            deltas: (0..4u32)
                .map(|i| {
                    (
                        Delta::AddObject { object: ObjId(i) },
                        Some(format!("object{i}")),
                    )
                })
                .collect(),
        };
        let mut bytes = Vec::new();
        encode_record(&record, &mut bytes);
        for _ in 0..4 {
            backend.append("wal.log", &bytes).expect("warmup append");
            backend.sync("wal.log").expect("warmup sync");
        }
        let mut fsyncs = 0u64;
        let mut pending = 0usize;
        let start = Instant::now();
        for _ in 0..txns {
            backend.append("wal.log", &bytes).expect("append");
            pending += 1;
            if pending >= batch {
                backend.sync("wal.log").expect("sync");
                fsyncs += 1;
                pending = 0;
            }
        }
        if pending > 0 {
            backend.sync("wal.log").expect("sync");
            fsyncs += 1;
        }
        let per_txn_ns = (start.elapsed().as_nanos() / txns as u128).max(1);
        drop(backend);
        let _ = std::fs::remove_dir_all(&dir);
        WalLatencyRow {
            batch,
            txns,
            record_bytes: bytes.len(),
            per_txn_ns,
            fsyncs,
        }
    }

    /// One row of the end-to-end commit arm: `commit_durable` through
    /// the whole engine (update, WAL, snapshot publication) on the file
    /// backend. Context for the WAL arm — the durability saving is the
    /// same, the in-memory work dilutes the ratio.
    pub struct CommitLatencyRow {
        /// Records per fsync.
        pub batch: usize,
        /// Transactions committed.
        pub txns: usize,
        /// Wall-clock per `commit_durable` (two deltas each).
        pub per_commit_ns: u128,
        /// Fsyncs the engine issued.
        pub fsyncs: u64,
        /// Batches that covered more than one record.
        pub group_commits: u64,
    }

    /// Commits `txns` two-delta transactions at the given group-commit
    /// batch size.
    pub fn commit_latency_arm(batch: usize, txns: usize) -> CommitLatencyRow {
        let dir = scratch_dir(&format!("commit{batch}"));
        let backend: Arc<dyn StorageBackend> = Arc::new(FileBackend::new(&dir).expect("backend"));
        let mut odb = OptimizedDatabase::open(
            backend,
            DurableOptions {
                group_commit: batch,
            },
            || Database::new(bench_model()),
        )
        .expect("genesis open");
        let start = Instant::now();
        for t in 0..txns {
            odb.commit_durable(|db| {
                let obj = db.add_object(&format!("c{t}"));
                db.assert_class(obj, &format!("K{}", t % 8));
            })
            .expect("commit");
        }
        odb.sync_durable().expect("final sync");
        let per_commit_ns = (start.elapsed().as_nanos() / txns as u128).max(1);
        let stats = odb.durability_stats().expect("opened durably");
        drop(odb);
        let _ = std::fs::remove_dir_all(&dir);
        CommitLatencyRow {
            batch,
            txns,
            per_commit_ns,
            fsyncs: stats.fsyncs,
            group_commits: stats.group_commits,
        }
    }

    /// One row of the recovery arm: wall-clock of `open()` against a
    /// disk state holding `log_entries` committed deltas — either all of
    /// them in the WAL (`full_log`) or all but a short suffix absorbed
    /// into a checkpoint image (`image_suffix`).
    pub struct RecoveryRow {
        /// `"full_log"` or `"image_suffix"`.
        pub mode: &'static str,
        /// Deltas committed after the genesis image.
        pub log_entries: u64,
        /// WAL records recovery replayed.
        pub replayed_records: u64,
        /// Wall-clock of `open()` (image load + WAL replay + classify).
        pub recovery_ns: u128,
    }

    /// Builds a `txns`-transaction committed history of `2 ×
    /// edges_per_txn` deltas each over a fixed `objects`-object store —
    /// every transaction asserts `edges_per_txn` fresh `link` edges and
    /// retracts the batch asserted sixteen transactions earlier, so the
    /// log is long while the store (and hence the fixed image-load cost)
    /// stays small, the regime the checkpoint exists for. Optionally
    /// checkpoints so only the last `tail_txns` transactions stay in the
    /// WAL, then times a cold `open()`.
    pub fn recovery_arm(
        objects: usize,
        edges_per_txn: usize,
        txns: usize,
        tail_txns: Option<usize>,
    ) -> RecoveryRow {
        const WINDOW: usize = 16;
        let mode = if tail_txns.is_some() {
            "image_suffix"
        } else {
            "full_log"
        };
        let entries = (2 * edges_per_txn * txns) as u64;
        // Edge `k` is unique for every `k` this arm touches: the `to`
        // endpoint shifts by one per wrap of the `from` endpoint.
        let edge = |k: usize| (k % objects, (k + k / objects) % objects);
        let dir = scratch_dir(&format!("recover_{mode}_{entries}"));
        let backend: Arc<dyn StorageBackend> = Arc::new(FileBackend::new(&dir).expect("backend"));
        {
            let mut initial = Database::new(bench_model());
            let ids: Vec<_> = (0..objects)
                .map(|i| {
                    let obj = initial.add_object(&format!("o{i}"));
                    initial.assert_class(obj, &format!("K{}", i % 8));
                    obj
                })
                .collect();
            // Pre-assert the first WINDOW batches so every transaction
            // retracts a full batch.
            for k in 0..WINDOW * edges_per_txn {
                let (from, to) = edge(k);
                initial.assert_attr(ids[from], "link", ids[to]);
            }
            let mut odb = OptimizedDatabase::open(
                backend.clone(),
                DurableOptions { group_commit: 64 },
                || initial,
            )
            .expect("genesis open");
            let genesis_version = odb.database().data_version();
            for t in 0..txns {
                odb.commit_durable(|db| {
                    for i in 0..edges_per_txn {
                        let (from, to) = edge((WINDOW + t) * edges_per_txn + i);
                        db.assert_attr(ids[from], "link", ids[to]);
                        let (from, to) = edge(t * edges_per_txn + i);
                        db.retract_attr(ids[from], "link", ids[to]);
                    }
                })
                .expect("commit");
                if tail_txns == Some(txns - t - 1) {
                    odb.checkpoint().expect("checkpoint");
                }
            }
            odb.sync_durable().expect("final sync");
            assert_eq!(
                odb.database().data_version(),
                genesis_version + entries,
                "every assert and retract must be a real delta"
            );
        }
        let start = Instant::now();
        let odb = OptimizedDatabase::open(backend, DurableOptions::default(), || {
            panic!("a committed store must recover, not re-seed")
        })
        .expect("recovers");
        let recovery_ns = start.elapsed().as_nanos().max(1);
        assert_eq!(odb.database().object_count(), objects);
        assert_eq!(
            odb.database().attr_pairs("link").len(),
            WINDOW * edges_per_txn,
            "the sliding edge window must survive recovery"
        );
        let stats = odb.durability_stats().expect("opened durably");
        drop(odb);
        let _ = std::fs::remove_dir_all(&dir);
        RecoveryRow {
            mode,
            log_entries: entries,
            replayed_records: stats.recovered_records,
            recovery_ns,
        }
    }

    /// One row of the checkpoint-size arm: the on-disk image of an
    /// `objects`-object store (eight class extents, one `link` edge per
    /// four objects).
    pub struct CheckpointSizeRow {
        /// Objects in the store.
        pub objects: usize,
        /// `link` edges in the store.
        pub edges: usize,
        /// Bytes of the checkpoint image.
        pub image_bytes: u64,
        /// `image_bytes / objects`.
        pub bytes_per_object: f64,
        /// Wall-clock of writing the image (checkpoint call).
        pub checkpoint_ns: u128,
    }

    /// Builds the store in memory, opens it durably (genesis), and
    /// times one explicit checkpoint.
    pub fn checkpoint_size_arm(objects: usize) -> CheckpointSizeRow {
        let dir = scratch_dir(&format!("ckpt{objects}"));
        let mut db = Database::new(bench_model());
        for i in 0..objects {
            let obj = db.add_object(&format!("o{i}"));
            db.assert_class(obj, &format!("K{}", i % 8));
        }
        let mut edges = 0usize;
        for i in (0..objects).step_by(4) {
            let from = db.object(&format!("o{i}")).expect("created above");
            let to = db.object(&format!("o{}", i / 2)).expect("created above");
            db.assert_attr(from, "link", to);
            edges += 1;
        }
        let backend: Arc<dyn StorageBackend> = Arc::new(FileBackend::new(&dir).expect("backend"));
        let mut odb = OptimizedDatabase::open(backend.clone(), DurableOptions::default(), || db)
            .expect("genesis open");
        let start = Instant::now();
        odb.checkpoint().expect("checkpoint");
        let checkpoint_ns = start.elapsed().as_nanos().max(1);
        let image = backend
            .list()
            .expect("list")
            .into_iter()
            .find(|name| name.ends_with(".img"))
            .expect("an image exists");
        let image_bytes = backend.read(&image).expect("read").expect("exists").len() as u64;
        drop(odb);
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointSizeRow {
            objects,
            edges,
            image_bytes,
            bytes_per_object: image_bytes as f64 / objects as f64,
            checkpoint_ns,
        }
    }
}

/// E14: the `subqd` server — mixed churn+query traffic from a fleet of
/// loopback TCP clients through the load generator (see
/// `e14_server_table.rs` for the arms and the `tests/server_*.rs` suites
/// for the correctness side).
pub mod e14 {
    use std::sync::Arc;
    use subq::oodb::{
        AdvisorConfig, AdvisorMode, DurableOptions, FaultyBackend, OptimizedDatabase,
    };
    use subq::server::{percentile, run_mixed_load, LoadParams, Server, ServerConfig};
    use subq::workload::traffic::TrafficParams;
    use subq::workload::{churn_trace, ChurnParams, ChurnTrace};

    /// One mixed-traffic run: a fleet of clients, per-op-class latency.
    pub struct MixedRow {
        pub clients: usize,
        pub queue: usize,
        /// Acknowledged operations (queries + commits); retried `BUSY`
        /// rounds are counted separately.
        pub ops: usize,
        pub queries: usize,
        pub txns: usize,
        pub busy: usize,
        /// `BUSY` replies split by the op class that drew them.
        pub query_busy: usize,
        pub txn_busy: usize,
        pub errors: usize,
        /// Typed `ERR` replies split by the op class that drew them.
        pub query_errors: usize,
        pub txn_errors: usize,
        pub elapsed_ns: u128,
        pub ops_per_sec: f64,
        pub query_p50_ns: u64,
        pub query_p99_ns: u64,
        pub txn_p50_ns: u64,
        pub txn_p99_ns: u64,
    }

    /// The E14 trace: the standard churn schema with enough objects for
    /// non-trivial answers and enough transactions that a fleet's
    /// round-robin shares stay disjoint.
    fn trace() -> ChurnTrace {
        churn_trace(
            0xE14,
            ChurnParams {
                objects: 120,
                transactions: 64,
                ..ChurnParams::default()
            },
        )
    }

    /// Runs `clients` threads of mixed traffic (each `ops` operations,
    /// `query_percent`% queries) against a freshly served durable store
    /// (in-memory backend: the WAL encode + group-commit batching is
    /// real, the fsync is free, so rows measure the server, not a disk).
    pub fn mixed_arm(clients: usize, queue: usize, query_percent: u8, ops: usize) -> MixedRow {
        mixed_arm_advisor(clients, queue, query_percent, ops, AdvisorMode::Off)
    }

    /// Like [`mixed_arm`] but with the advisor in the given mode — the
    /// `observe`-overhead gate compares `Off` against `Observe` on the
    /// otherwise identical stationary mix.
    pub fn mixed_arm_advisor(
        clients: usize,
        queue: usize,
        query_percent: u8,
        ops: usize,
        mode: AdvisorMode,
    ) -> MixedRow {
        let trace = trace();
        let backend = Arc::new(FaultyBackend::new());
        let mut odb = OptimizedDatabase::open(backend, DurableOptions { group_commit: 64 }, || {
            trace.db.clone()
        })
        .expect("genesis open");
        for name in &trace.view_names {
            odb.materialize_view(name).expect("materializes");
        }
        odb.checkpoint().expect("checkpoint after materialization");
        let server = Server::start(
            odb,
            ServerConfig {
                write_queue: queue,
                advisor: AdvisorConfig {
                    mode,
                    ..AdvisorConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("binds loopback");
        let report = run_mixed_load(
            server.addr(),
            &trace,
            LoadParams {
                clients,
                traffic: TrafficParams { query_percent, ops },
                ..LoadParams::default()
            },
        )
        .expect("load run");
        server.shutdown();
        let elapsed_ns = report.elapsed.as_nanos().max(1);
        MixedRow {
            clients,
            queue,
            ops: report.ops,
            queries: report.queries,
            txns: report.txns,
            busy: report.busy,
            query_busy: report.query_busy,
            txn_busy: report.txn_busy,
            errors: report.errors,
            query_errors: report.query_errors,
            txn_errors: report.txn_errors,
            elapsed_ns,
            ops_per_sec: report.ops as f64 / (elapsed_ns as f64 / 1e9),
            query_p50_ns: percentile(&report.query_ns, 50.0),
            query_p99_ns: percentile(&report.query_ns, 99.0),
            txn_p50_ns: percentile(&report.txn_ns, 50.0),
            txn_p99_ns: percentile(&report.txn_ns, 99.0),
        }
    }
}

/// E15: the workload-adaptive view advisor under an adversarial
/// phase-shifting mix — a hand-tuned static catalog (every view
/// materialized up front, advisor off) versus a cold store that starts
/// with **zero** materialized views and `--advisor auto` (see
/// `e15_advisor_table.rs` for the arms and `tests/advisor_*.rs` for the
/// correctness side).
pub mod e15 {
    use std::sync::Arc;
    use std::time::Duration;
    use subq::oodb::{
        AdvisorConfig, AdvisorMode, DurableOptions, FaultyBackend, OptimizedDatabase,
    };
    use subq::server::{percentile, run_mixed_load, LoadParams, Server, ServerConfig};
    use subq::workload::traffic::{ShiftParams, TrafficParams};
    use subq::workload::{churn_trace, ChurnParams, ChurnTrace};

    /// One arm of the advisor experiment.
    pub struct AdvisorRow {
        pub arm: &'static str,
        pub clients: usize,
        pub ops: usize,
        pub queries: usize,
        pub txns: usize,
        pub errors: usize,
        /// Views materialized by hand before the run (the DDL budget the
        /// auto arm must win without).
        pub manual_ddl: usize,
        /// Advisor lifecycle activity during the run, from the process
        /// counters (`subq_advisor_*_total` deltas).
        pub auto_materialized: u64,
        pub auto_evicted: u64,
        pub rejected_subsumed: u64,
        pub elapsed_ns: u128,
        pub ops_per_sec: f64,
        pub query_p50_ns: u64,
        pub query_p99_ns: u64,
    }

    /// The E15 trace: a wider catalog (12 views over 8 classes) than E14
    /// so the shifting hot window has somewhere to move, and enough
    /// transactions to keep maintenance pressure on materialized views.
    fn trace() -> ChurnTrace {
        churn_trace(
            0xE15,
            ChurnParams {
                classes: 8,
                views: 12,
                objects: 240,
                transactions: 96,
                ..ChurnParams::default()
            },
        )
    }

    /// The adversarial schedule: the hot window (3 of 12 views) rotates
    /// every 120 ops per client, so a static guess about "the hot views"
    /// goes stale mid-run.
    pub fn shift() -> ShiftParams {
        ShiftParams {
            phase_ops: 120,
            views_per_phase: 3,
        }
    }

    /// Runs one arm of the shifting workload. `hand_tuned` materializes
    /// the full catalog up front (and counts it as `manual_ddl`); the
    /// auto arm starts with zero materialized views and must earn its
    /// catalog from the advisor alone.
    pub fn advisor_arm(
        arm: &'static str,
        mode: AdvisorMode,
        hand_tuned: bool,
        clients: usize,
        ops: usize,
    ) -> AdvisorRow {
        let trace = trace();
        let backend = Arc::new(FaultyBackend::new());
        let mut odb = OptimizedDatabase::open(backend, DurableOptions { group_commit: 64 }, || {
            trace.db.clone()
        })
        .expect("genesis open");
        let mut manual_ddl = 0usize;
        if hand_tuned {
            for name in &trace.view_names {
                odb.materialize_view(name).expect("materializes");
                manual_ddl += 1;
            }
            odb.checkpoint().expect("checkpoint after materialization");
        }
        let materialized_before = subq::telemetry::counter("subq_advisor_materialized_total").get();
        let evicted_before = subq::telemetry::counter("subq_advisor_evicted_total").get();
        let rejected_before =
            subq::telemetry::counter("subq_advisor_rejected_subsumed_total").get();
        let server = Server::start(
            odb,
            ServerConfig {
                write_queue: 64,
                advisor: AdvisorConfig {
                    mode,
                    ..AdvisorConfig::default()
                },
                // Frequent passes: the run is short, the advisor must
                // react within a phase, not once per wall-clock second.
                advisor_interval: Duration::from_millis(10),
                ..ServerConfig::default()
            },
        )
        .expect("binds loopback");
        let report = run_mixed_load(
            server.addr(),
            &trace,
            LoadParams {
                clients,
                seed: 0xE15,
                traffic: TrafficParams {
                    query_percent: 85,
                    ops,
                },
                shift: Some(shift()),
                ..LoadParams::default()
            },
        )
        .expect("load run");
        server.shutdown();
        let elapsed_ns = report.elapsed.as_nanos().max(1);
        AdvisorRow {
            arm,
            clients,
            ops: report.ops,
            queries: report.queries,
            txns: report.txns,
            errors: report.errors,
            manual_ddl,
            auto_materialized: subq::telemetry::counter("subq_advisor_materialized_total").get()
                - materialized_before,
            auto_evicted: subq::telemetry::counter("subq_advisor_evicted_total").get()
                - evicted_before,
            rejected_subsumed: subq::telemetry::counter("subq_advisor_rejected_subsumed_total")
                .get()
                - rejected_before,
            elapsed_ns,
            ops_per_sec: report.ops as f64 / (elapsed_ns as f64 / 1e9),
            query_p50_ns: percentile(&report.query_ns, 50.0),
            query_p99_ns: percentile(&report.query_ns, 99.0),
        }
    }
}

/// Times `work` on fresh instances from `make` until ~50 ms of measurement
/// (at least 3 runs) and returns the best per-run time.
pub fn time_best<T>(mut make: impl FnMut() -> T, mut work: impl FnMut(T)) -> Duration {
    let mut best = Duration::MAX;
    let mut spent = Duration::ZERO;
    let mut runs = 0u32;
    while runs < 3 || (spent < Duration::from_millis(50) && runs < 1000) {
        let input = make();
        let start = Instant::now();
        work(input);
        let elapsed = start.elapsed();
        best = best.min(elapsed);
        spent += elapsed;
        runs += 1;
    }
    best
}

/// Formats one row of a markdown-style table.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// A machine-readable benchmark row: `(key, value)` pairs serialized as
/// one flat JSON object. Values are emitted verbatim, so pass numbers as
/// numbers (`"3"`) and strings pre-quoted (`"\"path_depth\""`).
pub fn json_object(fields: &[(&str, String)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(key, value)| format!("\"{key}\": {value}"))
        .collect();
    format!("{{{}}}", body.join(", "))
}

/// Quotes a string for use as a [`json_object`] value.
pub fn json_str(value: &str) -> String {
    format!("\"{}\"", value.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Writes rows as a JSON array to `path` (one `BENCH_*.json` per table
/// binary).
pub fn write_json_rows(path: &str, rows: &[String]) {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(row);
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    if let Err(error) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {error}");
    } else {
        eprintln!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq::workload::scaling::path_depth_instance;

    #[test]
    fn run_instance_reports_subsumption_and_stats() {
        let mut instance = path_depth_instance(3);
        let (subsumed, stats) = run_instance(&mut instance);
        assert!(subsumed);
        assert!(stats.rule_applications > 0);
    }

    #[test]
    fn reference_instance_agrees_with_delta() {
        let mut delta = path_depth_instance(4);
        let mut naive = path_depth_instance(4);
        let (a, delta_stats) = run_instance(&mut delta);
        let (b, ref_stats) = run_reference_instance(&mut naive);
        assert_eq!(a, b);
        assert_eq!(delta_stats.outcome_only(), ref_stats.outcome_only());
        assert!(ref_stats.constraints_examined >= delta_stats.constraints_examined);
    }

    #[test]
    fn row_formats_markdown() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }

    #[test]
    fn json_rows_are_well_formed() {
        let row = json_object(&[("family", json_str("path_depth")), ("n", "4".into())]);
        assert_eq!(row, "{\"family\": \"path_depth\", \"n\": 4}");
    }
}
