//! E14: the `subqd` server under mixed churn+query load over loopback
//! TCP — throughput and latency per op class, queue depth vs latency,
//! and saturation behavior.
//!
//! Three arms, all through the real wire path (frames, sessions, the
//! single-writer command queue, group commit into an in-memory durable
//! backend):
//!
//! 1. **Throughput vs fleet size** — 1/2/4/8 clients of 70%-query mixed
//!    traffic. Queries scale across the worker pool's lock-free readers;
//!    transactions serialize on the writer but amortize its fsync. The
//!    acceptance gate (core-clamped, like E11/E12) is on the 4-client
//!    aggregate speedup over 1 client.
//! 2. **Queue depth vs latency** — 4 clients of write-heavy traffic
//!    against write queues of 1/4/16/64: deeper queues trade `BUSY`
//!    shedding for queueing delay in the transaction p99.
//! 3. **Saturation** — 8 clients of 90%-write traffic against a queue of
//!    1: admission control must shed load as typed `BUSY` replies (the
//!    gate requires some) while every acknowledged op still succeeds
//!    (zero typed errors).
//!
//! Wall-clock columns are machine-bound; rows land in `BENCH_e14.json`
//! so `perf_smoke` can gate the ratios on the committed table and
//! re-check the anti-collapse floor live.

use subq_bench::e14::mixed_arm;
use subq_bench::{json_object, json_str, row, write_json_rows};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json_rows = Vec::new();

    // Arm 1: aggregate throughput and per-op-class latency vs fleet size.
    println!("E14a: mixed traffic (70% query) vs fleet size ({cores} cores)");
    println!();
    let headers = [
        "clients",
        "ops",
        "ops/s",
        "query p50 ns",
        "query p99 ns",
        "txn p50 ns",
        "txn p99 ns",
        "busy",
        "vs 1 client",
    ];
    println!("{}", row(&headers.map(String::from)));
    println!("{}", row(&headers.map(|_| "---".into())));
    let mut one_client_rate = 0.0f64;
    for clients in [1usize, 2, 4, 8] {
        let r = mixed_arm(clients, 64, 70, 200);
        if clients == 1 {
            one_client_rate = r.ops_per_sec;
        }
        let speedup = r.ops_per_sec / one_client_rate;
        println!(
            "{}",
            row(&[
                clients.to_string(),
                r.ops.to_string(),
                format!("{:.0}", r.ops_per_sec),
                r.query_p50_ns.to_string(),
                r.query_p99_ns.to_string(),
                r.txn_p50_ns.to_string(),
                r.txn_p99_ns.to_string(),
                r.busy.to_string(),
                format!("{speedup:.2}×"),
            ])
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e14_server")),
            ("arm", json_str("mixed")),
            ("clients", clients.to_string()),
            ("cores", cores.to_string()),
            ("ops", r.ops.to_string()),
            ("queries", r.queries.to_string()),
            ("txns", r.txns.to_string()),
            ("busy", r.busy.to_string()),
            ("query_busy", r.query_busy.to_string()),
            ("txn_busy", r.txn_busy.to_string()),
            ("errors", r.errors.to_string()),
            ("query_errors", r.query_errors.to_string()),
            ("txn_errors", r.txn_errors.to_string()),
            ("ops_per_sec", format!("{:.1}", r.ops_per_sec)),
            ("query_p50_ns", r.query_p50_ns.to_string()),
            ("query_p99_ns", r.query_p99_ns.to_string()),
            ("txn_p50_ns", r.txn_p50_ns.to_string()),
            ("txn_p99_ns", r.txn_p99_ns.to_string()),
            ("speedup_vs_1", format!("{speedup:.2}")),
        ]));
    }

    // Arm 2: write-queue depth vs transaction latency and shedding.
    println!();
    println!("E14b: 4 clients of write-heavy traffic (40% query) vs queue depth");
    println!();
    let headers = ["queue", "ops", "ops/s", "txn p50 ns", "txn p99 ns", "busy"];
    println!("{}", row(&headers.map(String::from)));
    println!("{}", row(&headers.map(|_| "---".into())));
    for queue in [1usize, 4, 16, 64] {
        let r = mixed_arm(4, queue, 40, 200);
        println!(
            "{}",
            row(&[
                queue.to_string(),
                r.ops.to_string(),
                format!("{:.0}", r.ops_per_sec),
                r.txn_p50_ns.to_string(),
                r.txn_p99_ns.to_string(),
                r.busy.to_string(),
            ])
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e14_server")),
            ("arm", json_str("queue_depth")),
            ("queue", queue.to_string()),
            ("clients", "4".to_string()),
            ("cores", cores.to_string()),
            ("ops", r.ops.to_string()),
            ("busy", r.busy.to_string()),
            ("query_busy", r.query_busy.to_string()),
            ("txn_busy", r.txn_busy.to_string()),
            ("errors", r.errors.to_string()),
            ("query_errors", r.query_errors.to_string()),
            ("txn_errors", r.txn_errors.to_string()),
            ("ops_per_sec", format!("{:.1}", r.ops_per_sec)),
            ("txn_p50_ns", r.txn_p50_ns.to_string()),
            ("txn_p99_ns", r.txn_p99_ns.to_string()),
        ]));
    }

    // Arm 3: saturation — overload must shed as typed BUSY, never error.
    println!();
    println!("E14c: saturation — 8 clients, 90% writes, write queue of 1");
    println!();
    let r = mixed_arm(8, 1, 10, 150);
    let busy_per_op = r.busy as f64 / r.ops.max(1) as f64;
    println!(
        "ops={} busy={} ({busy_per_op:.2} BUSY/op) errors={} ops/s={:.0}",
        r.ops, r.busy, r.errors, r.ops_per_sec
    );
    json_rows.push(json_object(&[
        ("experiment", json_str("e14_server")),
        ("arm", json_str("saturation")),
        ("clients", "8".to_string()),
        ("queue", "1".to_string()),
        ("cores", cores.to_string()),
        ("ops", r.ops.to_string()),
        ("busy", r.busy.to_string()),
        ("query_busy", r.query_busy.to_string()),
        ("txn_busy", r.txn_busy.to_string()),
        ("errors", r.errors.to_string()),
        ("query_errors", r.query_errors.to_string()),
        ("txn_errors", r.txn_errors.to_string()),
        ("ops_per_sec", format!("{:.1}", r.ops_per_sec)),
        ("busy_per_op", format!("{busy_per_op:.3}")),
    ]));

    write_json_rows("BENCH_e14.json", &json_rows);
}
