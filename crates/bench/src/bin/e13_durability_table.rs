//! E13: the durable storage engine — write-ahead logging with group
//! commit, checkpoint images, and crash recovery.
//!
//! Four arms:
//!
//! 1. **WAL latency vs fsync batch** — the durability portion of a
//!    commit (encode + append + amortized fsync) driven directly against
//!    the real file backend at batch sizes 1/8/32. The acceptance gate
//!    is ≥5× per-transaction improvement at batch 32 over batch 1: the
//!    stable-storage barrier is the dominant cost, and group commit
//!    divides it by the batch size.
//! 2. **End-to-end commit latency** — `commit_durable` through the whole
//!    engine at the same batch sizes, for context (the in-memory update
//!    and snapshot publication dilute the visible ratio; the absolute
//!    saving per transaction is the same).
//! 3. **Recovery time vs log length** — cold `open()` against a
//!    64k-entry committed history, once with the whole history in the
//!    WAL and once with all but a 1k-entry suffix absorbed into a
//!    checkpoint image. The acceptance gate is ≥5×: recovery cost is
//!    proportional to the replayed suffix, not the store size.
//! 4. **Checkpoint size vs store size** — image bytes per object at
//!    10k/40k/100k objects (names, eight class extents as compressed
//!    bitmaps, one `link` edge per four objects).
//!
//! Wall-clock columns are machine- and filesystem-bound; rows land in
//! `BENCH_e13.json` so `perf_smoke` can gate the two ratios on the
//! committed table and re-check the CPU-bound recovery ratio live.

use subq_bench::e13::{checkpoint_size_arm, commit_latency_arm, recovery_arm, wal_latency_arm};
use subq_bench::{json_object, json_str, row, write_json_rows};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json_rows = Vec::new();

    // Arm 1: the WAL portion of commit latency versus fsync batch size.
    println!("E13a: WAL append+fsync per transaction vs group-commit batch ({cores} cores)");
    println!();
    let headers = [
        "batch",
        "txns",
        "record B",
        "per-txn ns",
        "fsyncs",
        "vs batch=1",
    ];
    println!("{}", row(&headers.map(String::from)));
    println!("{}", row(&headers.map(|_| "---".into())));
    let mut batch1_ns = 0u128;
    for batch in [1usize, 8, 32] {
        let r = wal_latency_arm(batch, 256);
        if batch == 1 {
            batch1_ns = r.per_txn_ns;
        }
        let speedup = batch1_ns as f64 / r.per_txn_ns as f64;
        println!(
            "{}",
            row(&[
                batch.to_string(),
                r.txns.to_string(),
                r.record_bytes.to_string(),
                r.per_txn_ns.to_string(),
                r.fsyncs.to_string(),
                format!("{speedup:.1}×"),
            ])
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e13_durability")),
            ("arm", json_str("wal_latency")),
            ("batch", batch.to_string()),
            ("txns", r.txns.to_string()),
            ("cores", cores.to_string()),
            ("record_bytes", r.record_bytes.to_string()),
            ("per_txn_ns", r.per_txn_ns.to_string()),
            ("fsyncs", r.fsyncs.to_string()),
            ("speedup_vs_1", format!("{speedup:.2}")),
        ]));
    }

    // Arm 2: end-to-end commit latency at the same batch sizes.
    println!();
    println!("E13b: end-to-end commit_durable per transaction vs batch (context)");
    println!();
    let headers = ["batch", "txns", "per-commit ns", "fsyncs", "group commits"];
    println!("{}", row(&headers.map(String::from)));
    println!("{}", row(&headers.map(|_| "---".into())));
    for batch in [1usize, 8, 32] {
        let r = commit_latency_arm(batch, 128);
        println!(
            "{}",
            row(&[
                batch.to_string(),
                r.txns.to_string(),
                r.per_commit_ns.to_string(),
                r.fsyncs.to_string(),
                r.group_commits.to_string(),
            ])
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e13_durability")),
            ("arm", json_str("commit_latency")),
            ("batch", batch.to_string()),
            ("txns", r.txns.to_string()),
            ("per_commit_ns", r.per_commit_ns.to_string()),
            ("fsyncs", r.fsyncs.to_string()),
            ("group_commits", r.group_commits.to_string()),
        ]));
    }

    // Arm 3: recovery time, full-log replay vs image + suffix.
    println!();
    println!("E13c: cold open() of a 64k-entry committed history");
    println!();
    let headers = [
        "mode",
        "log entries",
        "replayed records",
        "recovery ns",
        "speedup",
    ];
    println!("{}", row(&headers.map(String::from)));
    println!("{}", row(&headers.map(|_| "---".into())));
    // 512 txns × 64 edge toggles × 2 deltas = 65_536 entries over a
    // 4096-object store; the image run keeps an 8-txn (1024-entry)
    // suffix in the WAL.
    let full = recovery_arm(4096, 64, 512, None);
    let suffix = recovery_arm(4096, 64, 512, Some(8));
    let ratio = full.recovery_ns as f64 / suffix.recovery_ns as f64;
    for r in [&full, &suffix] {
        let speedup = full.recovery_ns as f64 / r.recovery_ns as f64;
        println!(
            "{}",
            row(&[
                r.mode.to_string(),
                r.log_entries.to_string(),
                r.replayed_records.to_string(),
                r.recovery_ns.to_string(),
                format!("{speedup:.1}×"),
            ])
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e13_durability")),
            ("arm", json_str("recovery")),
            ("mode", json_str(r.mode)),
            ("cores", cores.to_string()),
            ("log_entries", r.log_entries.to_string()),
            ("replayed_records", r.replayed_records.to_string()),
            ("recovery_ns", r.recovery_ns.to_string()),
            ("speedup_vs_full", format!("{speedup:.2}")),
        ]));
    }
    println!();
    println!("image+suffix recovery is {ratio:.1}× faster than full-log replay");

    // Arm 4: checkpoint image size versus store size.
    println!();
    println!("E13d: checkpoint image size vs store size");
    println!();
    let headers = [
        "objects",
        "edges",
        "image bytes",
        "B/object",
        "checkpoint ns",
    ];
    println!("{}", row(&headers.map(String::from)));
    println!("{}", row(&headers.map(|_| "---".into())));
    for objects in [10_000usize, 40_000, 100_000] {
        let r = checkpoint_size_arm(objects);
        println!(
            "{}",
            row(&[
                r.objects.to_string(),
                r.edges.to_string(),
                r.image_bytes.to_string(),
                format!("{:.1}", r.bytes_per_object),
                r.checkpoint_ns.to_string(),
            ])
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e13_durability")),
            ("arm", json_str("checkpoint_size")),
            ("objects", r.objects.to_string()),
            ("edges", r.edges.to_string()),
            ("image_bytes", r.image_bytes.to_string()),
            ("bytes_per_object", format!("{:.2}", r.bytes_per_object)),
            ("checkpoint_ns", r.checkpoint_ns.to_string()),
        ]));
    }

    write_json_rows("BENCH_e13.json", &json_rows);
}
