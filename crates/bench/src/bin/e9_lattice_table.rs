//! Prints the E9 table: flat-scan versus lattice-traversal planning over
//! hierarchical view catalogs — subsumption probes per query batch, views
//! pruned, lattice depth, and plan wall-clock — across catalog shapes and
//! sizes. Writes the rows to `BENCH_e9.json`; `perf_smoke` asserts the
//! committed probe ceilings do not regress.
//!
//! Probe counts are deterministic (seeded workloads, counter-based), so
//! they are the headline columns; wall-clock is best-of measurement for
//! orientation only.

use std::time::Instant;
use subq::oodb::OptimizedDatabase;
use subq::workload::{hierarchical_catalog, FamilyShape, HierarchyInstance, HierarchyParams};
use subq_bench::{json_object, json_str, write_json_rows};

const SEED: u64 = 11;
const SHAPES: [FamilyShape; 4] = [
    FamilyShape::Tree,
    FamilyShape::Chain,
    FamilyShape::Diamond,
    FamilyShape::Flat,
];

fn params(shape: FamilyShape, views: usize) -> HierarchyParams {
    HierarchyParams {
        shape,
        views,
        members_per_class: 2,
        queries: 8,
        intersect_percent: 0,
        duplicate_percent: 0,
    }
}

/// Builds the optimized database and materializes (and classifies) every
/// view of the instance. Returns it with the number of subsumption probes
/// classification performed.
fn build(instance: &HierarchyInstance) -> (OptimizedDatabase, usize) {
    let db = instance.db.clone();
    let mut odb = OptimizedDatabase::new(db).expect("translates");
    let (_, misses_before) = odb.subsumption_cache_stats();
    for name in &instance.view_names {
        odb.materialize_view(name).expect("materializes");
    }
    let (_, misses_after) = odb.subsumption_cache_stats();
    assert!(odb.catalog().lattice_violations().is_empty());
    (odb, (misses_after - misses_before) as usize)
}

fn main() {
    let mut json_rows = Vec::new();
    println!("E9 — flat scan vs subsumption-lattice traversal (8 fresh queries per row)");
    println!("| shape | views | flat probes | lattice probes | ratio | pruned | max depth | classify probes | flat plan | lattice plan |");
    println!("|---|---|---|---|---|---|---|---|---|---|");

    for shape in SHAPES {
        for views in [10usize, 50, 200] {
            let instance = hierarchical_catalog(SEED, params(shape, views));

            // Flat arm: every query probes every view once.
            let (mut flat_odb, _) = build(&instance);
            let start = Instant::now();
            let mut flat_probes = 0usize;
            let mut flat_subsumers = Vec::new();
            for query in &instance.queries {
                let plan = flat_odb.plan_flat(query);
                flat_probes += plan.fresh_probes + plan.cached_probes;
                flat_subsumers.push(plan.subsuming_views);
            }
            let flat_time = start.elapsed();

            // Lattice arm (fresh database, cold caches): failed probes
            // prune their sub-DAG.
            let (mut lattice_odb, classify_probes) = build(&instance);
            let start = Instant::now();
            let mut lattice_probes = 0usize;
            let mut pruned = 0usize;
            let mut max_depth = 0usize;
            for query in &instance.queries {
                let plan = lattice_odb.plan(query);
                lattice_probes += plan.fresh_probes + plan.cached_probes;
                pruned += plan.probes_pruned;
                max_depth = max_depth.max(plan.lattice_depth);
            }
            let lattice_time = start.elapsed();

            // Sanity: the traversal's frontier choice must agree with the
            // flat scan (smallest-extension containment argument).
            for (query, flat_set) in instance.queries.iter().zip(&flat_subsumers) {
                let plan = lattice_odb.plan(query);
                for name in &plan.subsuming_views {
                    assert!(flat_set.contains(name), "{name} not found by flat scan");
                }
                assert_eq!(plan.subsuming_views.is_empty(), flat_set.is_empty());
            }

            let ratio = lattice_probes as f64 / (flat_probes as f64).max(1.0);
            println!(
                "| {} | {views} | {flat_probes} | {lattice_probes} | {:.0}% | {pruned} | {max_depth} | {classify_probes} | {:.1} µs | {:.1} µs |",
                shape.name(),
                100.0 * ratio,
                flat_time.as_secs_f64() * 1e6,
                lattice_time.as_secs_f64() * 1e6,
            );
            json_rows.push(json_object(&[
                ("experiment", json_str("e9_lattice")),
                ("shape", json_str(shape.name())),
                ("views", views.to_string()),
                ("queries", instance.queries.len().to_string()),
                ("flat_probes", flat_probes.to_string()),
                ("lattice_probes", lattice_probes.to_string()),
                ("probes_pruned", pruned.to_string()),
                ("max_depth", max_depth.to_string()),
                ("classify_probes", classify_probes.to_string()),
                ("flat_plan_ns", flat_time.as_nanos().to_string()),
                ("lattice_plan_ns", lattice_time.as_nanos().to_string()),
            ]));
        }
    }

    write_json_rows("BENCH_e9.json", &json_rows);
    println!("\nHierarchical shapes prune most of the catalog per plan; the flat anti-hierarchy");
    println!("is the adversarial case where the traversal degenerates to the linear scan.");
}
