//! Prints the E5 table: completion statistics of the four scaling families
//! as the parameter grows — the executable counterpart of Theorem 4.9 and
//! Proposition 4.8 — with the delta engine's candidate counter and best
//! wall-clock time next to the retained full-scan reference engine's, so
//! the naive-versus-incremental gap is visible per instance.
//!
//! Rows are also written to `BENCH_e5.json` for mechanical tracking.

use subq::workload::scaling::{
    conjunction_width_instance, path_depth_instance, schema_size_instance, view_growth_instance,
};
use subq::workload::ScalingInstance;
use subq_bench::{
    json_object, json_str, row, run_instance, run_reference_instance, time_best, write_json_rows,
};

fn main() {
    type Family = fn(usize) -> ScalingInstance;
    let families: [(&str, Family); 4] = [
        ("path_depth", path_depth_instance),
        ("conjunction_width", conjunction_width_instance),
        ("schema_size", schema_size_instance),
        ("view_growth", view_growth_instance),
    ];
    println!("E5 — polynomial scaling of the subsumption calculus (Theorem 4.9, Prop. 4.8)");
    println!(
        "{}",
        row(&[
            "family".into(),
            "n".into(),
            "|C|".into(),
            "|D|".into(),
            "|Σ|".into(),
            "individuals".into(),
            "M·N bound".into(),
            "rule apps".into(),
            "examined (delta)".into(),
            "examined (full scan)".into(),
            "best time (delta)".into(),
            "best time (full scan)".into(),
            "speedup".into(),
        ])
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|---|");
    let mut json_rows = Vec::new();
    for (name, family) in families {
        for n in [2usize, 4, 8, 16, 32] {
            let mut instance = family(n);
            let m = instance.query_size();
            let d = instance.view_size();
            let s = instance.schema_size();
            let (subsumed, stats) = run_instance(&mut instance);
            assert!(subsumed);
            let mut reference = family(n);
            let (ref_subsumed, ref_stats) = run_reference_instance(&mut reference);
            assert_eq!(subsumed, ref_subsumed);
            assert_eq!(stats.outcome_only(), ref_stats.outcome_only());

            let delta_time = time_best(
                || family(n),
                |mut instance| {
                    run_instance(&mut instance);
                },
            );
            let naive_time = time_best(
                || family(n),
                |mut instance| {
                    run_reference_instance(&mut instance);
                },
            );
            let speedup = naive_time.as_secs_f64() / delta_time.as_secs_f64().max(1e-12);
            println!(
                "{}",
                row(&[
                    name.into(),
                    n.to_string(),
                    m.to_string(),
                    d.to_string(),
                    s.to_string(),
                    stats.individuals.to_string(),
                    (m * d).to_string(),
                    stats.rule_applications.to_string(),
                    stats.constraints_examined.to_string(),
                    ref_stats.constraints_examined.to_string(),
                    format!("{:.1} µs", delta_time.as_secs_f64() * 1e6),
                    format!("{:.1} µs", naive_time.as_secs_f64() * 1e6),
                    format!("{speedup:.1}×"),
                ])
            );
            json_rows.push(json_object(&[
                ("experiment", json_str("e5_polynomial_scaling")),
                ("family", json_str(name)),
                ("n", n.to_string()),
                ("query_size", m.to_string()),
                ("view_size", d.to_string()),
                ("schema_size", s.to_string()),
                ("individuals", stats.individuals.to_string()),
                ("rule_applications", stats.rule_applications.to_string()),
                ("examined_delta", stats.constraints_examined.to_string()),
                (
                    "examined_full_scan",
                    ref_stats.constraints_examined.to_string(),
                ),
                ("delta_ns", delta_time.as_nanos().to_string()),
                ("full_scan_ns", naive_time.as_nanos().to_string()),
                ("speedup", format!("{speedup:.3}")),
            ]));
        }
    }
    write_json_rows("BENCH_e5.json", &json_rows);
    println!("\nIndividuals and rule applications grow polynomially (close to linearly) in n;");
    println!("the individual count never exceeds the M·N bound of Proposition 4.8. The delta");
    println!("engine's examined-candidate column grows with the derived constraints, while the");
    println!("full scan's grows with rounds × |F ∪ G| — the gap the semi-naive rewrite closes.");
}
