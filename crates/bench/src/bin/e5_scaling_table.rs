//! Prints the E5 table: completion statistics of the four scaling families
//! as the parameter grows — the executable counterpart of Theorem 4.9 and
//! Proposition 4.8.

use subq_bench::run_instance;
use subq::workload::scaling::{
    conjunction_width_instance, path_depth_instance, schema_size_instance, view_growth_instance,
};
use subq::workload::ScalingInstance;

fn main() {
    let families: [(&str, fn(usize) -> ScalingInstance); 4] = [
        ("path depth", path_depth_instance),
        ("conjunction width", conjunction_width_instance),
        ("schema size", schema_size_instance),
        ("view growth", view_growth_instance),
    ];
    println!("E5 — polynomial scaling of the subsumption calculus (Theorem 4.9, Prop. 4.8)");
    println!("| family | n | |C| | |D| | |Σ| | individuals | M·N bound | rule applications |");
    println!("|---|---|---|---|---|---|---|---|");
    for (name, family) in families {
        for n in [2usize, 4, 8, 16, 32] {
            let mut instance = family(n);
            let m = instance.query_size();
            let d = instance.view_size();
            let s = instance.schema_size();
            let (subsumed, stats) = run_instance(&mut instance);
            assert!(subsumed);
            println!(
                "| {name} | {n} | {m} | {d} | {s} | {} | {} | {} |",
                stats.individuals,
                m * d,
                stats.rule_applications
            );
        }
    }
    println!("\nIndividuals and rule applications grow polynomially (close to linearly) in n;");
    println!("the individual count never exceeds the M·N bound of Proposition 4.8.");
}
