//! Prints the E8 table: candidates examined and answers for QueryPatient
//! with and without the subsuming materialized view, across database sizes
//! and view selectivities.

use subq::dl::samples;
use subq::oodb::OptimizedDatabase;
use subq::workload::{synthetic_hospital, HospitalParams};

fn main() {
    let model = samples::medical_model();
    let query = model.query_class("QueryPatient").expect("declared").clone();

    println!("E8 — answering QueryPatient through the materialized ViewPatient");
    println!("| patients | view match % | view size | candidates (optimized) | candidates (scratch) | reduction | answers |");
    println!("|---|---|---|---|---|---|---|");
    for &(patients, selectivity) in &[
        (500usize, 15u8),
        (2_000, 15),
        (8_000, 15),
        (2_000, 5),
        (2_000, 25),
        (2_000, 60),
    ] {
        let params = HospitalParams {
            patients,
            doctors: (patients / 40).max(5),
            diseases: 20,
            view_match_percent: selectivity,
            query_match_percent: 40,
        };
        let db = synthetic_hospital(7, params);
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        odb.materialize_view("ViewPatient").expect("materializes");
        let view_size = odb.catalog().view("ViewPatient").expect("stored").len();
        let (answers, stats) = odb.execute(&query);
        let (baseline, base_stats) = odb.execute_unoptimized(&query);
        assert_eq!(answers, baseline);
        let reduction = 100.0
            - 100.0 * stats.candidates_examined as f64
                / base_stats.candidates_examined.max(1) as f64;
        println!(
            "| {patients} | {selectivity} | {view_size} | {} | {} | {reduction:.1}% | {} |",
            stats.candidates_examined,
            base_stats.candidates_examined,
            answers.len()
        );
    }
    println!("\nThe optimizer wins whenever the subsuming view is more selective than the query's");
    println!("superclass extents; the crossover appears as the view match percentage approaches 100%.");
}
