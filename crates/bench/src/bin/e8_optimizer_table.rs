//! Prints the E8 table: candidates examined and answers for QueryPatient
//! with and without the subsuming materialized view, across database sizes
//! and view selectivities.

use std::time::Instant;
use subq::dl::samples;
use subq::oodb::OptimizedDatabase;
use subq::workload::{synthetic_hospital, HospitalParams};
use subq_bench::{json_object, json_str, time_best, write_json_rows};

/// Schema classes that double as trivial views (the paper's remark), after
/// the one declared structural view.
const VIEW_NAMES: [&str; 10] = [
    "ViewPatient",
    "Person",
    "Patient",
    "Doctor",
    "Disease",
    "Drug",
    "String",
    "Topic",
    "Male",
    "Female",
];

fn main() {
    let mut json_rows = Vec::new();
    let model = samples::medical_model();
    let query = model.query_class("QueryPatient").expect("declared").clone();

    println!("E8 — answering QueryPatient through the materialized ViewPatient");
    println!("| patients | view match % | view size | candidates (optimized) | candidates (scratch) | reduction | answers |");
    println!("|---|---|---|---|---|---|---|");
    for &(patients, selectivity) in &[
        (500usize, 15u8),
        (2_000, 15),
        (8_000, 15),
        (2_000, 5),
        (2_000, 25),
        (2_000, 60),
    ] {
        let params = HospitalParams {
            patients,
            doctors: (patients / 40).max(5),
            diseases: 20,
            view_match_percent: selectivity,
            query_match_percent: 40,
        };
        let db = synthetic_hospital(7, params);
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        odb.materialize_view("ViewPatient").expect("materializes");
        let view_size = odb.catalog().view("ViewPatient").expect("stored").len();
        let (answers, stats) = odb.execute(&query);
        let (baseline, base_stats) = odb.execute_unoptimized(&query);
        assert_eq!(answers, baseline);
        let reduction = 100.0
            - 100.0 * stats.candidates_examined as f64
                / base_stats.candidates_examined.max(1) as f64;
        println!(
            "| {patients} | {selectivity} | {view_size} | {} | {} | {reduction:.1}% | {} |",
            stats.candidates_examined,
            base_stats.candidates_examined,
            answers.len()
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e8_optimizer")),
            ("section", json_str("view_filter")),
            ("patients", patients.to_string()),
            ("view_match_percent", selectivity.to_string()),
            ("view_size", view_size.to_string()),
            (
                "candidates_optimized",
                stats.candidates_examined.to_string(),
            ),
            (
                "candidates_scratch",
                base_stats.candidates_examined.to_string(),
            ),
            ("answers", answers.len().to_string()),
        ]));
    }

    // Section 2 — planning cost against MANY materialized views: the
    // batch subsumption API normalizes and fact-saturates the query once
    // for all N views (fresh pairs pay only a goal-side probe over a fork
    // of the saturated facts), and answers repeat probes from the
    // (query, view) → verdict cache, so a steady stream of the same
    // queries stops paying anything per plan.
    let params = HospitalParams {
        patients: 2_000,
        doctors: 50,
        diseases: 20,
        view_match_percent: 15,
        query_match_percent: 40,
    };
    // Every schema class doubles as a trivial view (the paper's remark),
    // so the planner has a realistic catalog to probe. The first-plan
    // time is best-of-5 over fresh databases (a one-shot measurement of
    // ~100 µs is too noisy to track across PRs).
    let fresh_odb = || {
        let mut odb = OptimizedDatabase::new(synthetic_hospital(7, params)).expect("translates");
        for view in VIEW_NAMES {
            odb.materialize_view(view).expect("materializes");
        }
        odb
    };
    let mut odb = fresh_odb();
    let start = Instant::now();
    let first = odb.plan(&query);
    let mut first_plan = start.elapsed();
    for _ in 0..4 {
        let mut cold = fresh_odb();
        let start = Instant::now();
        let plan = cold.plan(&query);
        first_plan = first_plan.min(start.elapsed());
        assert_eq!(plan.subsuming_views, first.subsuming_views);
    }
    let start = Instant::now();
    let repeats = 100u32;
    for _ in 0..repeats {
        let cached = odb.plan(&query);
        assert_eq!(cached.subsuming_views, first.subsuming_views);
    }
    let cached_plan = start.elapsed() / repeats;
    let (hits, misses) = odb.subsumption_cache_stats();
    let speedup = first_plan.as_secs_f64() / cached_plan.as_secs_f64().max(1e-12);
    println!(
        "
Planning against {} materialized views:",
        odb.catalog().len()
    );
    println!(
        "| first plan | repeat plan (memoized) | speedup | fact saturations | probes | cache hits | cache misses |"
    );
    println!("|---|---|---|---|---|---|---|");
    println!(
        "| {:.1} µs | {:.1} µs | {speedup:.1}× | {} | {} | {hits} | {misses} |",
        first_plan.as_secs_f64() * 1e6,
        cached_plan.as_secs_f64() * 1e6,
        first.fact_saturations,
        first.fresh_probes,
    );
    json_rows.push(json_object(&[
        ("experiment", json_str("e8_optimizer")),
        ("section", json_str("plan_many_views")),
        ("views", odb.catalog().len().to_string()),
        ("first_plan_ns", first_plan.as_nanos().to_string()),
        ("cached_plan_ns", cached_plan.as_nanos().to_string()),
        ("speedup", format!("{speedup:.3}")),
        ("fact_saturations", first.fact_saturations.to_string()),
        ("probes", first.fresh_probes.to_string()),
        ("cache_hits", hits.to_string()),
        ("cache_misses", misses.to_string()),
    ]));

    // Section 3 — first-plan cost as the catalog grows: with the
    // saturate-once/probe-many split, the per-view increment is a cheap
    // goal probe, so the first-plan wall-clock grows sublinearly in the
    // number of views (every plan performs exactly one fact saturation,
    // regardless of N).
    println!("\nFirst-plan cost against a growing catalog (fresh cache per measurement):");
    println!("| views | first plan | repeat plan | fact saturations | probes |");
    println!("|---|---|---|---|---|");
    for n_views in [1usize, 2, 5, 10] {
        let small = HospitalParams {
            patients: 200,
            doctors: 10,
            diseases: 20,
            view_match_percent: 15,
            query_match_percent: 40,
        };
        let make_odb = || {
            let mut odb = OptimizedDatabase::new(synthetic_hospital(7, small)).expect("translates");
            for view in &VIEW_NAMES[..n_views] {
                odb.materialize_view(view).expect("materializes");
            }
            odb
        };
        let first_plan = time_best(make_odb, |mut odb| {
            odb.plan(&query);
        });
        let mut warm = make_odb();
        let plan = warm.plan(&query);
        assert_eq!(plan.fact_saturations, 1);
        // The lattice traversal may probe fewer than N views (descendants
        // of a failed probe are pruned), but together probes and pruned
        // views always cover the catalog.
        assert_eq!(plan.fresh_probes + plan.probes_pruned, n_views);
        let repeat_plan = time_best(
            || (),
            |()| {
                warm.plan(&query);
            },
        );
        println!(
            "| {n_views} | {:.1} µs | {:.1} µs | {} | {} |",
            first_plan.as_secs_f64() * 1e6,
            repeat_plan.as_secs_f64() * 1e6,
            plan.fact_saturations,
            plan.fresh_probes,
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e8_optimizer")),
            ("section", json_str("plan_scaling")),
            ("views", n_views.to_string()),
            ("first_plan_ns", first_plan.as_nanos().to_string()),
            ("repeat_plan_ns", repeat_plan.as_nanos().to_string()),
            ("fact_saturations", plan.fact_saturations.to_string()),
            ("probes", plan.fresh_probes.to_string()),
        ]));
    }
    write_json_rows("BENCH_e8.json", &json_rows);
    println!("\nThe optimizer wins whenever the subsuming view is more selective than the query's");
    println!(
        "superclass extents; the crossover appears as the view match percentage approaches 100%."
    );
}
