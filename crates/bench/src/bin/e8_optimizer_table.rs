//! Prints the E8 table: candidates examined and answers for QueryPatient
//! with and without the subsuming materialized view, across database sizes
//! and view selectivities.

use std::time::Instant;
use subq::dl::samples;
use subq::oodb::OptimizedDatabase;
use subq::workload::{synthetic_hospital, HospitalParams};
use subq_bench::{json_object, json_str, write_json_rows};

fn main() {
    let mut json_rows = Vec::new();
    let model = samples::medical_model();
    let query = model.query_class("QueryPatient").expect("declared").clone();

    println!("E8 — answering QueryPatient through the materialized ViewPatient");
    println!("| patients | view match % | view size | candidates (optimized) | candidates (scratch) | reduction | answers |");
    println!("|---|---|---|---|---|---|---|");
    for &(patients, selectivity) in &[
        (500usize, 15u8),
        (2_000, 15),
        (8_000, 15),
        (2_000, 5),
        (2_000, 25),
        (2_000, 60),
    ] {
        let params = HospitalParams {
            patients,
            doctors: (patients / 40).max(5),
            diseases: 20,
            view_match_percent: selectivity,
            query_match_percent: 40,
        };
        let db = synthetic_hospital(7, params);
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        odb.materialize_view("ViewPatient").expect("materializes");
        let view_size = odb.catalog().view("ViewPatient").expect("stored").len();
        let (answers, stats) = odb.execute(&query);
        let (baseline, base_stats) = odb.execute_unoptimized(&query);
        assert_eq!(answers, baseline);
        let reduction = 100.0
            - 100.0 * stats.candidates_examined as f64
                / base_stats.candidates_examined.max(1) as f64;
        println!(
            "| {patients} | {selectivity} | {view_size} | {} | {} | {reduction:.1}% | {} |",
            stats.candidates_examined,
            base_stats.candidates_examined,
            answers.len()
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e8_optimizer")),
            ("section", json_str("view_filter")),
            ("patients", patients.to_string()),
            ("view_match_percent", selectivity.to_string()),
            ("view_size", view_size.to_string()),
            (
                "candidates_optimized",
                stats.candidates_examined.to_string(),
            ),
            (
                "candidates_scratch",
                base_stats.candidates_examined.to_string(),
            ),
            ("answers", answers.len().to_string()),
        ]));
    }

    // Section 2 — planning cost against MANY materialized views: the
    // memoizing batch subsumption API normalizes the query once and
    // answers repeat probes from the (query, view) → verdict cache, so a
    // steady stream of the same queries stops paying N saturations per
    // plan.
    let params = HospitalParams {
        patients: 2_000,
        doctors: 50,
        diseases: 20,
        view_match_percent: 15,
        query_match_percent: 40,
    };
    let db = synthetic_hospital(7, params);
    let mut odb = OptimizedDatabase::new(db).expect("translates");
    // Every schema class doubles as a trivial view (the paper's remark),
    // so the planner has a realistic catalog to probe.
    for view in [
        "ViewPatient",
        "Person",
        "Patient",
        "Doctor",
        "Disease",
        "Drug",
        "String",
        "Topic",
        "Male",
        "Female",
    ] {
        odb.materialize_view(view).expect("materializes");
    }
    let start = Instant::now();
    let first = odb.plan(&query);
    let first_plan = start.elapsed();
    let start = Instant::now();
    let repeats = 100u32;
    for _ in 0..repeats {
        let cached = odb.plan(&query);
        assert_eq!(cached.subsuming_views, first.subsuming_views);
    }
    let cached_plan = start.elapsed() / repeats;
    let (hits, misses) = odb.subsumption_cache_stats();
    let speedup = first_plan.as_secs_f64() / cached_plan.as_secs_f64().max(1e-12);
    println!(
        "
Planning against {} materialized views:",
        odb.catalog().len()
    );
    println!(
        "| first plan (fresh saturations) | repeat plan (memoized) | speedup | cache hits | cache misses |"
    );
    println!("|---|---|---|---|---|");
    println!(
        "| {:.1} µs | {:.1} µs | {speedup:.1}× | {hits} | {misses} |",
        first_plan.as_secs_f64() * 1e6,
        cached_plan.as_secs_f64() * 1e6,
    );
    json_rows.push(json_object(&[
        ("experiment", json_str("e8_optimizer")),
        ("section", json_str("plan_many_views")),
        ("views", odb.catalog().len().to_string()),
        ("first_plan_ns", first_plan.as_nanos().to_string()),
        ("cached_plan_ns", cached_plan.as_nanos().to_string()),
        ("speedup", format!("{speedup:.3}")),
        ("cache_hits", hits.to_string()),
        ("cache_misses", misses.to_string()),
    ]));
    write_json_rows("BENCH_e8.json", &json_rows);
    println!("\nThe optimizer wins whenever the subsuming view is more selective than the query's");
    println!(
        "superclass extents; the crossover appears as the view match percentage approaches 100%."
    );
}
