//! Perf smoke check: deterministic counters must not regress past the
//! ceilings recorded in the committed `BENCH_*.json` baselines.
//!
//! * the delta engine's `examined_delta` counters versus `BENCH_e5.json`
//!   (every `(family, n)` instance of the E5 table);
//! * the lattice planner's subsumption-probe counts versus
//!   `BENCH_e9.json` (every `(shape, views)` instance of the E9 table),
//!   plus the hard acceptance bound that on hierarchical catalogs of 50
//!   views the traversal performs at most 50% of the flat scan's probes;
//! * the incremental maintainer's membership-evaluation counts versus
//!   `BENCH_e10.json` (every `(objects, views)` instance of the E10
//!   table), plus the hard acceptance bound that a single-object update
//!   against a 10k-object / 50-view catalog refreshes with at least 10×
//!   fewer membership evaluations than a full refresh;
//! * the concurrent read path versus `BENCH_e11.json`: the deterministic
//!   zero-resaturation invariant on every row and live, plus the
//!   core-proportional 8-reader throughput bound (the full ≥4× on
//!   machines with ≥9 cores — see [`e11_checks`]);
//! * the physical layer versus `BENCH_e12.json`: the ≥5× dense bitmap
//!   intersection gate (committed and live), the core-proportional
//!   8-shard scatter-gather bound, the cost-model plan-quality bounds
//!   (committed and live), and the core-clamped 1M-object p99
//!   plan+execute bound (see [`e12_checks`]);
//! * the durable engine versus `BENCH_e13.json`: the ≥5× group-commit
//!   amortization of the WAL write at batch 32, the ≥5× image+suffix
//!   recovery advantage over full-log replay at 64k-entry logs, and the
//!   checkpoint-image density ceiling (see [`e13_checks`]);
//! * the `subqd` server versus `BENCH_e14.json`: the core-clamped
//!   4-client mixed-traffic speedup, zero typed errors on every row, and
//!   the saturation row shedding load as typed `BUSY` (see
//!   [`e14_checks`]);
//! * the view advisor versus `BENCH_e15.json`: the auto arm within a
//!   core-clamped 2× of the hand-tuned static catalog with zero manual
//!   DDL and at least one auto-materialization, plus the live
//!   anti-collapse floor and the ≤2%-target observe-mode recording
//!   overhead on the E14 mixed path (see [`e15_checks`] and
//!   [`advisor_observe_overhead_checks`]);
//! * the telemetry layer's cost when unread: the instrumented E8
//!   repeat-plan and E13 durable-commit paths, re-timed with spans
//!   enabled versus disabled, must stay within 10% of each other (see
//!   [`overhead_checks`]).
//!
//! Counters (unlike wall-clock) are deterministic, so these are hard
//! assertions suitable for CI (with a small slack for intentional
//! bookkeeping changes — a real complexity regression blows far past it).
//!
//! Run from the repository root (where the `BENCH_*.json` files live),
//! *before* regenerating the tables: `cargo run --release -p subq-bench
//! --bin perf_smoke`.

use subq::oodb::OptimizedDatabase;
use subq::workload::scaling::{
    conjunction_width_instance, path_depth_instance, schema_size_instance, view_growth_instance,
};
use subq::workload::{hierarchical_catalog, FamilyShape, HierarchyParams, ScalingInstance};
use subq_bench::run_instance;

/// Allowed growth over the committed ceiling before the check fails.
const SLACK_PERCENT: usize = 10;

/// Extracts `"key": value` for a numeric or string value out of one flat
/// JSON row (the `BENCH_*.json` rows are flat objects on a single line).
fn field<'a>(row: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": ");
    let start = row.find(&needle)? + needle.len();
    let rest = &row[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// Re-runs one E9 lattice arm and returns `(flat probes, lattice probes)`.
/// Must mirror the construction in `e9_lattice_table.rs` (same seed and
/// parameters) so the counters are comparable.
fn e9_probe_counts(shape: FamilyShape, views: usize) -> (usize, usize) {
    let params = HierarchyParams {
        shape,
        views,
        members_per_class: 2,
        queries: 8,
        intersect_percent: 0,
        duplicate_percent: 0,
    };
    let instance = hierarchical_catalog(11, params);
    let mut odb = OptimizedDatabase::new(instance.db.clone()).expect("translates");
    for name in &instance.view_names {
        odb.materialize_view(name).expect("materializes");
    }
    let mut lattice_probes = 0usize;
    for query in &instance.queries {
        let plan = odb.plan(query);
        lattice_probes += plan.fresh_probes + plan.cached_probes;
    }
    // The flat scan deterministically probes every view once per query.
    let flat_probes = instance.view_names.len() * instance.queries.len();
    (flat_probes, lattice_probes)
}

fn e9_checks(failures: &mut Vec<String>) -> usize {
    let baseline = std::fs::read_to_string("BENCH_e9.json").unwrap_or_else(|error| {
        panic!("cannot read BENCH_e9.json (run from the repository root): {error}")
    });
    let shapes = [
        ("tree", FamilyShape::Tree),
        ("chain", FamilyShape::Chain),
        ("diamond", FamilyShape::Diamond),
        ("flat", FamilyShape::Flat),
    ];
    let mut checked = 0usize;
    for row in baseline.lines() {
        if !row.contains("\"e9_lattice\"") {
            continue;
        }
        let shape_name = field(row, "shape").expect("shape field");
        let views: usize = field(row, "views")
            .expect("views field")
            .parse()
            .expect("numeric views");
        let ceiling: usize = field(row, "lattice_probes")
            .expect("lattice_probes field")
            .parse()
            .expect("numeric lattice_probes");
        let (_, shape) = shapes
            .iter()
            .find(|(name, _)| *name == shape_name)
            .unwrap_or_else(|| panic!("unknown shape `{shape_name}` in BENCH_e9.json"));
        let (flat_probes, lattice_probes) = e9_probe_counts(*shape, views);
        let allowed = ceiling + ceiling * SLACK_PERCENT / 100;
        if lattice_probes > allowed {
            failures.push(format!(
                "e9 {shape_name} views={views}: {lattice_probes} lattice probes > committed ceiling {ceiling} (+{SLACK_PERCENT}% slack = {allowed})"
            ));
        }
        // The acceptance bound of the lattice planner: on hierarchical
        // catalogs of 50 views, at most half the flat scan's probes.
        if views == 50 && *shape != FamilyShape::Flat && 2 * lattice_probes > flat_probes {
            failures.push(format!(
                "e9 {shape_name} views=50: {lattice_probes} lattice probes exceed 50% of the flat scan's {flat_probes}"
            ));
        }
        checked += 1;
    }
    assert!(
        checked >= 12,
        "BENCH_e9.json yielded only {checked} rows; baseline looks truncated"
    );
    checked
}

fn e10_checks(failures: &mut Vec<String>) -> usize {
    let baseline = std::fs::read_to_string("BENCH_e10.json").unwrap_or_else(|error| {
        panic!("cannot read BENCH_e10.json (run from the repository root): {error}")
    });
    let mut checked = 0usize;
    for row in baseline.lines() {
        if !row.contains("\"e10_maintenance\"") {
            continue;
        }
        let objects: usize = field(row, "objects")
            .expect("objects field")
            .parse()
            .expect("numeric objects");
        let views: usize = field(row, "views")
            .expect("views field")
            .parse()
            .expect("numeric views");
        let ceiling: u64 = field(row, "inc_memberships")
            .expect("inc_memberships field")
            .parse()
            .expect("numeric inc_memberships");
        let arm = subq_bench::e10_maintenance_arm(objects, views);
        let allowed = ceiling + ceiling * SLACK_PERCENT as u64 / 100;
        if arm.inc_memberships > allowed {
            failures.push(format!(
                "e10 objects={objects} views={views}: {} incremental membership evaluations > committed ceiling {ceiling} (+{SLACK_PERCENT}% slack = {allowed})",
                arm.inc_memberships
            ));
        }
        // The acceptance bound of the maintenance engine: a single-object
        // update against the 10k-object / 50-view catalog must evaluate
        // at least 10× fewer memberships than a full refresh.
        if objects == 10_000
            && views == 50
            && arm.full_memberships < 10 * arm.inc_memberships.max(1)
        {
            failures.push(format!(
                "e10 objects=10000 views=50: incremental refresh evaluated {} memberships, full {} — below the 10× acceptance bound",
                arm.inc_memberships, arm.full_memberships
            ));
        }
        checked += 1;
    }
    assert!(
        checked >= 6,
        "BENCH_e10.json yielded only {checked} rows; baseline looks truncated"
    );
    checked
}

/// The E11 ceilings. The acceptance bound — ≥4× aggregate plan+answer
/// throughput at 8 reader threads versus 1 — is a *parallel wall-clock*
/// property and can only manifest on a machine with cores to scale onto,
/// so it is enforced proportionally to the parallelism actually present:
///
/// * the committed `BENCH_e11.json` must show an 8-reader speedup of at
///   least `clamp(0.45 × cores, 0.7, 4.0)` for the `cores` it records —
///   the full 4× when the table was generated on a machine with ≥ 9
///   cores, and never a collapse below a single reader;
/// * the live re-measurement hard-fails only on a **collapse** (8-reader
///   throughput below 0.5× of 1-reader, best of three attempts — only a
///   real serialization bug does that); the core-scaled target
///   `clamp(0.35 × cores, 0.7, 4.0)` is printed as a warning when missed
///   live, because wall-clock on a shared runner is noisy;
/// * deterministically, on any machine and every attempt: readers
///   perform **zero** fresh subsumption probes after warmup
///   (`fresh_probes_after_warmup == 0`) — every probe is answered from
///   the shared memo or a private cache, the invariant the scaling
///   rests on.
fn e11_checks(failures: &mut Vec<String>) -> usize {
    let baseline = std::fs::read_to_string("BENCH_e11.json").unwrap_or_else(|error| {
        panic!("cannot read BENCH_e11.json (run from the repository root): {error}")
    });
    let bound = |cores: usize| -> f64 { (0.45 * cores as f64).clamp(0.7, 4.0) };
    let mut checked = 0usize;
    for row in baseline.lines() {
        if !row.contains("\"e11_concurrency\"") {
            continue;
        }
        let threads: usize = field(row, "threads")
            .expect("threads field")
            .parse()
            .expect("numeric threads");
        let cores: usize = field(row, "cores")
            .expect("cores field")
            .parse()
            .expect("numeric cores");
        let speedup: f64 = field(row, "speedup_vs_1")
            .expect("speedup_vs_1 field")
            .parse()
            .expect("numeric speedup_vs_1");
        let fresh: u64 = field(row, "fresh_probes_after_warmup")
            .expect("fresh_probes_after_warmup field")
            .parse()
            .expect("numeric fresh_probes_after_warmup");
        if fresh != 0 {
            failures.push(format!(
                "e11 threads={threads}: committed table records {fresh} fresh probes after warmup (must be 0)"
            ));
        }
        if threads == 8 && speedup < bound(cores) {
            failures.push(format!(
                "e11 committed table: 8-reader speedup {speedup:.2}× below the {:.2}× bound for its {cores} recorded cores",
                bound(cores)
            ));
        }
        checked += 1;
    }
    assert!(
        checked >= 4,
        "BENCH_e11.json yielded only {checked} throughput rows; baseline looks truncated"
    );

    // Live re-measurement: 1 reader vs 8 readers. Wall-clock on a shared
    // runner is noisy, so only two live checks are *hard*: the
    // deterministic zero-resaturation counter, and an anti-collapse floor
    // (8 readers must never fall below half a single reader's throughput
    // — only a real serialization bug, not scheduler noise, can do that;
    // best of three attempts). The core-scaled speedup target itself is
    // enforced on the committed table above, where it is reproducible;
    // live it is printed as a warning so a slow runner cannot fail CI.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let live_target = (0.35 * cores as f64).clamp(0.7, 4.0);
    let collapse_floor = 0.5;
    let window = std::time::Duration::from_millis(400);
    let rate =
        |row: &subq_bench::e11::ThroughputRow| row.total_ops as f64 / (row.elapsed_ns as f64 / 1e9);
    let mut best_live = 0.0f64;
    for attempt in 0..3 {
        let one = subq_bench::e11::throughput_arm(1, window);
        let eight = subq_bench::e11::throughput_arm(8, window);
        for arm in [&one, &eight] {
            if arm.fresh_probes_after_warmup != 0 {
                failures.push(format!(
                    "e11 live attempt {attempt} threads={}: {} fresh probes after warmup (readers must answer from caches)",
                    arm.threads, arm.fresh_probes_after_warmup
                ));
            }
        }
        best_live = best_live.max(rate(&eight) / rate(&one).max(1.0));
        if best_live >= live_target {
            break;
        }
    }
    if best_live < collapse_floor {
        failures.push(format!(
            "e11 live: best 8-reader speedup {best_live:.2}× over 3 attempts below the {collapse_floor:.2}× anti-collapse floor — the read path is serializing"
        ));
    } else if best_live < live_target {
        eprintln!(
            "warning: e11 live 8-reader speedup {best_live:.2}× below the {live_target:.2}× core-scaled target for {cores} cores (non-fatal: wall-clock on a shared runner)"
        );
    }
    checked
}

/// The E12 physical-layer bounds. Deterministic counters (plan quality)
/// are re-measured live and hard-asserted; wall-clock properties follow
/// the E11 scheme — enforced on the committed table proportionally to
/// the cores it records, and live only where the margin is categorical:
///
/// * **intersection**: the committed dense (90%) row and a live
///   re-measurement must both show the compressed bitmap beating the
///   ordered-set baseline by ≥5× — the word-parallel-vs-pointer-chase
///   margin is orders of magnitude, so this is safe on any runner;
/// * **scatter-gather**: the committed 8-shard row must reach
///   `clamp(0.45 × cores, 0.7, 4.0)` for its recorded cores (the same
///   clamp as E11 — never a collapse below ~1×, full scaling only with
///   the cores to scale onto), and every committed row must report the
///   same answer count;
/// * **plan quality**: re-measured live per catalog shape — the
///   cost-based choice examines at most 10% more candidates than the
///   best enumerated subsuming view, and is never worse than the
///   smallest-extension heuristic;
/// * **latency**: the committed 1M-object p99 must be sub-ms when the
///   table was generated on ≥4 cores, relaxed to `1 ms × 4/cores` below
///   that (not re-measured live: building the 1M-object store would
///   dominate the smoke run).
fn e12_checks(failures: &mut Vec<String>) -> usize {
    let baseline = std::fs::read_to_string("BENCH_e12.json").unwrap_or_else(|error| {
        panic!("cannot read BENCH_e12.json (run from the repository root): {error}")
    });
    let mut checked = 0usize;
    let mut scatter_answers: Option<&str> = None;
    for line in baseline.lines() {
        if !line.contains("\"e12_bitmap\"") {
            continue;
        }
        match field(line, "arm").expect("arm field") {
            "intersect" => {
                let density: u32 = field(line, "density_percent")
                    .expect("density_percent field")
                    .parse()
                    .expect("numeric density_percent");
                let speedup: f64 = field(line, "speedup")
                    .expect("speedup field")
                    .parse()
                    .expect("numeric speedup");
                if density == 90 && speedup < 5.0 {
                    failures.push(format!(
                        "e12 committed table: dense intersection speedup {speedup:.2}× below the 5× acceptance gate"
                    ));
                }
            }
            "scatter" => {
                let workers: usize = field(line, "workers")
                    .expect("workers field")
                    .parse()
                    .expect("numeric workers");
                let cores: usize = field(line, "cores")
                    .expect("cores field")
                    .parse()
                    .expect("numeric cores");
                let speedup: f64 = field(line, "speedup_vs_1")
                    .expect("speedup_vs_1 field")
                    .parse()
                    .expect("numeric speedup_vs_1");
                let answers = field(line, "answers").expect("answers field");
                match scatter_answers {
                    None => scatter_answers = Some(answers),
                    Some(expected) if expected != answers => failures.push(format!(
                        "e12 committed table: scatter answers {answers} at {workers} shards differ from {expected} — sharding changed the result"
                    )),
                    Some(_) => {}
                }
                let bound = (0.45 * cores as f64).clamp(0.7, 4.0);
                if workers == 8 && speedup < bound {
                    failures.push(format!(
                        "e12 committed table: 8-shard scatter speedup {speedup:.2}× below the {bound:.2}× bound for its {cores} recorded cores"
                    ));
                }
            }
            "plan_quality" => {
                let ratio: f64 = field(line, "worst_ratio")
                    .expect("worst_ratio field")
                    .parse()
                    .expect("numeric worst_ratio");
                let worse: usize = field(line, "worse_than_smallest")
                    .expect("worse_than_smallest field")
                    .parse()
                    .expect("numeric worse_than_smallest");
                let shape = field(line, "shape").expect("shape field");
                if ratio > 1.10 {
                    failures.push(format!(
                        "e12 committed table: {shape} worst plan ratio {ratio:.3} exceeds the 10% accuracy bound"
                    ));
                }
                if worse != 0 {
                    failures.push(format!(
                        "e12 committed table: {shape} cost-based choice was worse than smallest-extension {worse} times (must be 0)"
                    ));
                }
            }
            "latency" => {
                let cores: usize = field(line, "cores")
                    .expect("cores field")
                    .parse()
                    .expect("numeric cores");
                let p99: u64 = field(line, "p99_ns")
                    .expect("p99_ns field")
                    .parse()
                    .expect("numeric p99_ns");
                let allowed = (1_000_000.0 * (4.0 / cores as f64).max(1.0)) as u64;
                if p99 > allowed {
                    failures.push(format!(
                        "e12 committed table: 1M-object p99 plan+execute {p99} ns exceeds the {allowed} ns bound for its {cores} recorded cores"
                    ));
                }
            }
            other => panic!("unknown arm `{other}` in BENCH_e12.json"),
        }
        checked += 1;
    }
    assert!(
        checked >= 12,
        "BENCH_e12.json yielded only {checked} rows; baseline looks truncated"
    );

    // Live: the dense intersection gate (categorical margin) and the
    // deterministic plan-quality counters per catalog shape.
    let live = subq_bench::e12::intersect_arm(90);
    if live.speedup < 5.0 {
        failures.push(format!(
            "e12 live: dense intersection speedup {:.2}× below the 5× acceptance gate",
            live.speedup
        ));
    }
    for shape in [
        FamilyShape::Tree,
        FamilyShape::Chain,
        FamilyShape::Diamond,
        FamilyShape::Flat,
    ] {
        let arm = subq_bench::e12::plan_quality_arm(shape, 50);
        if arm.worst_ratio > 1.10 {
            failures.push(format!(
                "e12 live: {} worst plan ratio {:.3} exceeds the 10% accuracy bound",
                arm.shape, arm.worst_ratio
            ));
        }
        if arm.worse_than_smallest != 0 {
            failures.push(format!(
                "e12 live: {} cost-based choice was worse than smallest-extension {} times (must be 0)",
                arm.shape, arm.worse_than_smallest
            ));
        }
    }
    checked
}

/// The E13 durability bounds. Both acceptance ratios are enforced on the
/// committed table, where the filesystem they were measured on is part
/// of the record:
///
/// * **group commit**: the committed batch-32 WAL write must be ≥5×
///   cheaper per transaction than batch-1 — on any real store the fsync
///   barrier dominates the append, so sharing it across 32 records
///   clears 5× with an order of magnitude to spare. Live this is
///   re-measured as a *warning* only: a runner whose scratch directory
///   is tmpfs has (legitimately) nearly free fsyncs and no amortization
///   to show;
/// * **recovery**: the committed image+suffix recovery of a 64k-entry
///   history must be ≥5× faster than full-log replay. This one *is*
///   re-measured live as a hard check at a smaller size (16k entries,
///   ≥2× floor — replay is CPU-bound, so a runner can dilute but not
///   erase the advantage), with the full 4.5× printed as a warning when
///   missed;
/// * **image density**: every committed checkpoint-size row stays under
///   200 bytes per object (the table records ≈17 — names dominate, the
///   extents are compressed bitmaps).
fn e13_checks(failures: &mut Vec<String>) -> usize {
    let baseline = std::fs::read_to_string("BENCH_e13.json").unwrap_or_else(|error| {
        panic!("cannot read BENCH_e13.json (run from the repository root): {error}")
    });
    let mut checked = 0usize;
    let mut wal_ns: Vec<(usize, u64)> = Vec::new();
    let mut recovery_ns: Vec<(String, u64, u64)> = Vec::new();
    for line in baseline.lines() {
        if !line.contains("\"e13_durability\"") {
            continue;
        }
        match field(line, "arm").expect("arm field") {
            "wal_latency" => {
                let batch: usize = field(line, "batch")
                    .expect("batch field")
                    .parse()
                    .expect("numeric batch");
                let per_txn: u64 = field(line, "per_txn_ns")
                    .expect("per_txn_ns field")
                    .parse()
                    .expect("numeric per_txn_ns");
                wal_ns.push((batch, per_txn));
            }
            "commit_latency" => {}
            "recovery" => {
                let mode = field(line, "mode").expect("mode field").to_string();
                let entries: u64 = field(line, "log_entries")
                    .expect("log_entries field")
                    .parse()
                    .expect("numeric log_entries");
                let ns: u64 = field(line, "recovery_ns")
                    .expect("recovery_ns field")
                    .parse()
                    .expect("numeric recovery_ns");
                recovery_ns.push((mode, entries, ns));
            }
            "checkpoint_size" => {
                let objects: usize = field(line, "objects")
                    .expect("objects field")
                    .parse()
                    .expect("numeric objects");
                let density: f64 = field(line, "bytes_per_object")
                    .expect("bytes_per_object field")
                    .parse()
                    .expect("numeric bytes_per_object");
                if density > 200.0 {
                    failures.push(format!(
                        "e13 committed table: checkpoint image of the {objects}-object store weighs {density:.1} B/object (ceiling 200)"
                    ));
                }
            }
            other => panic!("unknown arm `{other}` in BENCH_e13.json"),
        }
        checked += 1;
    }
    assert!(
        checked >= 11,
        "BENCH_e13.json yielded only {checked} rows; baseline looks truncated"
    );

    let per_txn = |batch: usize| -> u64 {
        wal_ns
            .iter()
            .find(|(b, _)| *b == batch)
            .unwrap_or_else(|| panic!("BENCH_e13.json lacks the batch={batch} WAL row"))
            .1
    };
    let committed_amortization = per_txn(1) as f64 / per_txn(32) as f64;
    if committed_amortization < 5.0 {
        failures.push(format!(
            "e13 committed table: batch-32 WAL write only {committed_amortization:.2}× cheaper than batch-1, below the 5× acceptance gate"
        ));
    }

    let recovery = |mode: &str| -> (u64, u64) {
        recovery_ns
            .iter()
            .find(|(m, _, _)| m == mode)
            .map(|(_, entries, ns)| (*entries, *ns))
            .unwrap_or_else(|| panic!("BENCH_e13.json lacks the {mode} recovery row"))
    };
    let (full_entries, full_ns) = recovery("full_log");
    let (suffix_entries, suffix_ns) = recovery("image_suffix");
    if full_entries != 65_536 || suffix_entries != 65_536 {
        failures.push(format!(
            "e13 committed table: recovery rows cover {full_entries}/{suffix_entries} log entries, not the 64k the acceptance bound is stated for"
        ));
    }
    let committed_recovery = full_ns as f64 / suffix_ns as f64;
    if committed_recovery < 5.0 {
        failures.push(format!(
            "e13 committed table: image+suffix recovery only {committed_recovery:.2}× faster than full-log replay, below the 5× acceptance gate"
        ));
    }

    // Live: the recovery ratio is CPU-bound (replay work), so even a
    // slow shared runner must show a clear advantage at 16k entries.
    let live_full = subq_bench::e13::recovery_arm(2048, 64, 128, None);
    let live_suffix = subq_bench::e13::recovery_arm(2048, 64, 128, Some(4));
    let live_recovery = live_full.recovery_ns as f64 / live_suffix.recovery_ns as f64;
    if live_recovery < 2.0 {
        failures.push(format!(
            "e13 live: image+suffix recovery only {live_recovery:.2}× faster than full-log replay at 16k entries — replay is not suffix-proportional"
        ));
    } else if live_recovery < 4.5 {
        eprintln!(
            "warning: e13 live recovery advantage {live_recovery:.2}× below the 4.5× target at 16k entries (non-fatal: wall-clock on a shared runner)"
        );
    }

    // Live: the WAL amortization is a property of the backing store's
    // fsync cost — warn-only, because a tmpfs scratch dir has nothing
    // to amortize.
    let live_one = subq_bench::e13::wal_latency_arm(1, 64);
    let live_batch = subq_bench::e13::wal_latency_arm(32, 64);
    let live_amortization = live_one.per_txn_ns as f64 / live_batch.per_txn_ns as f64;
    if live_amortization < 4.5 {
        eprintln!(
            "warning: e13 live WAL amortization {live_amortization:.2}× below the 4.5× target (non-fatal: the scratch filesystem may have free fsyncs)"
        );
    }
    checked
}

/// The E14 server bounds. Wall-clock follows the E11/E12 scheme —
/// core-clamped gates on the committed table, anti-collapse live:
///
/// * **fleet scaling**: the committed 4-client mixed-traffic speedup
///   over 1 client must reach `clamp(0.45 × cores, 0.7, 4.0)` for the
///   cores the table records — full scaling only with cores to scale
///   onto, and never a collapse below ~1× (queries run on lock-free
///   readers; only the write minority serializes on the single writer);
/// * **no typed errors**: every committed row (all three arms) must
///   record zero `ERR` replies — mixed churn+query traffic over a valid
///   trace never produces one;
/// * **saturation sheds as BUSY**: the committed saturation row (8
///   write-heavy clients against a write queue of 1) must record at
///   least one `BUSY` — admission control visibly engaged — while still
///   completing every operation;
/// * **live anti-collapse**: a live 4-vs-1-client re-measurement (best
///   of three) hard-fails only below the 0.5× floor — only a wedged
///   worker pool or a serialized read path does that; the core-scaled
///   target is printed as a warning when missed, wall-clock on a shared
///   runner being noisy.
fn e14_checks(failures: &mut Vec<String>) -> usize {
    let baseline = std::fs::read_to_string("BENCH_e14.json").unwrap_or_else(|error| {
        panic!("cannot read BENCH_e14.json (run from the repository root): {error}")
    });
    let mut checked = 0usize;
    let mut saw_saturation = false;
    for line in baseline.lines() {
        if !line.contains("\"e14_server\"") {
            continue;
        }
        let arm = field(line, "arm").expect("arm field");
        let errors: usize = field(line, "errors")
            .expect("errors field")
            .parse()
            .expect("numeric errors");
        if errors != 0 {
            failures.push(format!(
                "e14 committed table: {arm} row records {errors} typed ERR replies (must be 0)"
            ));
        }
        match arm {
            "mixed" => {
                let clients: usize = field(line, "clients")
                    .expect("clients field")
                    .parse()
                    .expect("numeric clients");
                let cores: usize = field(line, "cores")
                    .expect("cores field")
                    .parse()
                    .expect("numeric cores");
                let speedup: f64 = field(line, "speedup_vs_1")
                    .expect("speedup_vs_1 field")
                    .parse()
                    .expect("numeric speedup_vs_1");
                let bound = (0.45 * cores as f64).clamp(0.7, 4.0);
                if clients == 4 && speedup < bound {
                    failures.push(format!(
                        "e14 committed table: 4-client speedup {speedup:.2}× below the {bound:.2}× bound for its {cores} recorded cores"
                    ));
                }
            }
            "queue_depth" => {}
            "saturation" => {
                saw_saturation = true;
                let busy: usize = field(line, "busy")
                    .expect("busy field")
                    .parse()
                    .expect("numeric busy");
                if busy == 0 {
                    failures.push(
                        "e14 committed table: the saturation row records zero BUSY replies — admission control never engaged"
                            .to_string(),
                    );
                }
            }
            other => panic!("unknown arm `{other}` in BENCH_e14.json"),
        }
        checked += 1;
    }
    assert!(
        checked >= 9,
        "BENCH_e14.json yielded only {checked} rows; baseline looks truncated"
    );
    assert!(saw_saturation, "BENCH_e14.json lacks the saturation row");

    // Live: 1 vs 4 clients, anti-collapse floor only (the full
    // core-scaled bound is enforced on the committed table above).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let live_target = (0.35 * cores as f64).clamp(0.7, 4.0);
    let collapse_floor = 0.5;
    let mut best_live = 0.0f64;
    for attempt in 0..3 {
        let one = subq_bench::e14::mixed_arm(1, 64, 70, 120);
        let four = subq_bench::e14::mixed_arm(4, 64, 70, 120);
        for arm in [&one, &four] {
            if arm.errors != 0 {
                failures.push(format!(
                    "e14 live attempt {attempt} clients={}: {} typed ERR replies (must be 0)",
                    arm.clients, arm.errors
                ));
            }
        }
        best_live = best_live.max(four.ops_per_sec / one.ops_per_sec.max(1.0));
        if best_live >= live_target {
            break;
        }
    }
    if best_live < collapse_floor {
        failures.push(format!(
            "e14 live: best 4-client speedup {best_live:.2}× over 3 attempts below the {collapse_floor:.2}× anti-collapse floor — the serving path is serializing"
        ));
    } else if best_live < live_target {
        eprintln!(
            "warning: e14 live 4-client speedup {best_live:.2}× below the {live_target:.2}× core-scaled target for {cores} cores (non-fatal: wall-clock on a shared runner)"
        );
    }
    checked
}

/// The E15 advisor bounds. The headline claim — a store that starts with
/// **zero** materialized views and `--advisor auto` lands within ~2× of
/// a hand-tuned static catalog on the adversarial shifting workload —
/// follows the committed-hard/live-floor scheme:
///
/// * **zero manual DDL**: the committed auto row must record
///   `manual_ddl == 0` — the arm construction materializes nothing by
///   hand, and the gate pins that;
/// * **the advisor acted**: the committed auto row must record at least
///   one auto-materialization — an advisor that never fires trivially
///   "matches" hand-tuned only because this trace is small;
/// * **≤2× of hand-tuned**: the committed auto query p50 must stay
///   within `2× × max(1, 2/cores)` of the committed hand-tuned p50 —
///   the full 2× with ≥2 recorded cores, relaxed on a single-core
///   runner where client threads, workers, and the writer all contend
///   for one CPU;
/// * **no typed errors**: every committed row records zero `ERR`
///   replies — auto-materialization must never turn valid traffic into
///   errors;
/// * **live anti-collapse**: a live auto-vs-hand-tuned re-measurement
///   (best of three) must keep auto throughput above 0.25× of
///   hand-tuned and must materialize at least one view — only a wedged
///   advisor pass or a catalog-corrupting one falls below that.
fn e15_checks(failures: &mut Vec<String>) -> usize {
    use subq::oodb::AdvisorMode;

    let baseline = std::fs::read_to_string("BENCH_e15.json").unwrap_or_else(|error| {
        panic!("cannot read BENCH_e15.json (run from the repository root): {error}")
    });
    let mut checked = 0usize;
    let mut hand_p50: Option<u64> = None;
    let mut auto_p50: Option<(u64, usize)> = None;
    for line in baseline.lines() {
        if !line.contains("\"e15_advisor\"") {
            continue;
        }
        let arm = field(line, "arm").expect("arm field");
        let errors: usize = field(line, "errors")
            .expect("errors field")
            .parse()
            .expect("numeric errors");
        if errors != 0 {
            failures.push(format!(
                "e15 committed table: {arm} row records {errors} typed ERR replies (must be 0)"
            ));
        }
        let p50: u64 = field(line, "query_p50_ns")
            .expect("query_p50_ns field")
            .parse()
            .expect("numeric query_p50_ns");
        match arm {
            "hand_tuned" => hand_p50 = Some(p50),
            "cold" => {}
            "auto" => {
                let manual_ddl: usize = field(line, "manual_ddl")
                    .expect("manual_ddl field")
                    .parse()
                    .expect("numeric manual_ddl");
                let materialized: u64 = field(line, "auto_materialized")
                    .expect("auto_materialized field")
                    .parse()
                    .expect("numeric auto_materialized");
                let cores: usize = field(line, "cores")
                    .expect("cores field")
                    .parse()
                    .expect("numeric cores");
                if manual_ddl != 0 {
                    failures.push(format!(
                        "e15 committed table: auto row records {manual_ddl} manual DDL statements (must be 0 — the arm must win without hand tuning)"
                    ));
                }
                if materialized == 0 {
                    failures.push(
                        "e15 committed table: auto row records zero auto-materializations — the advisor never fired"
                            .to_string(),
                    );
                }
                auto_p50 = Some((p50, cores));
            }
            other => panic!("unknown arm `{other}` in BENCH_e15.json"),
        }
        checked += 1;
    }
    assert!(
        checked >= 3,
        "BENCH_e15.json yielded only {checked} rows; baseline looks truncated"
    );
    let hand_p50 = hand_p50.expect("BENCH_e15.json lacks the hand_tuned row");
    let (auto_p50, cores) = auto_p50.expect("BENCH_e15.json lacks the auto row");
    let ratio = auto_p50 as f64 / hand_p50.max(1) as f64;
    let bound = 2.0 * (2.0 / cores as f64).max(1.0);
    if ratio > bound {
        failures.push(format!(
            "e15 committed table: auto query p50 is {ratio:.2}× hand-tuned, above the {bound:.2}× bound for its {cores} recorded cores"
        ));
    }

    // Live: anti-collapse floor on throughput plus the advisor-activity
    // assertion (best of three — loopback wall-clock is noisy, but an
    // advisor that materializes nothing or collapses the serving path
    // fails every attempt).
    let floor = 0.25;
    let mut best_live = 0.0f64;
    let mut live_materialized = 0u64;
    for attempt in 0..3 {
        let hand = subq_bench::e15::advisor_arm("hand_tuned", AdvisorMode::Off, true, 2, 300);
        let auto = subq_bench::e15::advisor_arm("auto", AdvisorMode::Auto, false, 2, 300);
        for arm in [&hand, &auto] {
            if arm.errors != 0 {
                failures.push(format!(
                    "e15 live attempt {attempt} arm={}: {} typed ERR replies (must be 0)",
                    arm.arm, arm.errors
                ));
            }
        }
        live_materialized = live_materialized.max(auto.auto_materialized);
        best_live = best_live.max(auto.ops_per_sec / hand.ops_per_sec.max(1.0));
        if best_live >= 1.0 && live_materialized > 0 {
            break;
        }
    }
    if live_materialized == 0 {
        failures.push(
            "e15 live: the auto arm materialized zero views over 3 attempts — the advisor never fired"
                .to_string(),
        );
    }
    if best_live < floor {
        failures.push(format!(
            "e15 live: best auto-vs-hand-tuned throughput {best_live:.2}× over 3 attempts below the {floor:.2}× anti-collapse floor — auto-materialization is wrecking the serving path"
        ));
    }
    checked
}

/// The advisor-observation overhead gate: with `--advisor observe`, every
/// reader pays one relaxed flag load plus a shape normalization and ring
/// push per query — the acceptance bound says that costs ≤2% on the E14
/// stationary mixed path. Wall-clock over loopback TCP is noisy, so the
/// scheme mirrors [`overhead_checks`]: interleaved best-of-5 pairs, three
/// attempts, the 2% target printed as a warning when missed and only a
/// 10% blowout failing hard (a real per-query regression — an allocation
/// storm, a lock on the read path — blows far past 10%).
fn advisor_observe_overhead_checks(failures: &mut Vec<String>) {
    use subq::oodb::AdvisorMode;

    const TARGET: f64 = 1.02;
    const CEILING: f64 = 1.10;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let (mut observe, mut off) = (f64::MAX, f64::MAX);
        for _ in 0..5 {
            let on_row = subq_bench::e14::mixed_arm_advisor(2, 64, 70, 120, AdvisorMode::Observe);
            let off_row = subq_bench::e14::mixed_arm_advisor(2, 64, 70, 120, AdvisorMode::Off);
            // Per-op wall-clock, lower is better; keep each side's best.
            observe = observe.min(1e9 / on_row.ops_per_sec.max(1.0));
            off = off.min(1e9 / off_row.ops_per_sec.max(1.0));
        }
        best = best.min(observe / off);
        if best <= TARGET {
            break;
        }
    }
    if best > CEILING {
        failures.push(format!(
            "advisor overhead: observe-mode E14 mixed traffic is {best:.3}× the advisor-off baseline (hard ceiling {CEILING:.2}×) — shape recording is not cheap"
        ));
    } else if best > TARGET {
        eprintln!(
            "warning: advisor observe overhead {best:.3}× above the {TARGET:.2}× target (non-fatal: loopback wall-clock on a shared runner)"
        );
    }
}

/// The instrumentation-overhead gate: telemetry must be free when
/// unread. The two hottest instrumented paths — the E8 memoized repeat
/// plan (counter bumps in the subsumption cache plus the plan-latency
/// span) and the E13 durable commit (WAL fsync span plus batch-size
/// histogram) — are timed with telemetry spans enabled and disabled.
/// Counters are always-on relaxed atomics on both sides; `set_enabled`
/// gates only the span clock reads, which is exactly the cost this
/// bounds. Measurements are interleaved best-of-5 pairs so scheduler
/// noise hits both sides alike, with three attempts before the 10%
/// ceiling fails hard.
fn overhead_checks(failures: &mut Vec<String>) {
    const CEILING: f64 = 1.10;
    let (mut odb, query) = subq_bench::e8::repeat_plan_setup();
    let mut best_plan = f64::INFINITY;
    for _ in 0..3 {
        let (mut on, mut off) = (u64::MAX, u64::MAX);
        for _ in 0..5 {
            subq::telemetry::set_enabled(true);
            on = on.min(subq_bench::e8::repeat_plan_ns(&mut odb, &query, 64));
            subq::telemetry::set_enabled(false);
            off = off.min(subq_bench::e8::repeat_plan_ns(&mut odb, &query, 64));
        }
        best_plan = best_plan.min(on as f64 / off.max(1) as f64);
        if best_plan <= CEILING {
            break;
        }
    }
    let mut best_commit = f64::INFINITY;
    for _ in 0..3 {
        let (mut on, mut off) = (u128::MAX, u128::MAX);
        for _ in 0..3 {
            subq::telemetry::set_enabled(true);
            on = on.min(subq_bench::e13::commit_latency_arm(8, 192).per_commit_ns);
            subq::telemetry::set_enabled(false);
            off = off.min(subq_bench::e13::commit_latency_arm(8, 192).per_commit_ns);
        }
        best_commit = best_commit.min(on as f64 / off.max(1) as f64);
        if best_commit <= CEILING {
            break;
        }
    }
    subq::telemetry::set_enabled(true);
    if best_plan > CEILING {
        failures.push(format!(
            "overhead: instrumented E8 repeat plan is {best_plan:.3}× the disabled baseline (ceiling {CEILING:.2}×) — telemetry is not free when unread"
        ));
    }
    if best_commit > CEILING {
        failures.push(format!(
            "overhead: instrumented E13 durable commit is {best_commit:.3}× the disabled baseline (ceiling {CEILING:.2}×) — telemetry is not free when unread"
        ));
    }
}

fn main() {
    let baseline = std::fs::read_to_string("BENCH_e5.json").unwrap_or_else(|error| {
        panic!("cannot read BENCH_e5.json (run from the repository root): {error}")
    });
    type Family = fn(usize) -> ScalingInstance;
    let families: [(&str, Family); 4] = [
        ("path_depth", path_depth_instance),
        ("conjunction_width", conjunction_width_instance),
        ("schema_size", schema_size_instance),
        ("view_growth", view_growth_instance),
    ];

    let mut checked = 0usize;
    let mut failures = Vec::new();
    for row in baseline.lines() {
        if !row.contains("\"e5_polynomial_scaling\"") {
            continue;
        }
        let family_name = field(row, "family").expect("family field");
        let n: usize = field(row, "n")
            .expect("n field")
            .parse()
            .expect("numeric n");
        let ceiling: usize = field(row, "examined_delta")
            .expect("examined_delta field")
            .parse()
            .expect("numeric examined_delta");
        let (_, family) = families
            .iter()
            .find(|(name, _)| *name == family_name)
            .unwrap_or_else(|| panic!("unknown family `{family_name}` in BENCH_e5.json"));
        let mut instance = family(n);
        let (subsumed, stats) = run_instance(&mut instance);
        assert!(subsumed, "{family_name} n={n} must stay subsumed");
        let allowed = ceiling + ceiling * SLACK_PERCENT / 100;
        if stats.constraints_examined > allowed {
            failures.push(format!(
                "{family_name} n={n}: examined {} > committed ceiling {ceiling} (+{SLACK_PERCENT}% slack = {allowed})",
                stats.constraints_examined
            ));
        }
        checked += 1;
    }
    assert!(
        checked >= 16,
        "BENCH_e5.json yielded only {checked} rows; baseline looks truncated"
    );
    let e9_checked = e9_checks(&mut failures);
    let e10_checked = e10_checks(&mut failures);
    let e11_checked = e11_checks(&mut failures);
    let e12_checked = e12_checks(&mut failures);
    let e13_checked = e13_checks(&mut failures);
    let e14_checked = e14_checks(&mut failures);
    let e15_checked = e15_checks(&mut failures);
    advisor_observe_overhead_checks(&mut failures);
    overhead_checks(&mut failures);
    if !failures.is_empty() {
        eprintln!("perf regressions:");
        for failure in &failures {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    }
    println!(
        "perf smoke OK: {checked} E5 instances within committed examined_delta ceilings, \
         {e9_checked} E9 instances within committed lattice-probe ceilings (hierarchical N=50 ≤ 50% of flat), \
         {e10_checked} E10 instances within committed incremental membership-evaluation ceilings (10k×50 ≥ 10× fewer than full), \
         {e11_checked} E11 rows within the concurrency bounds (core-scaled 8-reader speedup, zero post-warmup saturations), \
         {e12_checked} E12 rows within the physical-layer bounds (≥5× dense bitmap intersection, core-scaled scatter-gather, cost-based plans within 10% of best enumerated), \
         {e13_checked} E13 rows within the durability bounds (≥5× group-commit amortization at batch 32, ≥5× image+suffix recovery at 64k entries, ≤200 B/object images), \
         {e14_checked} E14 rows within the server bounds (core-scaled 4-client mixed-traffic speedup, saturation shed as typed BUSY, zero typed errors), \
         {e15_checked} E15 rows within the advisor bounds (auto within core-clamped 2× of hand-tuned with zero manual DDL, the advisor visibly fired, observe-mode recording cheap), \
         and the instrumented E8 repeat-plan and E13 commit paths within 10% of the telemetry-disabled baseline"
    );
}
