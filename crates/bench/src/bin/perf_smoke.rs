//! Perf smoke check: the delta engine's `examined_delta` counters must not
//! regress past the ceilings recorded in the committed `BENCH_e5.json`.
//!
//! Counters (unlike wall-clock) are deterministic, so this is a hard
//! assertion suitable for CI: it re-runs every `(family, n)` instance of
//! the E5 table and fails if any instance examines more candidates than
//! the committed baseline allows (with a small slack for intentional
//! bookkeeping changes — a real complexity regression blows far past it).
//!
//! Run from the repository root (where `BENCH_e5.json` lives), *before*
//! regenerating the tables: `cargo run --release -p subq-bench --bin
//! perf_smoke`.

use subq::workload::scaling::{
    conjunction_width_instance, path_depth_instance, schema_size_instance, view_growth_instance,
};
use subq::workload::ScalingInstance;
use subq_bench::run_instance;

/// Allowed growth over the committed ceiling before the check fails.
const SLACK_PERCENT: usize = 10;

/// Extracts `"key": value` for a numeric or string value out of one flat
/// JSON row (the `BENCH_*.json` rows are flat objects on a single line).
fn field<'a>(row: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": ");
    let start = row.find(&needle)? + needle.len();
    let rest = &row[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

fn main() {
    let baseline = std::fs::read_to_string("BENCH_e5.json").unwrap_or_else(|error| {
        panic!("cannot read BENCH_e5.json (run from the repository root): {error}")
    });
    type Family = fn(usize) -> ScalingInstance;
    let families: [(&str, Family); 4] = [
        ("path_depth", path_depth_instance),
        ("conjunction_width", conjunction_width_instance),
        ("schema_size", schema_size_instance),
        ("view_growth", view_growth_instance),
    ];

    let mut checked = 0usize;
    let mut failures = Vec::new();
    for row in baseline.lines() {
        if !row.contains("\"e5_polynomial_scaling\"") {
            continue;
        }
        let family_name = field(row, "family").expect("family field");
        let n: usize = field(row, "n")
            .expect("n field")
            .parse()
            .expect("numeric n");
        let ceiling: usize = field(row, "examined_delta")
            .expect("examined_delta field")
            .parse()
            .expect("numeric examined_delta");
        let (_, family) = families
            .iter()
            .find(|(name, _)| *name == family_name)
            .unwrap_or_else(|| panic!("unknown family `{family_name}` in BENCH_e5.json"));
        let mut instance = family(n);
        let (subsumed, stats) = run_instance(&mut instance);
        assert!(subsumed, "{family_name} n={n} must stay subsumed");
        let allowed = ceiling + ceiling * SLACK_PERCENT / 100;
        if stats.constraints_examined > allowed {
            failures.push(format!(
                "{family_name} n={n}: examined {} > committed ceiling {ceiling} (+{SLACK_PERCENT}% slack = {allowed})",
                stats.constraints_examined
            ));
        }
        checked += 1;
    }
    assert!(
        checked >= 16,
        "BENCH_e5.json yielded only {checked} rows; baseline looks truncated"
    );
    if !failures.is_empty() {
        eprintln!("examined_delta regressions:");
        for failure in &failures {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    }
    println!("perf smoke OK: {checked} E5 instances within committed examined_delta ceilings");
}
