//! Prints the E11 table: aggregate plan+answer throughput of the
//! snapshot-isolated read path at 1/2/4/8 reader threads with a
//! concurrent churn writer (committing and publishing a transaction
//! every ~1 ms), p50/p99 plan latency under that churn, and the
//! snapshot-publish cost versus transaction size. Writes the rows to
//! `BENCH_e11.json`; `perf_smoke` enforces the scalability bounds (see
//! its module doc for how the wall-clock bound scales with the cores the
//! machine actually has) and the deterministic zero-resaturation
//! invariant.
//!
//! Throughput and latency are wall-clock and machine-dependent — the
//! `cores` field records the parallelism available when the table was
//! generated, and the committed JSON must be read against it (a 1-core
//! container cannot show parallel speedup; an ≥8-core machine must show
//! ≥4× at 8 readers). `fresh_probes_after_warmup` is deterministic: the
//! read path performs **zero** fact saturations after warmup regardless
//! of thread count, churn, or snapshot swaps — scaling comes from not
//! redoing work, not from faster work.

use std::time::Duration;
use subq_bench::e11::{publish_cost_arm, throughput_arm};
use subq_bench::{json_object, json_str, write_json_rows};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let window = Duration::from_millis(400);
    let mut json_rows = Vec::new();

    println!("E11 — snapshot-isolated concurrent reads under churn ({cores} cores)");
    println!("| threads | ops | ops/s | speedup | p50 plan | p99 plan | snapshots adopted | fresh probes after warmup |");
    println!("|---|---|---|---|---|---|---|---|");

    let mut base_rate = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let row = throughput_arm(threads, window);
        let rate = row.total_ops as f64 / (row.elapsed_ns as f64 / 1e9);
        if threads == 1 {
            base_rate = rate;
        }
        let speedup = rate / base_rate.max(1.0);
        println!(
            "| {} | {} | {:.0} | {:.2}× | {:.1} µs | {:.1} µs | {} | {} |",
            row.threads,
            row.total_ops,
            rate,
            speedup,
            row.p50_plan_ns as f64 / 1e3,
            row.p99_plan_ns as f64 / 1e3,
            row.snapshots_adopted,
            row.fresh_probes_after_warmup,
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e11_concurrency")),
            ("cores", cores.to_string()),
            ("threads", row.threads.to_string()),
            ("total_ops", row.total_ops.to_string()),
            ("elapsed_ns", row.elapsed_ns.to_string()),
            ("ops_per_s", format!("{rate:.0}")),
            ("speedup_vs_1", format!("{speedup:.3}")),
            ("p50_plan_ns", row.p50_plan_ns.to_string()),
            ("p99_plan_ns", row.p99_plan_ns.to_string()),
            ("snapshots_adopted", row.snapshots_adopted.to_string()),
            (
                "fresh_probes_after_warmup",
                row.fresh_probes_after_warmup.to_string(),
            ),
        ]));
    }

    println!();
    println!("Snapshot publish cost vs transaction size (10k-object store, 12 views):");
    println!("| txn ops | publish |");
    println!("|---|---|");
    for txn_ops in [1usize, 8, 64, 512] {
        let publish_ns = publish_cost_arm(txn_ops);
        println!("| {} | {:.1} µs |", txn_ops, publish_ns as f64 / 1e3);
        json_rows.push(json_object(&[
            ("experiment", json_str("e11_publish_cost")),
            ("cores", cores.to_string()),
            ("txn_ops", txn_ops.to_string()),
            ("publish_ns", publish_ns.to_string()),
        ]));
    }

    write_json_rows("BENCH_e11.json", &json_rows);
    println!();
    println!("Readers plan and answer over immutable snapshots with no locks and no");
    println!("writer involvement; the writer maintains views incrementally (in parallel");
    println!("across independent lattice components) and publishes with one atomic swap,");
    println!("whose cost tracks the shards a transaction touched, not the store size.");
}
