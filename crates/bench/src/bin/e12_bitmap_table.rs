//! E12: the physical layer — compressed bitmap extents, cardinality
//! statistics, and sharded scatter-gather evaluation.
//!
//! Four arms, all over the same store primitives the engine runs on:
//!
//! 1. **Intersection throughput** — two ≈100k-id candidate sets
//!    intersected as compressed bitmaps versus the ordered-set
//!    (`BTreeSet`) baseline, across occupancy densities. The acceptance
//!    gate is ≥5× at the dense end.
//! 2. **Scatter-gather** — full evaluation of a path view over a
//!    400k-object store with the worker count forced to 1/2/4/8 id-range
//!    shards. Answers must be identical at every shard count; the
//!    speedup is core-bound, so the table records the cores it ran on.
//! 3. **Plan quality** — on the seeded E9 catalogs (tree, chain,
//!    diamond, flat × 50 views), the cost-based view choice versus every
//!    enumerable subsuming view: worst `chosen/best`
//!    candidates-examined ratio, and how often the choice was worse than
//!    the smallest-extension heuristic (must be never).
//! 4. **Large-store latency** — p50/p99 of plan+execute over the view
//!    queries of a 1M-object store, sub-ms on ≥4-core hardware
//!    (core-proportionally relaxed below).
//!
//! Counters and ratios are deterministic; wall-clock columns are
//! machine-bound. Rows land in `BENCH_e12.json` with the core count so
//! `perf_smoke` can enforce the bounds proportionally.

use subq::workload::FamilyShape;
use subq_bench::e12::{intersect_arm, latency_arm, plan_quality_arm, scatter_arm, scatter_setup};
use subq_bench::{json_object, json_str, row, write_json_rows};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json_rows = Vec::new();

    // Arm 1: intersection throughput versus density.
    println!("E12a: candidate-set intersection, compressed bitmap vs ordered set (n≈100k)");
    println!();
    let headers = [
        "density",
        "universe",
        "|a∩b|",
        "bitmap ns/op",
        "btree ns/op",
        "speedup",
    ];
    println!("{}", row(&headers.map(String::from)));
    println!("{}", row(&headers.map(|_| "---".into())));
    for density in [90, 10, 1] {
        let r = intersect_arm(density);
        println!(
            "{}",
            row(&[
                format!("{density}%"),
                r.universe.to_string(),
                r.intersection.to_string(),
                r.bitmap_ns.to_string(),
                r.btree_ns.to_string(),
                format!("{:.1}×", r.speedup),
            ])
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e12_bitmap")),
            ("arm", json_str("intersect")),
            ("density_percent", density.to_string()),
            ("universe", r.universe.to_string()),
            ("n", r.n.to_string()),
            ("intersection", r.intersection.to_string()),
            ("bitmap_ns", r.bitmap_ns.to_string()),
            ("btree_ns", r.btree_ns.to_string()),
            ("speedup", format!("{:.2}", r.speedup)),
        ]));
    }

    // Arm 2: scatter-gather speedup versus shard count.
    println!();
    println!("E12b: scatter-gather path-view evaluation, 400k objects ({cores} cores)");
    println!();
    let headers = ["shards", "eval ns", "answers", "speedup vs 1"];
    println!("{}", row(&headers.map(String::from)));
    println!("{}", row(&headers.map(|_| "---".into())));
    let (db, query) = scatter_setup(400_000);
    let mut base_ns = 0u128;
    let mut base_answers = 0usize;
    for workers in [1usize, 2, 4, 8] {
        let r = scatter_arm(&db, &query, workers);
        if workers == 1 {
            base_ns = r.elapsed_ns;
            base_answers = r.answers;
        }
        assert_eq!(
            r.answers, base_answers,
            "scatter-gather must be shard-count invariant"
        );
        let speedup = base_ns as f64 / r.elapsed_ns as f64;
        println!(
            "{}",
            row(&[
                workers.to_string(),
                r.elapsed_ns.to_string(),
                r.answers.to_string(),
                format!("{speedup:.2}×"),
            ])
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e12_bitmap")),
            ("arm", json_str("scatter")),
            ("workers", workers.to_string()),
            ("cores", cores.to_string()),
            ("elapsed_ns", r.elapsed_ns.to_string()),
            ("answers", r.answers.to_string()),
            ("speedup_vs_1", format!("{speedup:.2}")),
        ]));
    }
    drop(db);

    // Arm 3: cost-model plan quality on the E9 catalog shapes.
    println!();
    println!("E12c: cost-based view choice vs enumerated alternatives (E9 catalogs, 50 views)");
    println!();
    let headers = [
        "shape",
        "queries",
        "chosen cand.",
        "best cand.",
        "worst ratio",
        "worse than smallest-ext",
    ];
    println!("{}", row(&headers.map(String::from)));
    println!("{}", row(&headers.map(|_| "---".into())));
    for shape in [
        FamilyShape::Tree,
        FamilyShape::Chain,
        FamilyShape::Diamond,
        FamilyShape::Flat,
    ] {
        let r = plan_quality_arm(shape, 50);
        println!(
            "{}",
            row(&[
                r.shape.to_string(),
                r.queries.to_string(),
                r.chosen_candidates.to_string(),
                r.best_candidates.to_string(),
                format!("{:.3}", r.worst_ratio),
                r.worse_than_smallest.to_string(),
            ])
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e12_bitmap")),
            ("arm", json_str("plan_quality")),
            ("shape", json_str(r.shape)),
            ("views", r.views.to_string()),
            ("queries", r.queries.to_string()),
            ("chosen_candidates", r.chosen_candidates.to_string()),
            ("best_candidates", r.best_candidates.to_string()),
            ("worst_ratio", format!("{:.3}", r.worst_ratio)),
            ("worse_than_smallest", r.worse_than_smallest.to_string()),
        ]));
    }

    // Arm 4: plan+execute latency on the 1M-object store.
    println!();
    println!("E12d: plan+execute latency, 1M objects, 64 views ({cores} cores)");
    println!();
    let r = latency_arm(1_000_000, 256);
    let headers = ["objects", "views", "ops", "p50 ns", "p99 ns"];
    println!("{}", row(&headers.map(String::from)));
    println!("{}", row(&headers.map(|_| "---".into())));
    println!(
        "{}",
        row(&[
            r.objects.to_string(),
            r.views.to_string(),
            r.ops.to_string(),
            r.p50_ns.to_string(),
            r.p99_ns.to_string(),
        ])
    );
    json_rows.push(json_object(&[
        ("experiment", json_str("e12_bitmap")),
        ("arm", json_str("latency")),
        ("objects", r.objects.to_string()),
        ("views", r.views.to_string()),
        ("cores", cores.to_string()),
        ("ops", r.ops.to_string()),
        ("p50_ns", r.p50_ns.to_string()),
        ("p99_ns", r.p99_ns.to_string()),
    ]));

    write_json_rows("BENCH_e12.json", &json_rows);
}
