//! Prints the E7 table: agreement between the polynomial calculus and the
//! Chandra–Merlin containment oracle on random QL pairs (empty schema), and
//! the positive-answer rates on pairs that are subsumed by construction.

use subq::calculus::SubsumptionChecker;
use subq::concepts::Schema;
use subq::conjunctive::{concept_to_cq, contains};
use subq::workload::{random_pair, subsumed_pair, RandomConceptParams};

fn main() {
    let schema = Schema::new();
    let checker = SubsumptionChecker::new(&schema);
    println!("E7 — the structural calculus versus conjunctive-query containment (empty schema)");
    println!("| depth | pairs | agreement | positives (calculus) | positives (CQ oracle) | constructed-subsumed detected |");
    println!("|---|---|---|---|---|---|");
    for depth in [2usize, 3] {
        let params = RandomConceptParams {
            max_depth: depth,
            ..RandomConceptParams::default()
        };
        let total = 300u64;
        let mut agree = 0usize;
        let mut calc_pos = 0usize;
        let mut cq_pos = 0usize;
        for seed in 0..total {
            let (mut env, q, v) = random_pair(seed, params);
            let calc = checker.subsumes(&mut env.arena, q, v);
            let cq = contains(&concept_to_cq(&env.arena, q), &concept_to_cq(&env.arena, v));
            if calc == cq {
                agree += 1;
            }
            calc_pos += usize::from(calc);
            cq_pos += usize::from(cq);
        }
        let mut detected = 0usize;
        for seed in 0..total {
            let (mut env, q, v) = subsumed_pair(seed, params);
            detected += usize::from(checker.subsumes(&mut env.arena, q, v));
        }
        println!(
            "| {depth} | {total} | {agree}/{total} | {calc_pos} | {cq_pos} | {detected}/{total} |"
        );
    }
    println!(
        "\nThe calculus and the NP-complete oracle agree on every pair (Theorem 4.7 with Σ = ∅),"
    );
    println!("and every constructed subsumption is detected — the paper's 'hit rate' on the structural fragment is 100%.");
}
