//! E15: the workload-adaptive view advisor under an adversarial
//! phase-shifting mixed workload over loopback TCP.
//!
//! Three arms, all through the real wire path against the same seeded
//! trace (12 declared views over 8 classes, 85%-query traffic whose hot
//! window of 3 views rotates every 120 ops per client):
//!
//! 1. **hand_tuned** — every view materialized up front by hand (12
//!    manual DDL statements), advisor off. The static oracle baseline:
//!    it pays maintenance for the whole catalog but never misses.
//! 2. **cold** — zero materialized views, advisor off. Every query
//!    evaluates from scratch; this is the floor the advisor must beat.
//! 3. **auto** — zero materialized views, `--advisor auto` with a 10 ms
//!    pass interval. The advisor mines the query stream, materializes
//!    the winners under the gain score, and evicts views that go cold
//!    when the hot window rotates away. Zero manual DDL by construction.
//!
//! The headline ratio is the auto arm's query p50 over the hand-tuned
//! arm's; `perf_smoke` gates it (core-clamped) at ~2× on the committed
//! table and re-checks the anti-collapse floor live, plus the
//! zero-manual-DDL and advisor-activity assertions.

use subq::oodb::AdvisorMode;
use subq_bench::e15::advisor_arm;
use subq_bench::{json_object, json_str, row, write_json_rows};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let clients = 4usize;
    let ops = 600usize;
    let mut json_rows = Vec::new();

    println!("E15: shifting mixed workload (85% query, hot window rotates) — {cores} cores");
    println!();
    let headers = [
        "arm",
        "manual DDL",
        "auto mat.",
        "auto evict",
        "rej. subsumed",
        "ops/s",
        "query p50 ns",
        "query p99 ns",
        "vs hand-tuned",
    ];
    println!("{}", row(&headers.map(String::from)));
    println!("{}", row(&headers.map(|_| "---".into())));

    let arms = [
        ("hand_tuned", AdvisorMode::Off, true),
        ("cold", AdvisorMode::Off, false),
        ("auto", AdvisorMode::Auto, false),
    ];
    let mut hand_tuned_p50 = 0u64;
    for (arm, mode, tuned) in arms {
        let r = advisor_arm(arm, mode, tuned, clients, ops);
        if arm == "hand_tuned" {
            hand_tuned_p50 = r.query_p50_ns.max(1);
        }
        let ratio = r.query_p50_ns as f64 / hand_tuned_p50.max(1) as f64;
        println!(
            "{}",
            row(&[
                arm.to_owned(),
                r.manual_ddl.to_string(),
                r.auto_materialized.to_string(),
                r.auto_evicted.to_string(),
                r.rejected_subsumed.to_string(),
                format!("{:.0}", r.ops_per_sec),
                r.query_p50_ns.to_string(),
                r.query_p99_ns.to_string(),
                format!("{ratio:.2}×"),
            ])
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e15_advisor")),
            ("arm", json_str(arm)),
            ("clients", clients.to_string()),
            ("cores", cores.to_string()),
            ("ops", r.ops.to_string()),
            ("queries", r.queries.to_string()),
            ("txns", r.txns.to_string()),
            ("errors", r.errors.to_string()),
            ("manual_ddl", r.manual_ddl.to_string()),
            ("auto_materialized", r.auto_materialized.to_string()),
            ("auto_evicted", r.auto_evicted.to_string()),
            ("rejected_subsumed", r.rejected_subsumed.to_string()),
            ("ops_per_sec", format!("{:.1}", r.ops_per_sec)),
            ("query_p50_ns", r.query_p50_ns.to_string()),
            ("query_p99_ns", r.query_p99_ns.to_string()),
            ("p50_vs_hand_tuned", format!("{ratio:.3}")),
        ]));
    }

    write_json_rows("BENCH_e15.json", &json_rows);
}
