//! Prints the E6 table: the cost counters of complete reasoning for the
//! harmful extensions of Section 4.4, next to the polynomial core.

use subq::calculus::SubsumptionChecker;
use subq::concepts::Vocabulary;
use subq::extensions::expansion::{
    expand_and_detect, filler_demand, inverse_chain, qualified_chain, unqualified_chain,
};
use subq::extensions::propositional::{independent_choices, prop_subsumes};
use subq::workload::scaling::view_growth_instance;
use subq_bench::{json_object, json_str, write_json_rows};

fn main() {
    let mut json_rows = Vec::new();
    println!("E6 — the tractability frontier of Section 4.4");
    println!("| n | core calculus individuals | ∃P.A filler demand | SL approximation | P⁻¹ expansion individuals | ⊔ valuations |");
    println!("|---|---|---|---|---|---|");
    for n in 1..=10usize {
        let mut instance = view_growth_instance(n);
        let checker = SubsumptionChecker::new(&instance.schema);
        let outcome = checker.check(&mut instance.arena, instance.query, instance.view);
        assert!(outcome.subsumed());

        let mut voc = Vocabulary::new();
        let (qschema, qroot) = qualified_chain(&mut voc, n);
        let qualified = filler_demand(&qschema, qroot, n);
        let mut voc = Vocabulary::new();
        let (uschema, uroot) = unqualified_chain(&mut voc, n);
        let unqualified = filler_demand(&uschema, uroot, n);

        let mut voc = Vocabulary::new();
        let (ischema, iroot, itarget) = inverse_chain(&mut voc, n);
        let expansion = expand_and_detect(&ischema, iroot, n);
        assert!(expansion.root_classes.contains(&itarget));

        let mut voc = Vocabulary::new();
        let choices = independent_choices(&mut voc, n.min(16));
        let prop = prop_subsumes(&choices, &choices).expect("propositional");

        println!(
            "| {n} | {} | {qualified} | {unqualified} | {} | {} |",
            outcome.stats.individuals, expansion.individuals_created, prop.valuations
        );
        json_rows.push(json_object(&[
            ("experiment", json_str("e6_extension_blowup")),
            ("n", n.to_string()),
            ("core_individuals", outcome.stats.individuals.to_string()),
            (
                "core_examined",
                outcome.stats.constraints_examined.to_string(),
            ),
            ("qualified_filler_demand", qualified.to_string()),
            ("unqualified_filler_demand", unqualified.to_string()),
            (
                "inverse_expansion_individuals",
                expansion.individuals_created.to_string(),
            ),
            ("disjunction_valuations", prop.valuations.to_string()),
        ]));
    }
    write_json_rows("BENCH_e6.json", &json_rows);
    println!("\nThe core column grows linearly; the extension columns double with every step,");
    println!("matching Propositions 4.10 and 4.12.");
}
