//! Prints the E10 table: incremental versus full view maintenance after a
//! single-object update — log deltas consumed, candidate objects
//! examined, membership conditions evaluated (the headline column),
//! lattice prunes, and refresh wall-clock — across database sizes and
//! catalog sizes. Writes the rows to `BENCH_e10.json`; `perf_smoke`
//! asserts the committed membership-evaluation ceilings do not regress
//! and enforces the ≥10× acceptance bound at 10k objects × 50 views.
//!
//! Membership counts are deterministic (seeded workloads,
//! counter-based); wall-clock is single-shot measurement for orientation
//! only.

use subq_bench::{e10_maintenance_arm, json_object, json_str, write_json_rows};

fn main() {
    let mut json_rows = Vec::new();
    println!("E10 — incremental vs full refresh after a single-object update");
    println!(
        "| objects | views | deltas | candidates | inc memberships | pruned | full memberships | ratio | inc refresh | full refresh |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|");

    for objects in [100usize, 1_000, 10_000] {
        for views in [10usize, 50] {
            let row = e10_maintenance_arm(objects, views);
            let ratio = row.full_memberships as f64 / (row.inc_memberships as f64).max(1.0);
            println!(
                "| {} | {} | {} | {} | {} | {} | {} | {:.0}× | {:.1} µs | {:.1} µs |",
                row.objects,
                row.views,
                row.deltas,
                row.inc_candidates,
                row.inc_memberships,
                row.inc_prunes,
                row.full_memberships,
                ratio,
                row.inc_ns as f64 / 1e3,
                row.full_ns as f64 / 1e3,
            );
            json_rows.push(json_object(&[
                ("experiment", json_str("e10_maintenance")),
                ("objects", row.objects.to_string()),
                ("views", row.views.to_string()),
                ("deltas", row.deltas.to_string()),
                ("inc_candidates", row.inc_candidates.to_string()),
                ("inc_memberships", row.inc_memberships.to_string()),
                ("inc_prunes", row.inc_prunes.to_string()),
                ("full_memberships", row.full_memberships.to_string()),
                ("inc_refresh_ns", row.inc_ns.to_string()),
                ("full_refresh_ns", row.full_ns.to_string()),
            ]));
        }
    }

    write_json_rows("BENCH_e10.json", &json_rows);
    println!("\nIncremental maintenance touches only the views whose symbols the update's");
    println!("deltas mention and only candidate objects near the change; a full refresh");
    println!("re-checks every view's whole candidate set on every write.");
}
