//! Checkpoint images: one published state serialized into a single
//! atomically-replaced file.
//!
//! ```text
//! image  := magic:"SUBQCKPT"  format:u32
//!           schema_version:u64  data_version:u64  stats_version:u64
//!           model:str                      (DL surface syntax — the same
//!                                           text the parser round-trips)
//!           name_count:u32  str*           (object names in id order)
//!           extent_count:u32 (class:str  set:bytes)*
//!           attr_count:u32   (attr:str  posting_count:u32
//!                             (from:u32  set:bytes)*)*   (forward only;
//!                                           the reverse index and pair
//!                                           set are re-derived at load)
//!           view_count:u32   (name:str  fresh_as_of:u64  set:bytes)*
//!           edge_count:u32   (parent:str  child:str)*    (Hasse edges of
//!                                           the classified lattice)
//!           crc:u32                        (CRC32 of everything above)
//! set    := len:u32  bitmap-containers    (see croaring's serializer)
//! ```
//!
//! The image is written as `checkpoint_<version>.img.tmp`, fsynced, and
//! renamed into place — a crash leaves either the previous image or the
//! new one, never a torn hybrid, and the trailing CRC rejects bit rot.
//! View definitions are *not* stored: every view name denotes either a
//! declared query class or a schema class (materialized as the trivial
//! `isA C`), both recoverable from the model text, so the name is the
//! definition. The lattice edges are stored for verification — the
//! recovered catalog re-classifies from scratch (concept ids are bound
//! to the in-memory term arena and cannot survive a restart) and the
//! crash suite asserts the re-derived diagram matches the recorded one.

use super::codec::{crc32, put_bytes, put_str, put_u32, put_u64, Cursor};
use super::{DurableError, StorageBackend};
use crate::objset::ObjSet;
use crate::store::{Database, ObjId};
use crate::views::ViewCatalog;
use subq_dl::DlModel;

const MAGIC: &[u8; 8] = b"SUBQCKPT";
const FORMAT: u32 = 1;

/// The image file name of a checkpoint at `version` (zero-padded so
/// lexical and numeric order agree).
pub(crate) fn image_name(version: u64) -> String {
    format!("checkpoint_{version:020}.img")
}

/// Parses `checkpoint_<version>.img` back to its version.
pub(crate) fn image_version(name: &str) -> Option<u64> {
    name.strip_prefix("checkpoint_")?
        .strip_suffix(".img")?
        .parse()
        .ok()
}

/// A decoded checkpoint image.
pub(crate) struct CheckpointImage {
    pub(crate) schema_version: u64,
    pub(crate) data_version: u64,
    pub(crate) model: DlModel,
    pub(crate) names: Vec<String>,
    pub(crate) extents: Vec<(String, ObjSet)>,
    pub(crate) attrs: Vec<(String, Vec<(ObjId, ObjSet)>)>,
    /// `(view name, fresh_as_of, extension)` per materialized view.
    pub(crate) views: Vec<(String, u64, ObjSet)>,
    /// The recorded Hasse diagram, `(parent, child)` pairs.
    pub(crate) edges: Vec<(String, String)>,
}

/// Serializes the current state of `(db, catalog)` and writes it
/// atomically; returns the image's data version. The caller must have
/// refreshed every view through `db.data_version()` first (the engine
/// publishes before checkpointing), which is what justifies stamping
/// each view's `fresh_as_of` with the image version.
pub(crate) fn write_checkpoint(
    backend: &dyn StorageBackend,
    db: &Database,
    catalog: &ViewCatalog,
) -> Result<u64, DurableError> {
    let version = db.data_version();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, FORMAT);
    put_u64(&mut out, db.schema_version());
    put_u64(&mut out, version);
    // The statistics catalog derives from the delta log, so its version
    // is the data version the image captures.
    put_u64(&mut out, version);
    put_str(&mut out, &subq_dl::pretty::render_model(db.model()));

    let count = db.object_count();
    put_u32(&mut out, count as u32);
    for index in 0..count {
        put_str(&mut out, db.object_name(ObjId(index as u32)));
    }

    let extents = db.checkpoint_extents();
    put_u32(&mut out, extents.len() as u32);
    let mut scratch = Vec::new();
    for (class, set) in extents {
        put_str(&mut out, class);
        scratch.clear();
        set.serialize_into(&mut scratch);
        put_bytes(&mut out, &scratch);
    }

    let attrs = db.checkpoint_attrs();
    put_u32(&mut out, attrs.len() as u32);
    for (attr, postings) in attrs {
        put_str(&mut out, attr);
        put_u32(&mut out, postings.len() as u32);
        for (from, values) in postings {
            put_u32(&mut out, from.0);
            scratch.clear();
            values.serialize_into(&mut scratch);
            put_bytes(&mut out, &scratch);
        }
    }

    let views = catalog.snapshot();
    put_u32(&mut out, views.len() as u32);
    for view in &views {
        put_str(&mut out, &view.definition.name);
        put_u64(&mut out, version);
        scratch.clear();
        view.extent.serialize_into(&mut scratch);
        put_bytes(&mut out, &scratch);
    }

    let edges = catalog.lattice_edges();
    put_u32(&mut out, edges.len() as u32);
    for (parent, child) in &edges {
        put_str(&mut out, parent);
        put_str(&mut out, child);
    }

    let crc = crc32(&out);
    put_u32(&mut out, crc);
    backend.write_atomic(&image_name(version), &out)?;
    Ok(version)
}

/// Parses and validates an image; `None` on any structural damage —
/// recovery then falls back to an older image or reports corruption.
pub(crate) fn parse_image(bytes: &[u8]) -> Option<CheckpointImage> {
    if bytes.len() < MAGIC.len() + 4 {
        return None;
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
    if crc32(body) != stored_crc {
        return None;
    }
    let mut cursor = Cursor::new(body);
    if cursor.take(MAGIC.len())? != MAGIC || cursor.u32()? != FORMAT {
        return None;
    }
    let schema_version = cursor.u64()?;
    let data_version = cursor.u64()?;
    let _stats_version = cursor.u64()?;
    let model = subq_dl::parse_model(&cursor.str()?).ok()?;

    let name_count = cursor.u32()? as usize;
    let mut names = Vec::with_capacity(name_count.min(1 << 20));
    for _ in 0..name_count {
        names.push(cursor.str()?);
    }

    let extent_count = cursor.u32()? as usize;
    let mut extents = Vec::with_capacity(extent_count.min(1 << 20));
    for _ in 0..extent_count {
        let class = cursor.str()?;
        let set = ObjSet::deserialize(cursor.bytes()?)?;
        extents.push((class, set));
    }

    let attr_count = cursor.u32()? as usize;
    let mut attrs = Vec::with_capacity(attr_count.min(1 << 20));
    for _ in 0..attr_count {
        let attr = cursor.str()?;
        let posting_count = cursor.u32()? as usize;
        let mut postings = Vec::with_capacity(posting_count.min(1 << 20));
        for _ in 0..posting_count {
            let from = ObjId(cursor.u32()?);
            let values = ObjSet::deserialize(cursor.bytes()?)?;
            postings.push((from, values));
        }
        attrs.push((attr, postings));
    }

    let view_count = cursor.u32()? as usize;
    let mut views = Vec::with_capacity(view_count.min(1 << 20));
    for _ in 0..view_count {
        let name = cursor.str()?;
        let fresh_as_of = cursor.u64()?;
        let extent = ObjSet::deserialize(cursor.bytes()?)?;
        views.push((name, fresh_as_of, extent));
    }

    let edge_count = cursor.u32()? as usize;
    let mut edges = Vec::with_capacity(edge_count.min(1 << 20));
    for _ in 0..edge_count {
        let parent = cursor.str()?;
        let child = cursor.str()?;
        edges.push((parent, child));
    }

    cursor.done().then_some(CheckpointImage {
        schema_version,
        data_version,
        model,
        names,
        extents,
        attrs,
        views,
        edges,
    })
}

/// Drops every image strictly older than `version` (best effort — a
/// leftover stale image is harmless, recovery prefers the newest valid
/// one).
pub(crate) fn remove_images_before(backend: &dyn StorageBackend, version: u64) {
    let Ok(names) = backend.list() else {
        return;
    };
    for name in names {
        if image_version(&name).is_some_and(|v| v < version) {
            let _ = backend.remove(&name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::FaultyBackend;
    use super::*;
    use crate::store::tests::hospital;

    #[test]
    fn image_names_roundtrip_and_sort_numerically() {
        assert_eq!(image_version(&image_name(0)), Some(0));
        assert_eq!(image_version(&image_name(u64::MAX)), Some(u64::MAX));
        assert!(image_name(9) < image_name(10), "zero padding keeps order");
        assert_eq!(image_version("wal.log"), None);
        assert_eq!(image_version("checkpoint_x.img"), None);
    }

    #[test]
    fn images_roundtrip_and_reject_any_bit_flip() {
        let db = hospital();
        let catalog = ViewCatalog::new();
        let backend = FaultyBackend::new();
        let version = write_checkpoint(&backend, &db, &catalog).expect("write");
        assert_eq!(version, db.data_version());
        let bytes = backend
            .read(&image_name(version))
            .expect("read")
            .expect("exists");
        let image = parse_image(&bytes).expect("own image parses");
        assert_eq!(image.data_version, db.data_version());
        assert_eq!(image.schema_version, db.schema_version());
        assert_eq!(image.names.len(), db.object_count());
        assert_eq!(image.extents.len(), db.checkpoint_extents().len());
        assert!(image.views.is_empty());
        assert!(image.edges.is_empty());

        // Every single-bit corruption is caught by the trailing CRC (or
        // by structural validation when the flip hits the CRC itself).
        for offset in (0..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 0x04;
            assert!(parse_image(&corrupted).is_none(), "flip at {offset}");
        }
        // Truncations never panic.
        for cut in (0..bytes.len()).step_by(131) {
            assert!(parse_image(&bytes[..cut]).is_none(), "cut at {cut}");
        }
    }
}
