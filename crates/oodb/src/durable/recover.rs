//! Crash recovery: newest valid checkpoint image + WAL suffix replay.
//!
//! `open()` trusts nothing on disk it cannot verify. The newest image
//! whose CRC and structure validate seeds a [`Database`] through the
//! store's checkpoint loader; the WAL's valid record prefix (CRC-framed,
//! see [`super::codec`]) is replayed through the store's physical replay
//! path. The first torn or corrupt record ends the replay — its bytes
//! and everything after are truncated from the log, never interpreted —
//! so the recovered state is always the committed history cut at a
//! transaction boundary: no partial transaction, no phantom.

use super::checkpoint::{self, CheckpointImage};
use super::codec::{self, WalRecord};
use super::wal::WAL_FILE;
use super::{DurabilityStats, DurableError, StorageBackend};
use crate::objset::ObjSet;
use crate::store::Database;

/// What recovery hands back to [`crate::OptimizedDatabase::open`].
pub(crate) struct Recovered {
    /// The store at the recovered version (image state plus the replayed
    /// WAL suffix, its in-memory delta log holding exactly the suffix).
    pub(crate) db: Database,
    /// `(name, fresh_as_of, extension)` of every view the image carried.
    pub(crate) views: Vec<(String, u64, ObjSet)>,
    /// The Hasse diagram recorded at checkpoint time; re-classification
    /// must reproduce it.
    pub(crate) edges: Vec<(String, String)>,
    /// The image's data version (the WAL resumes from the recovered
    /// version, not from here).
    pub(crate) checkpoint_version: u64,
}

/// Replays `records` on top of a clone of `base`. Returns the replayed
/// store, how many leading records were consumed (applied, or skipped
/// as already covered by the image), how many of those were actually
/// applied, and whether the replay was clean — `false` means record
/// `consumed` was inconsistent (version gap, or a delta the state
/// rejects) and the caller must discard everything from it on.
fn replay(
    base: &Database,
    image_version: u64,
    records: &[WalRecord],
) -> (Database, usize, u64, bool) {
    let mut db = base.clone();
    let mut applied = 0u64;
    for (index, record) in records.iter().enumerate() {
        let end_version = record.start_version + record.deltas.len() as u64;
        if end_version <= image_version {
            // Fully covered by the checkpoint (a crash between the image
            // rename and the log truncation leaves such records behind).
            continue;
        }
        if record.start_version != db.data_version() {
            return (db, index, applied, false);
        }
        for (delta, name) in &record.deltas {
            if !db.apply_replayed(delta.clone(), name.as_deref()) {
                // The record framing was valid but the transaction does
                // not fit the state — mid-record, so the store now holds
                // a partial transaction. The caller re-replays the known
                // good prefix from scratch.
                return (db, index, applied, false);
            }
        }
        applied += 1;
    }
    (db, records.len(), applied, true)
}

/// Loads the newest valid durable state behind `backend`.
///
/// * `Ok(None)` — no checkpoint image exists: a fresh directory, the
///   caller initializes genesis state.
/// * `Ok(Some(..))` — recovered; the WAL on disk has been truncated to
///   the prefix the recovered state reflects.
/// * `Err(Corrupt)` — images exist but none validates: there is durable
///   history that cannot be trusted, which must not be silently
///   reinitialized.
pub(crate) fn recover(
    backend: &dyn StorageBackend,
    stats: &mut DurabilityStats,
) -> Result<Option<Recovered>, DurableError> {
    let mut image_versions: Vec<u64> = backend
        .list()?
        .iter()
        .filter_map(|name| checkpoint::image_version(name))
        .collect();
    if image_versions.is_empty() {
        return Ok(None);
    }
    image_versions.sort_unstable_by(|a, b| b.cmp(a));
    let mut image: Option<CheckpointImage> = None;
    for &version in &image_versions {
        if let Some(bytes) = backend.read(&checkpoint::image_name(version))? {
            if let Some(parsed) = checkpoint::parse_image(&bytes) {
                image = Some(parsed);
                break;
            }
        }
    }
    let Some(image) = image else {
        return Err(DurableError::Corrupt(
            "no checkpoint image validates".into(),
        ));
    };

    let wal_bytes = backend.read(WAL_FILE)?.unwrap_or_default();
    let (records, valid_len) = codec::decode_records(&wal_bytes);
    let boundaries = codec::record_boundaries(&wal_bytes[..valid_len]);

    let base = Database::from_checkpoint(
        image.model,
        image.schema_version,
        image.data_version,
        image.names,
        image.extents,
        image.attrs,
    )
    .ok_or_else(|| DurableError::Corrupt("checkpoint image state is inconsistent".into()))?;

    let (db, consumed, applied, clean) = match replay(&base, image.data_version, &records) {
        (db, consumed, applied, true) => (db, consumed, applied, true),
        (_, consumed, _, false) => {
            // Redo over the known good prefix only; every record in it
            // replayed successfully a moment ago, so this pass is clean.
            let (db, redone, applied, clean) =
                replay(&base, image.data_version, &records[..consumed]);
            debug_assert!(clean && redone == consumed, "prefix replay must be clean");
            (db, consumed, applied, false)
        }
    };
    stats.recovered_records += applied;

    // Cut the log back to the bytes the recovered state reflects: the
    // torn/corrupt byte tail past the valid prefix, plus any framed but
    // inconsistent records behind it.
    let keep = if clean {
        valid_len
    } else {
        boundaries[consumed]
    };
    if keep < wal_bytes.len() {
        stats.truncated_tail_bytes += (wal_bytes.len() - keep) as u64;
        backend.write_atomic(WAL_FILE, &wal_bytes[..keep])?;
    }

    Ok(Some(Recovered {
        db,
        views: image.views,
        edges: image.edges,
        checkpoint_version: image.data_version,
    }))
}

#[cfg(test)]
mod tests {
    use super::super::checkpoint::write_checkpoint;
    use super::super::FaultyBackend;
    use super::*;
    use crate::maintain::Delta;
    use crate::store::tests::hospital;
    use crate::store::ObjId;
    use crate::views::ViewCatalog;

    /// A backend holding a checkpoint of the hospital state and a WAL
    /// with two committed transactions on top.
    fn seeded() -> (FaultyBackend, Database) {
        let db = hospital();
        let backend = FaultyBackend::new();
        write_checkpoint(&backend, &db, &ViewCatalog::new()).expect("image");
        let mut after = db.clone();
        let mut wal = Vec::new();
        for batch in 0..2u32 {
            let start = after.data_version();
            let id = ObjId(after.object_count() as u32);
            let name = format!("extra{batch}");
            after.apply_replayed(Delta::AddObject { object: id }, Some(&name));
            after.apply_replayed(
                Delta::AssertClass {
                    object: id,
                    class: "Patient".into(),
                },
                None,
            );
            codec::encode_record(
                &WalRecord {
                    start_version: start,
                    deltas: vec![
                        (Delta::AddObject { object: id }, Some(name)),
                        (
                            Delta::AssertClass {
                                object: id,
                                class: "Patient".into(),
                            },
                            None,
                        ),
                    ],
                },
                &mut wal,
            );
        }
        backend.append(WAL_FILE, &wal).expect("append");
        (backend, after)
    }

    fn states_match(a: &Database, b: &Database) {
        assert_eq!(a.data_version(), b.data_version());
        assert_eq!(a.object_count(), b.object_count());
        for class in a.class_names() {
            assert_eq!(a.class_extent(class), b.class_extent(class), "{class}");
        }
        for attr in a.attribute_names() {
            assert_eq!(a.attr_pairs(attr), b.attr_pairs(attr), "{attr}");
        }
    }

    #[test]
    fn image_plus_suffix_recovers_the_committed_state() {
        let (backend, expected) = seeded();
        let mut stats = DurabilityStats::default();
        let recovered = recover(&backend, &mut stats)
            .expect("recovers")
            .expect("image exists");
        states_match(&recovered.db, &expected);
        assert_eq!(stats.recovered_records, 2);
        assert_eq!(stats.truncated_tail_bytes, 0);
        // The replayed suffix sits in the in-memory log, replayable from
        // the image version (what restored views refresh from).
        assert_eq!(
            recovered.db.delta_log().base_version(),
            recovered.checkpoint_version
        );
        assert_eq!(recovered.db.delta_log().len(), 4);
    }

    #[test]
    fn empty_backend_is_genesis_not_corruption() {
        let backend = FaultyBackend::new();
        let mut stats = DurabilityStats::default();
        assert!(recover(&backend, &mut stats).expect("ok").is_none());
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let (backend, expected) = seeded();
        let wal = backend.read(WAL_FILE).expect("read").expect("exists");
        let boundaries = codec::record_boundaries(&wal);
        for cut in 0..=wal.len() {
            let survivor = FaultyBackend::with_files(backend.surviving_files().into_iter().map(
                |(name, bytes)| match name.as_str() {
                    WAL_FILE => (name, wal[..cut].to_vec()),
                    _ => (name, bytes),
                },
            ));
            let mut stats = DurabilityStats::default();
            let recovered = recover(&survivor, &mut stats)
                .expect("recovers")
                .expect("image exists");
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(stats.recovered_records, whole as u64, "cut at {cut}");
            // The version is a transaction boundary of the committed
            // history: image version + 2 deltas per surviving record.
            assert_eq!(
                recovered.db.data_version(),
                recovered.checkpoint_version + 2 * whole as u64,
                "cut at {cut}"
            );
            if whole == 2 {
                states_match(&recovered.db, &expected);
            }
            // The on-disk WAL was truncated to the reflected prefix …
            let remaining = survivor.read(WAL_FILE).expect("read").unwrap_or_default();
            assert_eq!(remaining, wal[..boundaries[whole]], "cut at {cut}");
            assert_eq!(
                stats.truncated_tail_bytes,
                (cut - boundaries[whole]) as u64,
                "cut at {cut}"
            );
            // … so a second recovery is idempotent.
            let mut stats2 = DurabilityStats::default();
            let again = recover(&survivor, &mut stats2)
                .expect("recovers")
                .expect("image exists");
            states_match(&again.db, &recovered.db);
            assert_eq!(stats2.truncated_tail_bytes, 0, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_image_without_fallback_is_reported_not_reinitialized() {
        let (backend, _) = seeded();
        let image_name = backend
            .list()
            .expect("list")
            .into_iter()
            .find(|n| n.ends_with(".img"))
            .expect("image");
        assert!(backend.flip_bit(&image_name, 100, 2));
        let mut stats = DurabilityStats::default();
        match recover(&backend, &mut stats) {
            Err(DurableError::Corrupt(_)) => {}
            Err(other) => panic!("expected corruption, got {other}"),
            Ok(_) => panic!("a flipped image must not recover or reinitialize"),
        }
    }

    #[test]
    fn stale_records_below_the_image_version_are_skipped() {
        // A crash between writing the image and truncating the WAL: the
        // log still holds records the image already covers.
        let db = hospital();
        let backend = FaultyBackend::new();
        let mut wal = Vec::new();
        // Re-encode the hospital history itself as WAL records…
        let mut start = 0u64;
        let deltas: Vec<(Delta, Option<String>)> = db
            .delta_log()
            .since(0)
            .expect("full log")
            .map(|(_, d)| {
                let name = match d {
                    Delta::AddObject { object } => Some(db.object_name(*object).to_owned()),
                    _ => None,
                };
                (d.clone(), name)
            })
            .collect();
        for chunk in deltas.chunks(3) {
            codec::encode_record(
                &WalRecord {
                    start_version: start,
                    deltas: chunk.to_vec(),
                },
                &mut wal,
            );
            start += chunk.len() as u64;
        }
        backend.append(WAL_FILE, &wal).expect("append");
        // …and checkpoint the final state on top.
        write_checkpoint(&backend, &db, &ViewCatalog::new()).expect("image");
        let mut stats = DurabilityStats::default();
        let recovered = recover(&backend, &mut stats)
            .expect("recovers")
            .expect("image exists");
        states_match(&recovered.db, &db);
        assert_eq!(
            stats.recovered_records, 0,
            "records the image covers are skipped, not replayed"
        );
        assert_eq!(stats.truncated_tail_bytes, 0);
    }
}
