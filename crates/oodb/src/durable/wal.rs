//! The write-ahead log: append-only CRC-framed records with group
//! commit.
//!
//! One record per committed transaction ([`codec::WalRecord`]); the
//! append is buffered by the backend's page cache and made durable by
//! `fsync`. With `group_commit = n`, one fsync covers up to `n`
//! appended records — the classic amortization: the *log write* is
//! cheap, the *stable-storage barrier* is what costs, so sharing the
//! barrier across a batch divides the per-transaction durability price
//! by the batch size (experiment E13 measures the curve). Records
//! appended but not yet synced are exactly the commits an OS-level
//! crash may lose; a torn append among them is detected and truncated
//! by recovery, never replayed.

use super::codec::{self, WalRecord};
use super::{DurabilityStats, DurableError, StorageBackend};
use crate::maintain::Delta;
use std::sync::Arc;

/// The WAL file name inside the backend namespace.
pub const WAL_FILE: &str = "wal.log";

pub(crate) struct Wal {
    backend: Arc<dyn StorageBackend>,
    /// Records per fsync (≥ 1).
    group_commit: usize,
    /// Records appended since the last fsync.
    pending: usize,
    /// `data_version` after the last appended record.
    appended_version: u64,
    /// `data_version` after the last record covered by an fsync — the
    /// durability watermark.
    synced_version: u64,
}

impl Wal {
    /// A WAL positioned at `version` (everything at or below it already
    /// durable — just recovered or checkpointed).
    pub(crate) fn resume(
        backend: Arc<dyn StorageBackend>,
        group_commit: usize,
        version: u64,
    ) -> Self {
        Wal {
            backend,
            group_commit: group_commit.max(1),
            pending: 0,
            appended_version: version,
            synced_version: version,
        }
    }

    /// Appends one transaction and fsyncs when the batch is full.
    /// Returns the durability watermark after the call.
    pub(crate) fn append_commit(
        &mut self,
        start_version: u64,
        deltas: Vec<(Delta, Option<String>)>,
        stats: &mut DurabilityStats,
    ) -> Result<u64, DurableError> {
        debug_assert_eq!(
            start_version, self.appended_version,
            "WAL records must chain without version gaps"
        );
        let end_version = start_version + deltas.len() as u64;
        let record = WalRecord {
            start_version,
            deltas,
        };
        let mut bytes = Vec::new();
        codec::encode_record(&record, &mut bytes);
        self.backend.append(WAL_FILE, &bytes)?;
        stats.wal_records += 1;
        stats.wal_bytes += bytes.len() as u64;
        self.appended_version = end_version;
        self.pending += 1;
        if self.pending >= self.group_commit {
            self.sync(stats)?;
        }
        Ok(self.synced_version)
    }

    /// Forces the pending batch to stable storage; no-op when nothing
    /// is pending. Returns the durability watermark.
    pub(crate) fn sync(&mut self, stats: &mut DurabilityStats) -> Result<u64, DurableError> {
        if self.pending > 0 {
            let metrics = crate::metrics::metrics();
            metrics.wal_batch_records.record(self.pending as u64);
            {
                let _span = metrics.wal_fsync_ns.span();
                self.backend.sync(WAL_FILE)?;
            }
            stats.fsyncs += 1;
            if self.pending > 1 {
                stats.group_commits += 1;
            }
            self.pending = 0;
            self.synced_version = self.appended_version;
        }
        Ok(self.synced_version)
    }

    /// Empties the log after a checkpoint covered it: atomically
    /// replaces the file with zero bytes and repositions at `version`.
    pub(crate) fn reset(&mut self, version: u64) -> Result<(), DurableError> {
        self.backend.write_atomic(WAL_FILE, &[])?;
        self.pending = 0;
        self.appended_version = version;
        self.synced_version = version;
        Ok(())
    }

    /// The durability watermark: every commit at or below it survives
    /// any crash.
    #[cfg(test)]
    pub(crate) fn synced_version(&self) -> u64 {
        self.synced_version
    }
}

#[cfg(test)]
mod tests {
    use super::super::FaultyBackend;
    use super::*;
    use crate::store::ObjId;

    fn txn(start: u64, n: usize) -> Vec<(Delta, Option<String>)> {
        (0..n)
            .map(|i| {
                (
                    Delta::AddObject {
                        object: ObjId((start as usize + i) as u32),
                    },
                    Some(format!("o{}", start as usize + i)),
                )
            })
            .collect()
    }

    #[test]
    fn group_commit_amortizes_fsyncs_over_batches() {
        let backend = Arc::new(FaultyBackend::new());
        let mut wal = Wal::resume(backend.clone(), 4, 0);
        let mut stats = DurabilityStats::default();
        let mut version = 0u64;
        for _ in 0..7 {
            let watermark = wal
                .append_commit(version, txn(version, 1), &mut stats)
                .expect("append");
            version += 1;
            // Only the full batch (at commit 4) has synced so far.
            assert!(watermark <= version);
        }
        assert_eq!(stats.wal_records, 7);
        assert_eq!(stats.fsyncs, 1, "one full batch of four");
        assert_eq!(stats.group_commits, 1);
        assert_eq!(wal.synced_version(), 4);
        // An explicit sync drains the partial batch.
        assert_eq!(wal.sync(&mut stats).expect("sync"), 7);
        assert_eq!(stats.fsyncs, 2);
        assert_eq!(stats.group_commits, 2);
        // Every record is on the backend and parses back.
        let bytes = backend.read(WAL_FILE).expect("read").expect("exists");
        let (records, valid) = codec::decode_records(&bytes);
        assert_eq!(valid, bytes.len());
        assert_eq!(records.len(), 7);
        assert!(records
            .iter()
            .enumerate()
            .all(|(i, r)| r.start_version == i as u64));
    }

    #[test]
    fn batch_of_one_syncs_every_commit() {
        let backend = Arc::new(FaultyBackend::new());
        let mut wal = Wal::resume(backend, 1, 10);
        let mut stats = DurabilityStats::default();
        assert_eq!(
            wal.append_commit(10, txn(10, 3), &mut stats)
                .expect("append"),
            13
        );
        assert_eq!(
            wal.append_commit(13, txn(13, 2), &mut stats)
                .expect("append"),
            15
        );
        assert_eq!(stats.fsyncs, 2);
        assert_eq!(stats.group_commits, 0, "no batch held more than one record");
        assert_eq!(wal.synced_version(), 15);
    }

    #[test]
    fn reset_truncates_the_file_and_repositions() {
        let backend = Arc::new(FaultyBackend::new());
        let mut wal = Wal::resume(backend.clone(), 1, 0);
        let mut stats = DurabilityStats::default();
        wal.append_commit(0, txn(0, 2), &mut stats).expect("append");
        assert!(!backend
            .read(WAL_FILE)
            .expect("read")
            .expect("exists")
            .is_empty());
        wal.reset(2).expect("reset");
        assert!(backend
            .read(WAL_FILE)
            .expect("read")
            .expect("exists")
            .is_empty());
        assert_eq!(wal.synced_version(), 2);
        wal.append_commit(2, txn(2, 1), &mut stats).expect("append");
        let (records, _) =
            codec::decode_records(&backend.read(WAL_FILE).expect("read").expect("exists"));
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].start_version, 2);
    }
}
