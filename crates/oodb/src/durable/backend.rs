//! The storage abstraction the durable engine writes through.
//!
//! Everything the engine persists — WAL appends, checkpoint images,
//! truncations — goes through [`StorageBackend`], so the crash-recovery
//! suite can swap the real filesystem ([`FileBackend`]) for an in-memory
//! [`FaultyBackend`] that fails, short-writes, or bit-flips at a
//! scripted byte offset and then hands the surviving bytes to a fresh
//! `open()`.

use super::DurableError;
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

/// A flat namespace of durable byte files. Names never contain path
/// separators; the engine uses `wal.log` and `checkpoint_<version>.img`.
pub trait StorageBackend: Send + Sync {
    /// The full contents of `name`, or `None` when it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, DurableError>;
    /// Appends `bytes` to `name`, creating it when missing. A crash may
    /// apply any prefix of the write (torn write) — recovery relies on
    /// record framing, never on append atomicity.
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), DurableError>;
    /// Forces previous appends to `name` to stable storage.
    fn sync(&self, name: &str) -> Result<(), DurableError>;
    /// Replaces `name` with `bytes` atomically: after a crash the file
    /// holds either the old contents or the new, never a mixture.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), DurableError>;
    /// Removes `name` (no error when already absent).
    fn remove(&self, name: &str) -> Result<(), DurableError>;
    /// The names currently stored.
    fn list(&self) -> Result<Vec<String>, DurableError>;
}

fn io_err(context: &str, error: std::io::Error) -> DurableError {
    DurableError::Io(format!("{context}: {error}"))
}

/// The real filesystem backend: one directory, append handles cached so
/// group commit pays one `fsync` per batch, atomic replacement via a
/// temp file, `fsync`, and `rename`.
pub struct FileBackend {
    root: PathBuf,
    /// Cached append handles (one open per WAL lifetime, not per
    /// record). Invalidated by `write_atomic`/`remove`, which change the
    /// inode behind the name.
    appenders: Mutex<HashMap<String, fs::File>>,
}

impl FileBackend {
    /// Opens (creating if needed) the directory the files live in.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, DurableError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err("create backend dir", e))?;
        Ok(FileBackend {
            root,
            appenders: Mutex::new(HashMap::new()),
        })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Fsyncs the directory itself so renames and removals survive a
    /// power failure (best effort on platforms where directories cannot
    /// be opened).
    fn sync_dir(&self) {
        if let Ok(dir) = fs::File::open(&self.root) {
            let _ = dir.sync_all();
        }
    }
}

impl StorageBackend for FileBackend {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, DurableError> {
        match fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", e)),
        }
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        let mut appenders = self.appenders.lock().expect("appender lock");
        if !appenders.contains_key(name) {
            let file = fs::OpenOptions::new()
                .append(true)
                .create(true)
                .open(self.path(name))
                .map_err(|e| io_err("open for append", e))?;
            appenders.insert(name.to_owned(), file);
        }
        appenders
            .get_mut(name)
            .expect("just inserted")
            .write_all(bytes)
            .map_err(|e| io_err("append", e))
    }

    fn sync(&self, name: &str) -> Result<(), DurableError> {
        let appenders = self.appenders.lock().expect("appender lock");
        match appenders.get(name) {
            Some(file) => file.sync_data().map_err(|e| io_err("fsync", e)),
            // Nothing appended since open: nothing to make durable.
            None => Ok(()),
        }
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        // The replaced name gets a fresh inode: drop any cached handle.
        self.appenders.lock().expect("appender lock").remove(name);
        let tmp = self.path(&format!("{name}.tmp"));
        let mut file = fs::File::create(&tmp).map_err(|e| io_err("create temp", e))?;
        file.write_all(bytes).map_err(|e| io_err("write temp", e))?;
        file.sync_all().map_err(|e| io_err("fsync temp", e))?;
        drop(file);
        fs::rename(&tmp, self.path(name)).map_err(|e| io_err("rename", e))?;
        self.sync_dir();
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<(), DurableError> {
        self.appenders.lock().expect("appender lock").remove(name);
        match fs::remove_file(self.path(name)) {
            Ok(()) => {
                self.sync_dir();
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", e)),
        }
    }

    fn list(&self) -> Result<Vec<String>, DurableError> {
        let mut names = Vec::new();
        let entries = fs::read_dir(&self.root).map_err(|e| io_err("list", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list entry", e))?;
            if let Some(name) = entry.file_name().to_str() {
                if !name.ends_with(".tmp") {
                    names.push(name.to_owned());
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

#[derive(Default)]
struct FaultyState {
    files: HashMap<String, Vec<u8>>,
    /// Durable bytes the next writes may still consume before the
    /// scripted crash; `None` disables injection.
    budget: Option<u64>,
    crashed: bool,
}

/// An in-memory backend with scripted fault injection.
///
/// A *crash* is armed with [`FaultyBackend::crash_after_bytes`]: once
/// the armed number of written bytes is consumed, the write in flight
/// is applied only up to the budget (a torn write), the backend enters
/// the crashed state, and every later operation fails — modelling the
/// process dying mid-I/O. [`FaultyBackend::revive`] clears the crash so
/// a fresh `open()` can recover from exactly the bytes that survived.
/// [`FaultyBackend::flip_bit`] corrupts a stored byte in place, the
/// bit-rot the CRC framing must catch.
#[derive(Default)]
pub struct FaultyBackend {
    state: Mutex<FaultyState>,
}

impl FaultyBackend {
    /// An empty backend with no fault armed.
    pub fn new() -> Self {
        FaultyBackend::default()
    }

    /// A backend seeded with an explicit disk state — the way the crash
    /// suite replays a recorded history prefix as "what survived".
    pub fn with_files(files: impl IntoIterator<Item = (String, Vec<u8>)>) -> Self {
        let backend = FaultyBackend::new();
        backend.state.lock().expect("faulty lock").files = files.into_iter().collect();
        backend
    }

    /// Arms the crash: after `budget` more written bytes, writes tear
    /// and every subsequent operation fails until [`FaultyBackend::revive`].
    pub fn crash_after_bytes(&self, budget: u64) {
        let mut state = self.state.lock().expect("faulty lock");
        state.budget = Some(budget);
        state.crashed = false;
    }

    /// Clears the crashed state and disarms injection, as if the
    /// process restarted over the surviving bytes.
    pub fn revive(&self) {
        let mut state = self.state.lock().expect("faulty lock");
        state.budget = None;
        state.crashed = false;
    }

    /// Whether the armed crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("faulty lock").crashed
    }

    /// Flips bit `bit` (0–7) of the byte at `offset` in `name`. Returns
    /// whether the target existed.
    pub fn flip_bit(&self, name: &str, offset: usize, bit: u8) -> bool {
        let mut state = self.state.lock().expect("faulty lock");
        match state.files.get_mut(name) {
            Some(bytes) if offset < bytes.len() => {
                bytes[offset] ^= 1 << (bit & 7);
                true
            }
            _ => false,
        }
    }

    /// A copy of the surviving files (what a post-crash disk holds).
    pub fn surviving_files(&self) -> HashMap<String, Vec<u8>> {
        self.state.lock().expect("faulty lock").files.clone()
    }

    /// Consumes budget for a write of `len` bytes; returns how many of
    /// them actually land.
    fn consume(state: &mut FaultyState, len: usize) -> Result<usize, usize> {
        match state.budget {
            None => Ok(len),
            Some(budget) if (len as u64) <= budget => {
                state.budget = Some(budget - len as u64);
                Ok(len)
            }
            Some(budget) => {
                state.budget = Some(0);
                state.crashed = true;
                Err(budget as usize)
            }
        }
    }

    fn check_alive(state: &FaultyState) -> Result<(), DurableError> {
        if state.crashed {
            Err(DurableError::Io("injected crash".into()))
        } else {
            Ok(())
        }
    }
}

impl StorageBackend for FaultyBackend {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, DurableError> {
        let state = self.state.lock().expect("faulty lock");
        Self::check_alive(&state)?;
        Ok(state.files.get(name).cloned())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        let mut state = self.state.lock().expect("faulty lock");
        Self::check_alive(&state)?;
        match Self::consume(&mut state, bytes.len()) {
            Ok(_) => {
                state
                    .files
                    .entry(name.to_owned())
                    .or_default()
                    .extend_from_slice(bytes);
                Ok(())
            }
            Err(survived) => {
                // The torn write: only a prefix reaches the file.
                state
                    .files
                    .entry(name.to_owned())
                    .or_default()
                    .extend_from_slice(&bytes[..survived]);
                Err(DurableError::Io("injected crash during append".into()))
            }
        }
    }

    fn sync(&self, _name: &str) -> Result<(), DurableError> {
        let state = self.state.lock().expect("faulty lock");
        Self::check_alive(&state)
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), DurableError> {
        let mut state = self.state.lock().expect("faulty lock");
        Self::check_alive(&state)?;
        match Self::consume(&mut state, bytes.len()) {
            Ok(_) => {
                state.files.insert(name.to_owned(), bytes.to_vec());
                Ok(())
            }
            // Atomic replacement mid-crash leaves the old contents —
            // that is the whole point of temp-file + rename.
            Err(_) => Err(DurableError::Io(
                "injected crash during atomic write".into(),
            )),
        }
    }

    fn remove(&self, name: &str) -> Result<(), DurableError> {
        let mut state = self.state.lock().expect("faulty lock");
        Self::check_alive(&state)?;
        state.files.remove(name);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, DurableError> {
        let state = self.state.lock().expect("faulty lock");
        Self::check_alive(&state)?;
        let mut names: Vec<String> = state.files.keys().cloned().collect();
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_backend_appends_syncs_and_replaces_atomically() {
        let dir = std::env::temp_dir().join(format!("subq_backend_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let backend = FileBackend::new(&dir).expect("create");
        assert_eq!(backend.read("wal.log").expect("read"), None);
        backend.append("wal.log", b"hello ").expect("append");
        backend.append("wal.log", b"world").expect("append");
        backend.sync("wal.log").expect("sync");
        assert_eq!(
            backend.read("wal.log").expect("read"),
            Some(b"hello world".to_vec())
        );
        backend.write_atomic("img", b"image").expect("atomic");
        let names = backend.list().expect("list");
        assert_eq!(names, vec!["img".to_owned(), "wal.log".to_owned()]);
        // Replacing the WAL drops the cached appender: later appends see
        // the new inode.
        backend.write_atomic("wal.log", b"fresh").expect("atomic");
        backend.append("wal.log", b"+tail").expect("append");
        assert_eq!(
            backend.read("wal.log").expect("read"),
            Some(b"fresh+tail".to_vec())
        );
        backend.remove("img").expect("remove");
        backend.remove("img").expect("idempotent remove");
        assert_eq!(backend.list().expect("list"), vec!["wal.log".to_owned()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_backend_tears_writes_at_the_scripted_offset() {
        let backend = FaultyBackend::new();
        backend.append("wal.log", b"0123456789").expect("append");
        backend.crash_after_bytes(4);
        let err = backend.append("wal.log", b"abcdefgh").expect_err("crashes");
        assert!(matches!(err, DurableError::Io(_)));
        assert!(backend.crashed());
        // Everything fails until revival…
        assert!(backend.read("wal.log").is_err());
        assert!(backend.sync("wal.log").is_err());
        backend.revive();
        // …and the surviving bytes hold the torn prefix.
        assert_eq!(
            backend.read("wal.log").expect("read"),
            Some(b"0123456789abcd".to_vec())
        );
    }

    #[test]
    fn faulty_backend_keeps_old_contents_through_a_torn_atomic_write() {
        let backend = FaultyBackend::new();
        backend.write_atomic("img", b"old contents").expect("write");
        backend.crash_after_bytes(3);
        backend
            .write_atomic("img", b"new contents")
            .expect_err("crashes");
        backend.revive();
        assert_eq!(
            backend.read("img").expect("read"),
            Some(b"old contents".to_vec())
        );
    }

    #[test]
    fn faulty_backend_flips_bits_in_place() {
        let backend = FaultyBackend::new();
        backend
            .append("wal.log", &[0b0000_0000, 0b1111_1111])
            .expect("append");
        assert!(backend.flip_bit("wal.log", 0, 3));
        assert!(backend.flip_bit("wal.log", 1, 0));
        assert!(!backend.flip_bit("wal.log", 2, 0), "out of range");
        assert!(!backend.flip_bit("missing", 0, 0));
        assert_eq!(
            backend.read("wal.log").expect("read"),
            Some(vec![0b0000_1000, 0b1111_1110])
        );
    }
}
