//! The hand-rolled binary codec of the durable layer.
//!
//! The offline build has no serde, so both on-disk structures are
//! length-prefixed little-endian encodings written by hand:
//!
//! ```text
//! wal        := record*
//! record     := payload_len:u32  crc:u32  payload        crc = CRC32(payload)
//! payload    := start_version:u64  delta_count:u32  delta*
//! delta      := 0:u8 object:u32 name:str      (AddObject — the name the
//!                                              store minted, replayed verbatim)
//!             | 1:u8 object:u32 class:str     (AssertClass)
//!             | 2:u8 object:u32 class:str     (RetractClass)
//!             | 3:u8 from:u32 attr:str to:u32 (AssertAttr)
//!             | 4:u8 from:u32 attr:str to:u32 (RetractAttr)
//! str        := len:u32 utf8-bytes
//! ```
//!
//! A record is trusted only when its header is complete, its length is
//! sane, its CRC matches, and its payload parses to exactly
//! `payload_len` bytes — anything less is a torn or corrupt tail and
//! [`decode_records`] reports where the valid prefix ends instead of
//! guessing.

use crate::maintain::Delta;
use crate::store::ObjId;

/// Records longer than this are rejected as corrupt rather than
/// allocated: no transaction batch comes close (a delta encodes in tens
/// of bytes), so a larger length is a scrambled header.
const MAX_RECORD_LEN: u32 = 1 << 28;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial, reflected).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

// ---- primitive writers ----

pub(crate) fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, value: &str) {
    put_u32(out, value.len() as u32);
    out.extend_from_slice(value.as_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, value: &[u8]) {
    put_u32(out, value.len() as u32);
    out.extend_from_slice(value);
}

/// A bounds-checked reader over an encoded slice; every getter returns
/// `None` past the end, so decoders propagate truncation instead of
/// panicking.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    pub(crate) fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// One committed transaction as the WAL stores it: the data version the
/// state was at when the transaction began, and its effective deltas.
/// `AddObject` deltas carry the minted name (the in-memory [`Delta`]
/// does not — the store owns the name table), so replay can re-create
/// the object under its original name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// `data_version` before the first delta; the record advances the
    /// state to `start_version + deltas.len()`.
    pub start_version: u64,
    /// The deltas with the `AddObject` names recorded at commit time.
    pub deltas: Vec<(Delta, Option<String>)>,
}

fn put_delta(out: &mut Vec<u8>, delta: &Delta, name: Option<&str>) {
    match delta {
        Delta::AddObject { object } => {
            out.push(0);
            put_u32(out, object.0);
            put_str(out, name.expect("AddObject deltas carry their name"));
        }
        Delta::AssertClass { object, class } => {
            out.push(1);
            put_u32(out, object.0);
            put_str(out, class);
        }
        Delta::RetractClass { object, class } => {
            out.push(2);
            put_u32(out, object.0);
            put_str(out, class);
        }
        Delta::AssertAttr {
            from,
            attribute,
            to,
        } => {
            out.push(3);
            put_u32(out, from.0);
            put_str(out, attribute);
            put_u32(out, to.0);
        }
        Delta::RetractAttr {
            from,
            attribute,
            to,
        } => {
            out.push(4);
            put_u32(out, from.0);
            put_str(out, attribute);
            put_u32(out, to.0);
        }
    }
}

fn get_delta(cursor: &mut Cursor<'_>) -> Option<(Delta, Option<String>)> {
    let tag = cursor.u8()?;
    Some(match tag {
        0 => {
            let object = ObjId(cursor.u32()?);
            let name = cursor.str()?;
            (Delta::AddObject { object }, Some(name))
        }
        1 => (
            Delta::AssertClass {
                object: ObjId(cursor.u32()?),
                class: cursor.str()?,
            },
            None,
        ),
        2 => (
            Delta::RetractClass {
                object: ObjId(cursor.u32()?),
                class: cursor.str()?,
            },
            None,
        ),
        3 => (
            Delta::AssertAttr {
                from: ObjId(cursor.u32()?),
                attribute: cursor.str()?,
                to: ObjId(cursor.u32()?),
            },
            None,
        ),
        4 => (
            Delta::RetractAttr {
                from: ObjId(cursor.u32()?),
                attribute: cursor.str()?,
                to: ObjId(cursor.u32()?),
            },
            None,
        ),
        _ => return None,
    })
}

/// Appends one framed record (length, CRC, payload) to `out`.
pub fn encode_record(record: &WalRecord, out: &mut Vec<u8>) {
    let mut payload = Vec::new();
    put_u64(&mut payload, record.start_version);
    put_u32(&mut payload, record.deltas.len() as u32);
    for (delta, name) in &record.deltas {
        put_delta(&mut payload, delta, name.as_deref());
    }
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut cursor = Cursor::new(payload);
    let start_version = cursor.u64()?;
    let count = cursor.u32()? as usize;
    let mut deltas = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        deltas.push(get_delta(&mut cursor)?);
    }
    cursor.done().then_some(WalRecord {
        start_version,
        deltas,
    })
}

/// Every well-formed record from the front of `bytes`, plus the byte
/// length of that valid prefix. `bytes[valid_len..]` — a torn append,
/// a bit flip, or garbage — is the tail recovery truncates. The second
/// return is `bytes.len()` exactly when the whole log parsed.
pub fn decode_records(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.len() < 8 {
            break;
        }
        let payload_len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if payload_len > MAX_RECORD_LEN {
            break;
        }
        let end = 8 + payload_len as usize;
        if rest.len() < end {
            break;
        }
        let payload = &rest[8..end];
        if crc32(payload) != crc {
            break;
        }
        let Some(record) = decode_payload(payload) else {
            break;
        };
        records.push(record);
        offset += end;
    }
    (records, offset)
}

/// The byte offsets of the record boundaries in a WAL: `boundaries[0]`
/// is 0 and `boundaries[i]` is where record `i` starts (equivalently,
/// where record `i-1` ends); the final entry is the end of the valid
/// prefix. Crash-point scripting cuts and perturbs the log at and
/// around these offsets.
pub fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = vec![0usize];
    let mut offset = 0usize;
    while bytes.len() - offset >= 8 {
        let payload_len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        if payload_len > MAX_RECORD_LEN {
            break;
        }
        let end = offset + 8 + payload_len as usize;
        if end > bytes.len() {
            break;
        }
        offset = end;
        boundaries.push(offset);
    }
    boundaries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                start_version: 0,
                deltas: vec![
                    (Delta::AddObject { object: ObjId(0) }, Some("mary".into())),
                    (
                        Delta::AssertClass {
                            object: ObjId(0),
                            class: "Patient".into(),
                        },
                        None,
                    ),
                ],
            },
            WalRecord {
                start_version: 2,
                deltas: vec![
                    (
                        Delta::AssertAttr {
                            from: ObjId(0),
                            attribute: "suffers".into(),
                            to: ObjId(1),
                        },
                        None,
                    ),
                    (
                        Delta::RetractAttr {
                            from: ObjId(0),
                            attribute: "suffers".into(),
                            to: ObjId(1),
                        },
                        None,
                    ),
                    (
                        Delta::RetractClass {
                            object: ObjId(0),
                            class: "Patient".into(),
                        },
                        None,
                    ),
                ],
            },
        ]
    }

    #[test]
    fn records_roundtrip_and_boundaries_frame_them() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for record in &records {
            encode_record(record, &mut bytes);
        }
        let (decoded, valid) = decode_records(&bytes);
        assert_eq!(decoded, records);
        assert_eq!(valid, bytes.len());
        let boundaries = record_boundaries(&bytes);
        assert_eq!(boundaries.len(), 3);
        assert_eq!(boundaries[0], 0);
        assert_eq!(*boundaries.last().expect("nonempty"), bytes.len());
        // Each boundary is a valid decode split point.
        let (head, valid) = decode_records(&bytes[..boundaries[1]]);
        assert_eq!(head, records[..1]);
        assert_eq!(valid, boundaries[1]);
    }

    #[test]
    fn every_truncation_point_yields_a_clean_record_prefix() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for record in &records {
            encode_record(record, &mut bytes);
        }
        let boundaries = record_boundaries(&bytes);
        for cut in 0..=bytes.len() {
            let (decoded, valid) = decode_records(&bytes[..cut]);
            // The valid prefix is the greatest record boundary ≤ cut.
            let expected = boundaries.iter().rev().find(|&&b| b <= cut).copied();
            assert_eq!(Some(valid), expected, "cut at {cut}");
            let whole = boundaries
                .iter()
                .position(|&b| b == valid)
                .expect("boundary");
            assert_eq!(decoded.len(), whole, "cut at {cut}");
            assert_eq!(decoded[..], records[..whole], "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_anywhere_invalidate_exactly_the_hit_record() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for record in &records {
            encode_record(record, &mut bytes);
        }
        let boundaries = record_boundaries(&bytes);
        for offset in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 0x10;
            let (decoded, valid) = decode_records(&corrupted);
            // Records before the flipped byte survive; the hit record
            // and everything after are rejected. (A flipped length
            // field may also swallow the rest — still only a shorter
            // prefix, never garbage decoded as data.)
            let hit = boundaries.iter().rev().find(|&&b| b <= offset).copied();
            assert!(valid <= hit.expect("boundary"), "flip at {offset}");
            assert!(decoded.len() < records.len(), "flip at {offset}");
            for (d, r) in decoded.iter().zip(&records) {
                assert_eq!(d, r, "flip at {offset}");
            }
        }
    }

    #[test]
    fn insane_lengths_and_bad_tags_are_rejected() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAX_RECORD_LEN + 1);
        put_u32(&mut bytes, 0);
        bytes.extend_from_slice(&[0u8; 64]);
        assert_eq!(decode_records(&bytes).1, 0);
        assert_eq!(record_boundaries(&bytes), vec![0]);

        // A payload with a valid CRC but an unknown delta tag.
        let mut payload = Vec::new();
        put_u64(&mut payload, 7);
        put_u32(&mut payload, 1);
        payload.push(9); // no such tag
        let mut framed = Vec::new();
        put_u32(&mut framed, payload.len() as u32);
        put_u32(&mut framed, crc32(&payload));
        framed.extend_from_slice(&payload);
        let (records, valid) = decode_records(&framed);
        assert!(records.is_empty());
        assert_eq!(valid, 0);
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
