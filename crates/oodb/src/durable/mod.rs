//! The durable storage engine: write-ahead logging, checkpointed
//! snapshots, and crash recovery.
//!
//! The paper's scenario is an interactive design session over an OODB —
//! exactly the setting where losing a morning of schema population to a
//! crash is unacceptable. This module makes the in-memory store of
//! [`crate::store`] durable without giving up its copy-on-write read
//! path:
//!
//! * every committed transaction's [`Delta`](crate::maintain::Delta)
//!   batch is appended to a **write-ahead log** ([`wal`]) as one
//!   CRC-framed record ([`codec`]), fsynced with configurable group
//!   commit;
//! * a **checkpoint** ([`checkpoint`]) serializes a published state —
//!   model, object names, extents and attribute postings as compressed
//!   bitmap containers, the view catalog with its lattice edges — into a
//!   single image written atomically (temp file + rename), after which
//!   the WAL prefix it covers is dropped;
//! * **recovery** ([`recover`]) loads the newest valid image and replays
//!   the WAL suffix through the store's physical replay path, stopping
//!   cleanly at the first torn or corrupt record (the tail is truncated,
//!   never trusted);
//! * all I/O goes through a [`StorageBackend`] so the crash-recovery
//!   suite can inject short writes and bit flips at scripted byte
//!   offsets ([`backend::FaultyBackend`]) and prove that every crash
//!   point recovers to a prefix of the committed history.

pub mod backend;
pub mod checkpoint;
pub mod codec;
pub mod recover;
pub mod wal;

pub use backend::{FaultyBackend, FileBackend, StorageBackend};
pub use codec::{record_boundaries, WalRecord};

use crate::maintain::Delta;
use crate::store::Database;
use crate::views::ViewCatalog;
use std::sync::Arc;

/// Why a durable operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DurableError {
    /// The storage backend reported an I/O failure (for
    /// [`FaultyBackend`], an injected crash).
    Io(String),
    /// An on-disk structure failed validation beyond what recovery can
    /// truncate away (e.g. every checkpoint image is unreadable while a
    /// WAL suffix exists, or an image decodes to an inconsistent state).
    Corrupt(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(message) => write!(f, "storage I/O failed: {message}"),
            DurableError::Corrupt(message) => write!(f, "durable state corrupt: {message}"),
        }
    }
}

impl std::error::Error for DurableError {}

/// Tuning knobs of the durable engine.
#[derive(Clone, Copy, Debug)]
pub struct DurableOptions {
    /// How many committed transactions share one fsync. `1` syncs every
    /// commit (classic write-ahead logging); larger values amortize the
    /// sync over a group at the cost of the unsynced tail on an OS-level
    /// crash (the tail is still torn-write safe: recovery truncates it).
    pub group_commit: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions { group_commit: 1 }
    }
}

/// Cumulative counters of the durable engine, exposed through
/// [`OptimizedDatabase::durability_stats`](crate::OptimizedDatabase::durability_stats).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended (one per committed transaction).
    pub wal_records: u64,
    /// Bytes appended to the WAL (framing included).
    pub wal_bytes: u64,
    /// Fsync batches that covered more than one record.
    pub group_commits: u64,
    /// Fsyncs issued against the WAL.
    pub fsyncs: u64,
    /// Checkpoint images written.
    pub checkpoints: u64,
    /// WAL records replayed by the last recovery.
    pub recovered_records: u64,
    /// Bytes cut off the WAL tail by the last recovery (torn or corrupt
    /// suffix).
    pub truncated_tail_bytes: u64,
}

/// The engine bundling a backend, the WAL, and checkpoint bookkeeping.
/// Owned by [`OptimizedDatabase`](crate::OptimizedDatabase) when opened
/// durably; every mutation of durable state flows through here.
pub struct DurableEngine {
    backend: Arc<dyn StorageBackend>,
    wal: wal::Wal,
    /// `data_version` covered by the newest checkpoint image on disk.
    checkpoint_version: u64,
    stats: DurabilityStats,
}

impl DurableEngine {
    /// An engine over a backend whose durable state was just recovered
    /// (or freshly initialized) at `checkpoint_version`.
    pub(crate) fn resume(
        backend: Arc<dyn StorageBackend>,
        options: DurableOptions,
        checkpoint_version: u64,
        wal_version: u64,
        stats: DurabilityStats,
    ) -> Self {
        DurableEngine {
            wal: wal::Wal::resume(backend.clone(), options.group_commit, wal_version),
            backend,
            checkpoint_version,
            stats,
        }
    }

    /// Appends one committed transaction to the WAL and returns the
    /// highest data version known durable (advanced by the fsync when
    /// this append filled a group-commit batch).
    pub(crate) fn log_transaction(
        &mut self,
        start_version: u64,
        deltas: Vec<(Delta, Option<String>)>,
    ) -> Result<u64, DurableError> {
        self.wal
            .append_commit(start_version, deltas, &mut self.stats)
    }

    /// Forces the pending group-commit batch to disk.
    pub(crate) fn sync(&mut self) -> Result<u64, DurableError> {
        self.wal.sync(&mut self.stats)
    }

    /// Writes a checkpoint image of `(db, catalog)` and drops the WAL
    /// prefix it covers. The caller must have published first: every
    /// view's extension is consistent with `db.data_version()`.
    pub(crate) fn checkpoint(
        &mut self,
        db: &Database,
        catalog: &ViewCatalog,
    ) -> Result<u64, DurableError> {
        // Whatever the batch state, the image must not get ahead of the
        // log on disk.
        self.wal.sync(&mut self.stats)?;
        let version = checkpoint::write_checkpoint(self.backend.as_ref(), db, catalog)?;
        self.stats.checkpoints += 1;
        // Every WAL record starts at or below the image version, so the
        // covered prefix is the whole log.
        self.wal.reset(version)?;
        self.checkpoint_version = version;
        checkpoint::remove_images_before(self.backend.as_ref(), version);
        Ok(version)
    }

    /// The data version of the newest checkpoint image.
    pub fn checkpoint_version(&self) -> u64 {
        self.checkpoint_version
    }

    /// The cumulative counters.
    pub fn stats(&self) -> &DurabilityStats {
        &self.stats
    }
}
