//! Cardinality statistics and the planner's cost model.
//!
//! The store already maintains exact O(1) counters — extent lengths
//! ([`Database::class_cardinality`]) and per-attribute pair/source/target
//! counts ([`Database::attr_cardinality`]). [`Statistics`] snapshots them
//! into a catalog stamped with the [`Database::data_version`] it reflects,
//! and keeps that catalog fresh **incrementally**: a refresh replays the
//! delta-log suffix after the stamp, re-reads the counters of only the
//! classes and attributes the suffix actually touched, and falls back to
//! a full collection only when the log was truncated past the stamp.
//!
//! [`CostModel`] turns the catalog into plan-cost estimates: the cost of
//! filtering a candidate set is `|candidates| × membership_cost(query)`,
//! where the per-candidate membership cost follows the evaluator's actual
//! work — every derived path of the query fans out by the average
//! out-fanout (or in-fanout, for inverse synonyms) of its attributes, and
//! a constraint clause re-walks its paths per binding. The optimizer uses
//! it to pick the cheapest subsuming view of a plan frontier and the
//! cheapest intersection order for candidate narrowing (see
//! [`OptimizedDatabase::execute`]).

use crate::maintain::Delta;
use crate::objset::ObjSet;
use crate::store::{AttrCardinality, Database};
use fxhash::{FxHashMap, FxHashSet};
use subq_dl::{ConstraintExpr, LabeledPath, QueryClassDecl};

#[cfg(doc)]
use crate::optimizer::OptimizedDatabase;

/// A versioned catalog of per-class and per-attribute cardinality
/// statistics, refreshed incrementally from the database's delta log.
#[derive(Clone, Debug, Default)]
pub struct Statistics {
    /// Class name → extent cardinality.
    classes: FxHashMap<String, usize>,
    /// Primitive attribute name → pair/source/target counts.
    attrs: FxHashMap<String, AttrCardinality>,
    /// Total number of objects (ids are dense `0..objects`).
    objects: usize,
    /// The data version the catalog reflects.
    as_of: u64,
    /// How many full collections ran (initial + truncation fallbacks).
    pub full_collections: u64,
    /// How many refreshes were answered incrementally from the log.
    pub incremental_refreshes: u64,
    /// Class/attribute entries re-read across all incremental refreshes.
    pub entries_touched: u64,
    /// View name → number of executions that chose it as the frontier
    /// member to filter. Observed, not derivable from the store, so it is
    /// preserved verbatim across full collections and incremental
    /// refreshes — the advisor's eviction signal, also surfaced through
    /// the `subq_view_hits*` telemetry counters in `STATS`.
    view_hits: FxHashMap<String, u64>,
}

impl Statistics {
    /// An empty catalog at version 0; [`Statistics::refresh`] populates
    /// it on first use.
    pub fn new() -> Self {
        Statistics::default()
    }

    /// A full collection: every class extent and attribute index counter,
    /// read once.
    pub fn collect(db: &Database) -> Self {
        let mut stats = Statistics::new();
        stats.collect_from(db);
        stats
    }

    fn collect_from(&mut self, db: &Database) {
        self.classes = db
            .class_names()
            .map(|name| (name.to_owned(), db.class_cardinality(name)))
            .collect();
        self.attrs = db
            .attribute_names()
            .map(|name| (name.to_owned(), db.attr_cardinality(name)))
            .collect();
        self.objects = db.object_count();
        self.as_of = db.data_version();
        self.full_collections += 1;
        crate::metrics::metrics().stats_full_collections.inc();
    }

    /// Brings the catalog up to the database's current data version.
    ///
    /// The common path replays the delta-log suffix after
    /// [`Statistics::as_of`], gathers the class and attribute names it
    /// touches, and re-reads **only** their O(1) store counters — cost
    /// proportional to the churn, not the schema. A log truncated past
    /// the stamp forces a full collection.
    pub fn refresh(&mut self, db: &Database) {
        let now = db.data_version();
        if self.as_of == now && self.objects == db.object_count() {
            return;
        }
        let Some(suffix) = db.delta_log().since(self.as_of) else {
            self.collect_from(db);
            return;
        };
        let mut classes: FxHashSet<&str> = FxHashSet::default();
        let mut attrs: FxHashSet<&str> = FxHashSet::default();
        for (_, delta) in suffix {
            match delta {
                Delta::AddObject { .. } => {}
                Delta::AssertClass { class, .. } | Delta::RetractClass { class, .. } => {
                    classes.insert(class.as_str());
                }
                Delta::AssertAttr { attribute, .. } | Delta::RetractAttr { attribute, .. } => {
                    attrs.insert(attribute.as_str());
                }
            }
        }
        self.entries_touched += (classes.len() + attrs.len()) as u64;
        crate::metrics::metrics()
            .stats_entries_touched
            .add((classes.len() + attrs.len()) as u64);
        for class in classes {
            self.classes
                .insert(class.to_owned(), db.class_cardinality(class));
        }
        for attr in attrs {
            self.attrs
                .insert(attr.to_owned(), db.attr_cardinality(attr));
        }
        self.objects = db.object_count();
        self.as_of = now;
        self.incremental_refreshes += 1;
        crate::metrics::metrics().stats_incremental_refreshes.inc();
    }

    /// The data version the catalog reflects.
    pub fn as_of(&self) -> u64 {
        self.as_of
    }

    /// Total number of objects at the catalog's version.
    pub fn object_count(&self) -> usize {
        self.objects
    }

    /// Cached extent cardinality of a class (0 when never asserted).
    pub fn class_cardinality(&self, class: &str) -> usize {
        self.classes.get(class).copied().unwrap_or(0)
    }

    /// Cached index counters of a primitive attribute (zeros when never
    /// asserted).
    pub fn attr_cardinality(&self, attribute: &str) -> AttrCardinality {
        self.attrs.get(attribute).copied().unwrap_or_default()
    }

    /// Tallies one execution that routed through `view` — called by the
    /// executors with the chosen frontier member.
    pub fn record_view_hit(&mut self, view: &str) {
        *self.view_hits.entry(view.to_owned()).or_insert(0) += 1;
        crate::metrics::metrics().view_hits.inc();
    }

    /// Tallies `count` harvested reader-side executions of `view` at
    /// once (the writer absorbs reader hit streams per advisor pass).
    pub fn record_view_hits(&mut self, view: &str, count: u64) {
        *self.view_hits.entry(view.to_owned()).or_insert(0) += count;
        crate::metrics::metrics().view_hits.add(count);
    }

    /// Executions that chose `view` as the frontier member to filter.
    pub fn view_hits(&self, view: &str) -> u64 {
        self.view_hits.get(view).copied().unwrap_or(0)
    }

    /// Every `(view, hits)` tally, unordered.
    pub fn view_hit_counts(&self) -> impl Iterator<Item = (&str, u64)> {
        self.view_hits
            .iter()
            .map(|(name, &hits)| (name.as_str(), hits))
    }
}

/// Plan-cost estimation over a [`Statistics`] catalog.
///
/// Costs are in abstract "index probes"; only *ratios* matter — the
/// optimizer compares alternatives, it never interprets the absolute
/// number.
pub struct CostModel<'a> {
    stats: &'a Statistics,
    /// Resolved attribute fanouts are looked up through the database so
    /// inverse synonyms charge the in-fanout of their primitive.
    db: &'a Database,
}

impl<'a> CostModel<'a> {
    /// A cost model reading cardinalities from `stats` and resolving
    /// synonym directions through `db`'s schema.
    pub fn new(stats: &'a Statistics, db: &'a Database) -> Self {
        CostModel { stats, db }
    }

    /// Average fanout of one (possibly synonym) attribute step: how many
    /// values a candidate reaches through it, on average.
    fn step_fanout(&self, attribute: &str) -> f64 {
        let (name, inverted) = self.db.resolve_attr_direction(attribute);
        let card = self.stats.attr_cardinality(name);
        let fanout = if inverted {
            card.avg_in_fanout()
        } else {
            card.avg_fanout()
        };
        // A never-asserted attribute still costs its lookup.
        fanout.max(f64::EPSILON)
    }

    /// Estimated probes for walking one derived path from a single
    /// candidate: each step visits the frontier reached so far and fans
    /// it out by the step attribute's average fanout.
    fn path_cost(&self, path: &LabeledPath) -> f64 {
        let mut frontier = 1.0;
        let mut cost = 0.0;
        for step in &path.steps {
            cost += frontier;
            frontier *= self.step_fanout(&step.attr);
        }
        cost.max(1.0)
    }

    /// Estimated probes in the constraint clause per candidate: a
    /// quantifier evaluates its body once per member of its range class;
    /// atoms are single index probes.
    fn constraint_cost(&self, expr: &ConstraintExpr) -> f64 {
        match expr {
            ConstraintExpr::Forall(_, class, body) | ConstraintExpr::Exists(_, class, body) => {
                let range = self.stats.class_cardinality(class) as f64;
                range.max(1.0) * self.constraint_cost(body)
            }
            ConstraintExpr::And(a, b) | ConstraintExpr::Or(a, b) => {
                self.constraint_cost(a) + self.constraint_cost(b)
            }
            ConstraintExpr::Not(inner) => self.constraint_cost(inner),
            ConstraintExpr::In(..) | ConstraintExpr::HasAttr(..) | ConstraintExpr::Eq(..) => 1.0,
        }
    }

    /// Estimated probes for one full membership check of the query: class
    /// memberships, derived paths, `where` equalities, constraint clause.
    pub fn membership_cost(&self, query: &QueryClassDecl) -> f64 {
        let classes = query.is_a.len().max(1) as f64;
        let paths: f64 = query.derived.iter().map(|p| self.path_cost(p)).sum();
        let wheres = query.where_eqs.len() as f64;
        let constraint = query
            .constraint
            .as_ref()
            .map_or(0.0, |c| self.constraint_cost(c));
        classes + paths + wheres + constraint
    }

    /// Estimated total cost of filtering `candidates` objects through the
    /// query's membership condition — the quantity the optimizer
    /// minimizes when choosing among subsuming views.
    pub fn filter_cost(&self, candidates: usize, query: &QueryClassDecl) -> f64 {
        candidates as f64 * self.membership_cost(query)
    }

    /// The query's *schema* superclasses ordered by cached extent
    /// cardinality, ascending — the cheapest intersection order for
    /// candidate narrowing (intersecting the smallest sets first keeps
    /// every intermediate result minimal). Superclasses naming query
    /// classes are excluded: they restrict by recursive membership, not
    /// by stored extents (mirroring
    /// [`crate::eval::initial_candidates`]).
    pub fn intersection_order<'q>(&self, query: &'q QueryClassDecl) -> Vec<(&'q str, usize)> {
        let mut order: Vec<(&str, usize)> = query
            .is_a
            .iter()
            .filter(|class| self.db.model().class(class).is_some())
            .map(|class| (class.as_str(), self.stats.class_cardinality(class)))
            .collect();
        order.sort_by_key(|&(_, cardinality)| cardinality);
        order
    }

    /// Narrows a candidate base (typically a subsuming view's extension)
    /// by intersecting it with the query's schema-superclass extents in
    /// the cheapest (ascending-cardinality) order, breaking early when
    /// empty. Sound: every answer belongs to every schema superclass, so
    /// the intersection never loses one — it only spares the expensive
    /// per-object membership filter the objects a word-parallel bitmap
    /// intersection can rule out. A declared superclass with no stored
    /// extent empties the candidates outright (mirroring
    /// [`crate::eval::initial_candidates`]).
    pub fn narrow_candidates(&self, base: &ObjSet, query: &QueryClassDecl) -> ObjSet {
        let mut narrowed = base.clone();
        for (class, _) in self.intersection_order(query) {
            if narrowed.is_empty() {
                break;
            }
            match self.db.class_extent_ref(class) {
                Some(extent) => narrowed.and_inplace(extent),
                None => return ObjSet::new(),
            }
        }
        narrowed
    }

    /// Estimated candidate count after intersecting a base set of size
    /// `base` with the query's schema-superclass extents: bounded by the
    /// smallest participating set (intersections only shrink).
    pub fn estimated_candidates(&self, base: usize, query: &QueryClassDecl) -> usize {
        query
            .is_a
            .iter()
            .filter(|class| self.db.model().class(class).is_some())
            .map(|class| self.stats.class_cardinality(class))
            .fold(base, usize::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hospital() -> Database {
        crate::store::tests::hospital()
    }

    #[test]
    fn collection_snapshots_store_counters() {
        let db = hospital();
        let stats = Statistics::collect(&db);
        assert_eq!(stats.as_of(), db.data_version());
        assert_eq!(stats.object_count(), db.object_count());
        assert_eq!(
            stats.class_cardinality("Patient"),
            db.class_cardinality("Patient")
        );
        assert_eq!(stats.class_cardinality("Nonsense"), 0);
        assert_eq!(
            stats.attr_cardinality("consults"),
            db.attr_cardinality("consults")
        );
        assert_eq!(stats.full_collections, 1);
    }

    #[test]
    fn refresh_replays_only_the_touched_suffix() {
        let mut db = hospital();
        let mut stats = Statistics::collect(&db);
        let touched_before = stats.entries_touched;

        // One transaction touching one class and one attribute.
        let anna = db.add_object("anna");
        let welby = db.object("welby").expect("exists");
        db.assert_class(anna, "Patient");
        db.assert_attr(anna, "consults", welby);

        stats.refresh(&db);
        assert_eq!(stats.as_of(), db.data_version());
        assert_eq!(stats.full_collections, 1, "no fallback");
        assert_eq!(stats.incremental_refreshes, 1);
        // `assert_class(anna, "Patient")` propagates upward along isA
        // (Patient → Person → …), so a handful of classes plus the one
        // attribute are touched — but nowhere near the whole catalog.
        let touched = stats.entries_touched - touched_before;
        assert!((2..=6).contains(&touched), "touched {touched}");
        assert_eq!(
            stats.class_cardinality("Patient"),
            db.class_cardinality("Patient")
        );
        assert_eq!(
            stats.attr_cardinality("consults"),
            db.attr_cardinality("consults")
        );
        assert_eq!(stats.object_count(), db.object_count());

        // A refresh with no new deltas is a no-op.
        stats.refresh(&db);
        assert_eq!(stats.incremental_refreshes, 1);
    }

    #[test]
    fn truncated_logs_fall_back_to_full_collection() {
        let mut db = hospital();
        let mut stats = Statistics::collect(&db);
        let mary = db.object("mary").expect("exists");
        db.assert_class(mary, "Doctor");
        db.truncate_log(db.data_version());
        stats.refresh(&db);
        assert_eq!(stats.full_collections, 2);
        assert_eq!(
            stats.class_cardinality("Doctor"),
            db.class_cardinality("Doctor")
        );
        assert_eq!(stats.as_of(), db.data_version());
    }

    #[test]
    fn cost_model_orders_intersections_by_cardinality() {
        let db = hospital();
        let stats = Statistics::collect(&db);
        let model = CostModel::new(&stats, &db);
        let query = QueryClassDecl {
            name: "Q".into(),
            is_a: vec!["Person".into(), "Patient".into()],
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        };
        let order = model.intersection_order(&query);
        assert_eq!(order.len(), 2);
        assert!(order[0].1 <= order[1].1, "ascending cardinality");
        assert_eq!(order[0].0, "Patient", "smaller extent first");
        let est = model.estimated_candidates(usize::MAX, &query);
        assert_eq!(est, db.class_cardinality("Patient"));
        // Filter cost is monotone in the candidate count — the property
        // that makes the cost-based frontier choice never worse than the
        // smallest-extension choice.
        assert!(model.filter_cost(10, &query) < model.filter_cost(11, &query));
        assert!(model.membership_cost(&query) >= 2.0);
    }

    /// Satellite 2: per-view hit tallies are observed state — a full
    /// collection (the truncation fallback) must not wipe them.
    #[test]
    fn view_hit_tallies_survive_refresh_and_full_collection() {
        let mut db = hospital();
        let mut stats = Statistics::collect(&db);
        stats.record_view_hit("ViewPatient");
        stats.record_view_hit("ViewPatient");
        stats.record_view_hits("Person", 3);
        assert_eq!(stats.view_hits("ViewPatient"), 2);
        assert_eq!(stats.view_hits("Person"), 3);
        assert_eq!(stats.view_hits("Nonsense"), 0);

        let mary = db.object("mary").expect("exists");
        db.assert_class(mary, "Doctor");
        stats.refresh(&db);
        assert_eq!(stats.view_hits("ViewPatient"), 2, "incremental refresh");

        let anna = db.add_object("anna");
        db.assert_class(anna, "Patient");
        db.truncate_log(db.data_version());
        stats.refresh(&db);
        assert_eq!(stats.full_collections, 2, "truncation forced a fallback");
        assert_eq!(stats.view_hits("ViewPatient"), 2, "full collection");
        let mut tallies: Vec<(&str, u64)> = stats.view_hit_counts().collect();
        tallies.sort();
        assert_eq!(tallies, vec![("Person", 3), ("ViewPatient", 2)]);
    }

    #[test]
    fn derived_paths_and_constraints_raise_membership_cost() {
        let db = hospital();
        let stats = Statistics::collect(&db);
        let model = CostModel::new(&stats, &db);
        let plain = QueryClassDecl {
            name: "Plain".into(),
            is_a: vec!["Patient".into()],
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        };
        let with_path = QueryClassDecl {
            derived: vec![LabeledPath {
                label: Some("d".into()),
                steps: vec![subq_dl::PathStep {
                    attr: "consults".into(),
                    filter: subq_dl::PathFilter::Any,
                }],
            }],
            ..plain.clone()
        };
        assert!(model.membership_cost(&with_path) > model.membership_cost(&plain));
    }
}
