//! The subsumption-driven query optimizer.
//!
//! This is the component sketched in Sections 1 and 3.2 of the paper:
//! "instead of just employing conventional compilation techniques …, a
//! subsumption checker tests whether an incoming query is subsumed by one
//! of the views currently materialized in the database. The system modifies
//! the query evaluation plans by adding access operations to the stored
//! extensions of subsuming views, thus restricting the search space."
//!
//! Concretely, [`OptimizedDatabase::execute`] translates the incoming query
//! class into its QL concept, finds the materialized views that subsume it
//! (in polynomial time per probe), picks a subsuming view with the
//! smallest stored extension, and evaluates the query's full membership
//! condition only over that extension. Soundness rests on
//! Proposition 3.1: Σ-subsumption of the structural abstractions implies
//! containment of the answer sets in every database state.
//!
//! Since PR 3 the subsuming views are found by traversing the catalog's
//! subsumption lattice ([`OptimizedDatabase::plan`]): a failed probe of a
//! view prunes every strictly more specific view below it, so large
//! hierarchical catalogs cost far fewer than N probes per plan. The flat
//! linear scan is retained as [`OptimizedDatabase::plan_flat`] — the
//! reference whose answers the traversal must reproduce (on the
//! maximal-specific frontier) and the baseline of experiment E9.

use crate::advisor::{
    normalize_shape, Advisor, AdvisorConfig, AdvisorMode, AdvisorPass, ShapeEvent,
};
use crate::durable::{
    recover, DurabilityStats, DurableEngine, DurableError, DurableOptions, StorageBackend,
};
use crate::eval::{evaluate_query_over, initial_candidates};
use crate::maintain::Delta;
use crate::snapshot::{FrozenTranslation, Reader, Snapshot, SnapshotCell};
use crate::stats::{CostModel, Statistics};
use crate::store::{Database, ObjId};
use crate::views::{ClassifyOracle, ViewCatalog, ViewError};
use std::collections::BTreeSet;
use std::sync::Arc;
use subq_calculus::{SharedSubsumptionMemo, SubsumptionCache, SubsumptionChecker};
use subq_concepts::term::{ConceptId, TermArena};
use subq_dl::QueryClassDecl;
use subq_translate::{translate_query, TranslateError, TranslatedModel};

/// The plan chosen for a query.
#[derive(Clone, Debug, Default)]
pub struct QueryPlan {
    /// The subsuming views the planner reports. For [`OptimizedDatabase::plan`]
    /// this is the **maximal-specific frontier** — subsuming views with no
    /// strictly more specific subsuming view below them (plus Σ-equivalent
    /// peers); for [`OptimizedDatabase::plan_flat`] it is every subsuming
    /// view. Both are sorted by extent size, smallest first.
    pub subsuming_views: Vec<String>,
    /// The view whose extension will be filtered (the smallest subsuming
    /// one), if any.
    pub chosen_view: Option<String>,
    /// How many view probes were answered from the subsumption cache.
    pub cached_probes: usize,
    /// How many view probes ran a goal-side probe (fresh `(query, view)`
    /// pairs).
    pub fresh_probes: usize,
    /// How many fact saturations this plan paid for. At most 1: all fresh
    /// probes of one plan fork the same saturated query, and 0 when the
    /// query was saturated by an earlier plan (or every pair hit the
    /// cache).
    pub fact_saturations: usize,
    /// How many views the lattice traversal did *not* probe: descendants
    /// of failed probes and equivalence peers. Always 0 for the flat scan.
    pub probes_pruned: usize,
    /// Depth of the deepest lattice node probed (roots = 1); 0 for the
    /// flat scan and for empty catalogs.
    pub lattice_depth: usize,
}

/// Statistics of one query execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Number of candidate objects whose membership condition was
    /// evaluated.
    pub candidates_examined: usize,
    /// The materialized view whose extension was used, if any.
    pub used_view: Option<String>,
    /// Number of answers.
    pub answers: usize,
}

/// A database bundled with its structural translation, a view catalog, and
/// the subsumption checker glue.
pub struct OptimizedDatabase {
    db: Database,
    translated: TranslatedModel,
    catalog: ViewCatalog,
    /// Memoized `(query, view) → verdict` table plus the saturated fact
    /// closures behind it. Subsumption depends only on the translated
    /// schema and the concepts, never on the database *state*, so the
    /// cache survives data updates and view refreshes unchanged — but a
    /// schema mutation re-translates the model and drops it wholesale
    /// (see [`OptimizedDatabase::update`]).
    subsumption_cache: SubsumptionCache,
    /// The verdict level shared with every [`Reader`] of the current
    /// schema epoch: writer probes publish into it, so query shapes the
    /// writer has planned are pre-warmed for all readers. Replaced
    /// wholesale on schema mutation.
    memo: Arc<SharedSubsumptionMemo>,
    /// The publication point readers attach to.
    cell: Arc<SnapshotCell>,
    /// The frozen translation of the last publication, with the arena
    /// fingerprint it was taken at — rebuilt only when the writer has
    /// interned new concepts since (data-only churn publishes without
    /// cloning the arena).
    frozen: Option<(Arc<FrozenTranslation>, (u64, usize, usize))>,
    /// Cardinality statistics behind the execution cost model, kept fresh
    /// incrementally from the delta log (see [`crate::stats`]).
    stats: Statistics,
    /// The durable engine, when this database was opened through
    /// [`OptimizedDatabase::open`]: [`OptimizedDatabase::commit_durable`]
    /// write-ahead logs every transaction before publishing, and
    /// [`OptimizedDatabase::checkpoint`] compacts the log into an image.
    durable: Option<DurableEngine>,
    /// The workload-adaptive view advisor (see [`crate::advisor`]):
    /// mined shapes, budget, and lifecycle counters. Acts only inside
    /// [`OptimizedDatabase::run_advisor`].
    advisor: Advisor,
    /// Shapes recorded by the *writer's* own executions (readers record
    /// into their lock-free rings); drained by the advisor pass.
    shape_log: Vec<ShapeEvent>,
    /// Data version at the last advisor pass — its delta count scales
    /// the estimated maintenance cost of a candidate view.
    advisor_last_version: u64,
}

impl OptimizedDatabase {
    /// Wraps a database, translating its model into SL/QL once, and
    /// publishes the initial snapshot.
    pub fn new(db: Database) -> Result<Self, TranslateError> {
        let translated = subq_translate::translate_model(db.model())?;
        let memo = Arc::new(SharedSubsumptionMemo::new());
        let frozen_translation = Arc::new(FrozenTranslation::of(&translated));
        let fingerprint = (
            db.schema_version(),
            translated.arena.concept_count(),
            translated.arena.path_count(),
        );
        let cell = Arc::new(SnapshotCell::new(Arc::new(Snapshot {
            db: db.clone(),
            views: Vec::new(),
            translated: frozen_translation.clone(),
            memo: memo.clone(),
        })));
        Ok(OptimizedDatabase {
            db,
            translated,
            catalog: ViewCatalog::new(),
            subsumption_cache: SubsumptionCache::new(),
            memo,
            cell,
            frozen: Some((frozen_translation, fingerprint)),
            stats: Statistics::new(),
            durable: None,
            advisor: Advisor::default(),
            shape_log: Vec::new(),
            advisor_last_version: 0,
        })
    }

    /// Opens a durable database over `backend`: loads the newest valid
    /// checkpoint image, replays the WAL suffix (truncating any torn or
    /// corrupt tail), restores and re-classifies the materialized views,
    /// and publishes the recovered state. When the backend holds no
    /// image at all, `initial` supplies the genesis state, which is
    /// checkpointed immediately so the first commit already has an image
    /// to recover against.
    ///
    /// The recovered state is always the committed history cut at a
    /// transaction boundary — never a partial transaction, never a
    /// transaction that was not durably logged.
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        options: DurableOptions,
        initial: impl FnOnce() -> Database,
    ) -> Result<Self, DurableError> {
        let _span = crate::metrics::metrics().recovery_ns.span();
        let mut stats = DurabilityStats::default();
        match recover::recover(backend.as_ref(), &mut stats)? {
            None => {
                let db = initial();
                let mut odb = OptimizedDatabase::new(db).map_err(|e| {
                    DurableError::Corrupt(format!("genesis model does not translate: {e:?}"))
                })?;
                odb.durable = Some(DurableEngine::resume(
                    backend,
                    options,
                    0,
                    odb.db.data_version(),
                    stats,
                ));
                odb.checkpoint()?;
                Ok(odb)
            }
            Some(recovered) => {
                let mut db = recovered.db;
                // Everything recovered is on disk: pin nothing, allow
                // the cap to trim the replayed suffix once every view
                // has consumed it.
                db.set_durable_floor(db.data_version());
                let recovered_version = db.data_version();
                let mut odb = OptimizedDatabase::new(db).map_err(|e| {
                    DurableError::Corrupt(format!("recovered model does not translate: {e:?}"))
                })?;
                // Restore the views under their image-stamped freshness:
                // replayed suffix deltas sit in the in-memory log with
                // base = image version, so the next refresh propagates
                // exactly what the image had not seen. Definitions are
                // recovered from the model — every view names a declared
                // query class or a schema class (materialized as the
                // trivial `isA C`).
                let mut restored = Vec::with_capacity(recovered.views.len());
                for (name, fresh_as_of, extent) in recovered.views {
                    let definition = Self::view_definition(&odb.db, &name).ok_or_else(|| {
                        DurableError::Corrupt(format!(
                            "checkpoint view {name} is not declared by the recovered model"
                        ))
                    })?;
                    restored.push((Arc::new(definition), Arc::new(extent), fresh_as_of));
                }
                odb.catalog.restore(restored);
                odb.classify_catalog();
                // Re-classification must reproduce the Hasse diagram the
                // image recorded: subsumption depends only on the schema
                // and the definitions, both of which the image carries.
                let mut derived = odb.catalog.lattice_edges();
                derived.sort();
                let mut recorded = recovered.edges;
                recorded.sort();
                if derived != recorded {
                    return Err(DurableError::Corrupt(
                        "re-classified lattice disagrees with the checkpointed edges".into(),
                    ));
                }
                odb.durable = Some(DurableEngine::resume(
                    backend,
                    options,
                    recovered.checkpoint_version,
                    recovered_version,
                    stats,
                ));
                odb.publish_snapshot();
                Ok(odb)
            }
        }
    }

    /// Read access to the underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The view catalog.
    pub fn catalog(&self) -> &ViewCatalog {
        &self.catalog
    }

    /// `(hits, misses)` of the subsumption memo table since construction.
    pub fn subsumption_cache_stats(&self) -> (u64, u64) {
        self.subsumption_cache.stats()
    }

    /// Mutates the database state as one transaction. Data mutations are
    /// routed through the store's delta log, so no explicit invalidation
    /// happens here: staleness is the per-view comparison of
    /// [`MaterializedView::fresh_as_of`](crate::views::MaterializedView)
    /// against [`Database::data_version`], and the next refresh (lazily,
    /// on [`OptimizedDatabase::execute`], or eagerly via
    /// [`OptimizedDatabase::refresh_views`]) propagates exactly this
    /// transaction's deltas to exactly the affected views — the counters
    /// are available through [`OptimizedDatabase::maintenance_stats`].
    /// Log entries every view has already consumed are truncated on
    /// entry, bounding the log by the churn since the staleest view.
    ///
    /// If the closure also mutates the *schema* (through
    /// [`Database::model_mut`]), the structural translation is redone and
    /// every piece of state derived from the old one is dropped: the
    /// subsumption cache (verdicts and saturated queries — they answer
    /// with respect to the old Σ and point into the old arena), the
    /// catalog's cached view concepts, and — since schema changes can
    /// alter evaluation semantics without producing data deltas — every
    /// materialized extension (forced full re-derivation on the next
    /// refresh). Data-only updates keep all of it: subsumption never
    /// depends on the database state.
    ///
    /// # Panics
    ///
    /// Panics if the mutated model no longer translates; schema evolution
    /// must keep the model structurally well formed.
    pub fn update<R>(&mut self, mutate: impl FnOnce(&mut Database) -> R) -> R {
        if let Some(oldest) = self.catalog.oldest_snapshot() {
            self.db.truncate_log(oldest);
        } else {
            // No views to maintain: nothing will ever replay the log.
            self.db.truncate_log(self.db.data_version());
        }
        let version_before = self.db.schema_version();
        let result = mutate(&mut self.db);
        if self.db.schema_version() != version_before {
            self.translated = subq_translate::translate_model(self.db.model())
                .expect("schema mutation left the model untranslatable");
            self.subsumption_cache.clear();
            // The shared memo answers with respect to the old Σ and old
            // arena ids: start a fresh epoch (readers on old snapshots
            // keep the old memo, consistent with their old arenas).
            self.memo = Arc::new(SharedSubsumptionMemo::new());
            self.frozen = None;
            self.catalog.invalidate_concepts();
            // Schema changes can alter evaluation semantics (query-class
            // definitions, synonym resolution, isA recursion) without a
            // single data delta — force full re-derivation of every
            // extension.
            self.catalog.invalidate();
        }
        result
    }

    /// Brings every materialized view up to the current data version by
    /// incremental propagation (see [`crate::maintain`]); called lazily by
    /// [`OptimizedDatabase::execute`], exposed for callers that want to
    /// refresh eagerly or measure maintenance work in isolation.
    pub fn refresh_views(&self) {
        self.catalog.refresh(&self.db);
    }

    /// The cumulative counters of the incremental view maintainer.
    pub fn maintenance_stats(&self) -> crate::maintain::MaintenanceStats {
        self.catalog.maintenance_stats()
    }

    /// Mutates the database as one transaction
    /// ([`OptimizedDatabase::update`]), propagates the deltas to the
    /// materialized views (in parallel across independent lattice
    /// components), and publishes the refreshed state to all readers with
    /// one atomic snapshot swap. The write path of the snapshot-isolated
    /// serving loop.
    pub fn commit<R>(&mut self, mutate: impl FnOnce(&mut Database) -> R) -> R {
        let _span = crate::metrics::metrics().commit_publish_ns.span();
        let result = self.update(mutate);
        self.publish_snapshot();
        result
    }

    /// [`OptimizedDatabase::commit`] with durability: the transaction's
    /// delta batch is appended to the write-ahead log (fsynced according
    /// to [`DurableOptions::group_commit`]) *before* the refreshed state
    /// is published. `AddObject` deltas are logged with the names the
    /// store minted, so replay reproduces the name table exactly. A
    /// transaction that mutated the schema is not expressible as data
    /// deltas — it triggers an immediate [`OptimizedDatabase::checkpoint`]
    /// instead, making the new model durable through the image.
    ///
    /// On an I/O error the in-memory mutation has already happened but
    /// was *not* made durable; the caller should treat the database as
    /// lost (that is the crash the recovery suite drills).
    ///
    /// # Panics
    ///
    /// Panics when the database was not opened through
    /// [`OptimizedDatabase::open`].
    pub fn commit_durable<R>(
        &mut self,
        mutate: impl FnOnce(&mut Database) -> R,
    ) -> Result<R, DurableError> {
        let _span = crate::metrics::metrics().commit_publish_ns.span();
        assert!(
            self.durable.is_some(),
            "commit_durable requires a database opened through OptimizedDatabase::open"
        );
        let version_before = self.db.data_version();
        let schema_before = self.db.schema_version();
        let result = self.update(mutate);
        let deltas: Vec<(Delta, Option<String>)> = self
            .db
            .delta_log()
            .since(version_before)
            .expect("the durable floor pins entries the WAL has not seen")
            .map(|(_, delta)| {
                let name = match delta {
                    Delta::AddObject { object } => Some(self.db.object_name(*object).to_owned()),
                    _ => None,
                };
                (delta.clone(), name)
            })
            .collect();
        if !deltas.is_empty() {
            let appended = version_before + deltas.len() as u64;
            let engine = self.durable.as_mut().expect("checked above");
            engine.log_transaction(version_before, deltas)?;
            // Appended records are on the log (an OS crash may still
            // lose the unsynced tail — recovery truncates it); the
            // in-memory delta log no longer needs to pin them for
            // durability.
            self.db.set_durable_floor(appended);
        }
        if self.db.schema_version() != schema_before {
            self.checkpoint()?;
        } else {
            self.publish_snapshot();
        }
        Ok(result)
    }

    /// Publishes the current state and serializes it into a checkpoint
    /// image: model, object names, extents, attribute postings, and the
    /// view catalog with its lattice edges, written atomically. The WAL
    /// prefix the image covers (all of it — the image is taken at the
    /// current version) is dropped, bounding recovery time by the churn
    /// since the last checkpoint instead of the full history. Returns
    /// the image's data version.
    ///
    /// # Panics
    ///
    /// Panics when the database was not opened through
    /// [`OptimizedDatabase::open`].
    pub fn checkpoint(&mut self) -> Result<u64, DurableError> {
        let _span = crate::metrics::metrics().checkpoint_ns.span();
        assert!(
            self.durable.is_some(),
            "checkpoint requires a database opened through OptimizedDatabase::open"
        );
        // Publishing first is what makes stamping every view with the
        // image version sound: each view is either refreshed through the
        // current version or confirmed untouched by the deltas in
        // between.
        self.publish_snapshot();
        let engine = self.durable.as_mut().expect("checked above");
        let version = engine.checkpoint(&self.db, &self.catalog)?;
        self.db.set_durable_floor(version);
        Ok(version)
    }

    /// Forces the pending group-commit batch to stable storage and
    /// returns the durability watermark: every transaction at or below
    /// it survives any crash.
    ///
    /// # Panics
    ///
    /// Panics when the database was not opened through
    /// [`OptimizedDatabase::open`].
    pub fn sync_durable(&mut self) -> Result<u64, DurableError> {
        self.durable
            .as_mut()
            .expect("sync_durable requires a database opened through OptimizedDatabase::open")
            .sync()
    }

    /// The durable engine's cumulative counters, when opened durably.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        self.durable.as_ref().map(|engine| engine.stats().clone())
    }

    /// Publishes the current state as an immutable [`Snapshot`]: brings
    /// every view up to the current data version first (so the published
    /// pair (state, extensions) is internally consistent), then swaps the
    /// snapshot cell. Cost is proportional to the shards *touched* since
    /// the last publication — untouched classes, attributes, views, and
    /// the whole translation are shared by `Arc`.
    pub fn publish_snapshot(&mut self) -> Arc<Snapshot> {
        // Published views must be classified — readers have no oracle to
        // classify with, and an unclassified catalog would traverse (and
        // accelerate) nothing. Pending views exist after raw
        // materialization or a schema mutation reset the lattice.
        self.classify_catalog();
        self.catalog.refresh(&self.db);
        let translated = self.frozen_translation();
        let snapshot = Arc::new(Snapshot {
            db: self.db.snapshot_clone(),
            views: self.catalog.snapshot(),
            translated,
            memo: self.memo.clone(),
        });
        self.cell.store(snapshot.clone());
        snapshot
    }

    /// The latest published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.cell.load()
    }

    /// A new lock-free read handle over the published snapshots. Hand one
    /// to each reader thread; the writer keeps mutating and publishing
    /// concurrently, and readers adopt newer snapshots via
    /// [`Reader::sync`] whenever they choose.
    pub fn reader(&self) -> Reader {
        Reader::new(self.cell.clone())
    }

    /// The shared publication cell. A server hands this to its worker
    /// threads *before* moving the database into its writer thread; each
    /// worker then mints its own [`Reader`] via [`SnapshotCell::reader`]
    /// and follows publications without ever touching the writer.
    pub fn snapshot_cell(&self) -> Arc<SnapshotCell> {
        self.cell.clone()
    }

    /// The frozen translation for the next snapshot, recloned from the
    /// live one only when the writer interned new concepts (or the schema
    /// epoch changed) since the last publication.
    fn frozen_translation(&mut self) -> Arc<FrozenTranslation> {
        let fingerprint = (
            self.db.schema_version(),
            self.translated.arena.concept_count(),
            self.translated.arena.path_count(),
        );
        match &self.frozen {
            Some((frozen, at)) if *at == fingerprint => frozen.clone(),
            _ => {
                let frozen = Arc::new(FrozenTranslation::of(&self.translated));
                self.frozen = Some((frozen.clone(), fingerprint));
                frozen
            }
        }
    }

    /// Materializes a view: the name must denote a structural query class,
    /// or a schema class (which the paper notes can always be turned into a
    /// query class `isA C`). The new view is classified into the catalog's
    /// subsumption lattice immediately — one fact saturation for its
    /// top-down parent search, goal-side probes for the rest (reusing the
    /// cached closures of the views already classified).
    pub fn materialize_view(&mut self, name: &str) -> Result<(), ViewError> {
        let definition =
            Self::view_definition(&self.db, name).ok_or_else(|| ViewError::UnknownQuery {
                query: name.to_owned(),
            })?;
        self.catalog.materialize(&self.db, &definition)?;
        self.classify_catalog();
        Ok(())
    }

    /// The definition a view name denotes: the declared query class, or
    /// the trivial `isA C` query synthesized for a schema class `C`.
    /// Checkpoint images store only the name — this lookup is what makes
    /// the name recoverable as a definition.
    fn view_definition(db: &Database, name: &str) -> Option<QueryClassDecl> {
        if let Some(query) = db.model().query_class(name) {
            Some(query.clone())
        } else if db.model().class(name).is_some() {
            Some(QueryClassDecl {
                name: name.to_owned(),
                is_a: vec![name.to_owned()],
                derived: vec![],
                where_eqs: vec![],
                constraint: None,
            })
        } else {
            None
        }
    }

    /// Inserts every not-yet-classified view into the subsumption lattice.
    /// Called after materialization and (via [`OptimizedDatabase::plan`])
    /// after a schema change has reset the lattice.
    fn classify_catalog(&mut self) {
        let mut oracle = DatabaseOracle {
            db: &self.db,
            queries: &self.translated.queries,
            vocabulary: &mut self.translated.vocabulary,
            arena: &mut self.translated.arena,
            cache: &mut self.subsumption_cache,
            checker: SubsumptionChecker::new(&self.translated.schema),
        };
        self.catalog.classify_pending(&mut oracle);
    }

    /// Computes the evaluation plan for a query by traversing the view
    /// lattice from its roots: a view is probed only while every one of
    /// its Hasse parents subsumes the query — since `V₂ ⊑ V₁` and
    /// `Q ⋢ V₁` imply `Q ⋢ V₂`, a failed probe prunes the whole sub-DAG
    /// below it. The reported views are the **maximal-specific subsuming
    /// frontier**; their extensions are contained in every other subsuming
    /// view's extension, so picking the smallest of them is never worse
    /// than the flat scan's globally smallest pick, and the filtered
    /// answer set is identical (`tests/lattice_equivalence.rs` proves both
    /// properties against [`OptimizedDatabase::plan_flat`]).
    pub fn plan(&mut self, query: &QueryClassDecl) -> QueryPlan {
        let _span = crate::metrics::metrics().plan_ns.span();
        let query_concept = match translate_query(
            query,
            self.db.model(),
            &mut self.translated.vocabulary,
            &mut self.translated.arena,
        ) {
            Ok(concept) => concept,
            Err(_) => return QueryPlan::default(),
        };
        // Classify pending views first (newly materialized through the raw
        // catalog, or the whole catalog after a schema change) so that
        // classification probes are not attributed to this plan's
        // counters.
        self.classify_catalog();
        let checker = SubsumptionChecker::new(&self.translated.schema);
        let arena = &mut self.translated.arena;
        let cache = &mut self.subsumption_cache;
        let memo = &self.memo;
        let (hits_before, misses_before) = cache.stats();
        let (saturations_before, _) = cache.saturation_stats();
        // Probe through the shared memo too (the writer's arena is the
        // canonical one, so every id is shareable): query shapes planned
        // here are pre-warmed for every reader of the current epoch.
        let traversal = self.catalog.traverse(|view_concept| {
            checker.subsumes_shared(arena, query_concept, view_concept, cache, memo, usize::MAX)
        });
        let (hits_after, misses_after) = cache.stats();
        let (saturations_after, _) = cache.saturation_stats();
        let mut subsuming = traversal.frontier;
        subsuming.sort_by_key(|(_, size)| *size);
        QueryPlan {
            chosen_view: subsuming.first().map(|(name, _)| name.clone()),
            subsuming_views: subsuming.into_iter().map(|(name, _)| name).collect(),
            cached_probes: (hits_after - hits_before) as usize,
            fresh_probes: (misses_after - misses_before) as usize,
            fact_saturations: (saturations_after - saturations_before) as usize,
            probes_pruned: traversal.pruned,
            lattice_depth: traversal.depth,
        }
    }

    /// The flat reference planner: probes the query against **every**
    /// materialized view (one batch through the memo table — the query is
    /// normalized and fact-saturated once for all N views) and reports all
    /// subsuming views, smallest extension first. Kept as the baseline the
    /// lattice traversal is verified against and measured relative to
    /// (experiment E9).
    ///
    /// Counter parity with [`OptimizedDatabase::plan`]: every `QueryPlan`
    /// field is populated with the flat scan's honest value —
    /// `probes_pruned` is 0 (the flat scan probes everything) and
    /// `lattice_depth` is the full classified depth (the depth a
    /// traversal probing everything reaches) — so bench tables and tests
    /// can diff the two planners field by field.
    pub fn plan_flat(&mut self, query: &QueryClassDecl) -> QueryPlan {
        let query_concept = match translate_query(
            query,
            self.db.model(),
            &mut self.translated.vocabulary,
            &mut self.translated.arena,
        ) {
            Ok(concept) => concept,
            Err(_) => return QueryPlan::default(),
        };
        let candidates = self.translated_plan_entries();
        let checker = SubsumptionChecker::new(&self.translated.schema);
        let view_concepts: Vec<_> = candidates.iter().map(|(_, _, c)| *c).collect();
        let (hits_before, misses_before) = self.subsumption_cache.stats();
        let (saturations_before, _) = self.subsumption_cache.saturation_stats();
        let outcomes = checker.check_many(
            &mut self.translated.arena,
            query_concept,
            &view_concepts,
            &mut self.subsumption_cache,
        );
        let (hits_after, misses_after) = self.subsumption_cache.stats();
        let (saturations_after, _) = self.subsumption_cache.saturation_stats();
        let mut subsuming: Vec<(String, usize)> = candidates
            .into_iter()
            .zip(outcomes)
            .filter(|(_, outcome)| outcome.subsumed())
            .map(|((name, extent, _), _)| (name, extent))
            .collect();
        subsuming.sort_by_key(|(_, size)| *size);
        QueryPlan {
            chosen_view: subsuming.first().map(|(name, _)| name.clone()),
            subsuming_views: subsuming.into_iter().map(|(name, _)| name).collect(),
            cached_probes: (hits_after - hits_before) as usize,
            fresh_probes: (misses_after - misses_before) as usize,
            fact_saturations: (saturations_after - saturations_before) as usize,
            probes_pruned: 0,
            lattice_depth: self.catalog.lattice_depth(),
        }
    }

    /// One pass over the catalog filling in missing view concepts through
    /// `view_concept`: the shared lookup of every planner-side consumer
    /// (the flat scan, [`OptimizedDatabase::view_subsumes`]).
    fn translated_plan_entries(&mut self) -> Vec<(String, usize, ConceptId)> {
        let db = &self.db;
        let queries = &self.translated.queries;
        let vocabulary = &mut self.translated.vocabulary;
        let arena = &mut self.translated.arena;
        self.catalog.plan_entries_with(|definition| {
            view_concept(definition, db, queries, vocabulary, arena)
        })
    }

    /// Whether the concept of view `sub` is Σ-subsumed by the concept of
    /// view `sup` (both must be materialized and translatable). This is
    /// the probe the lattice classification is built from, exposed so
    /// tests can verify the classified edges against direct pairwise
    /// checks.
    pub fn view_subsumes(&mut self, sub: &str, sup: &str) -> Option<bool> {
        let entries = self.translated_plan_entries();
        let concept_of = |name: &str| {
            entries
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|(_, _, c)| *c)
        };
        let (a, b) = (concept_of(sub)?, concept_of(sup)?);
        let checker = SubsumptionChecker::new(&self.translated.schema);
        Some(checker.subsumes_cached(
            &mut self.translated.arena,
            a,
            b,
            &mut self.subsumption_cache,
        ))
    }

    /// The cardinality-statistics catalog, refreshed incrementally from
    /// the delta log up to the current data version.
    pub fn statistics(&mut self) -> &Statistics {
        self.stats.refresh(&self.db);
        &self.stats
    }

    /// Executes a query with the optimizer: refreshes stale views, plans
    /// (via the lattice traversal), chooses the **cheapest** frontier
    /// member by estimated filter cost (never worse than the
    /// smallest-extension pick — the estimate is monotone in the
    /// candidate count), narrows the view's extension by the query's
    /// schema-superclass extents in the cost model's cheapest
    /// (ascending-cardinality) intersection order, and filters the
    /// narrowed candidates. Falls back to a full evaluation when no view
    /// subsumes the query.
    pub fn execute(&mut self, query: &QueryClassDecl) -> (BTreeSet<ObjId>, ExecutionStats) {
        let _span = crate::metrics::metrics().execute_ns.span();
        self.catalog.refresh(&self.db);
        let plan = self.plan(query);
        self.stats.refresh(&self.db);
        let cost = CostModel::new(&self.stats, &self.db);
        let chosen = plan
            .subsuming_views
            .iter()
            .filter_map(|name| self.catalog.view(name))
            .min_by(|a, b| {
                let estimate = |v: &crate::views::MaterializedView| {
                    cost.filter_cost(cost.estimated_candidates(v.extent.len(), query), query)
                };
                estimate(a).total_cmp(&estimate(b))
            });
        let (answers, exec) = match chosen {
            Some(view) => {
                let candidates = cost.narrow_candidates(&view.extent, query);
                let answers = evaluate_query_over(&self.db, query, Some(&candidates));
                let stats = ExecutionStats {
                    candidates_examined: candidates.len(),
                    used_view: Some(view.definition.name.clone()),
                    answers: answers.len(),
                };
                (answers, stats)
            }
            None => self.execute_unoptimized(query),
        };
        if let Some(view) = exec.used_view.as_deref() {
            self.stats.record_view_hit(view);
        }
        if self.cell.recording() && query.constraint.is_none() {
            // The writer records into its own log rather than a ring — it
            // is the harvester, so there is nobody to race with.
            self.shape_log.push(ShapeEvent {
                shape: Arc::new(normalize_shape(query)),
                used_view: exec.used_view.clone(),
                candidates_examined: exec.candidates_examined as u64,
                answers: exec.answers as u64,
            });
        }
        (answers, exec)
    }

    /// Configures the workload-adaptive view advisor (see
    /// [`crate::advisor`]). Any mode other than [`AdvisorMode::Off`] turns
    /// on shape recording in the writer and in every reader; `Off` turns
    /// it back off (readers then pay one relaxed atomic load per
    /// execution and nothing else).
    pub fn set_advisor_config(&mut self, config: AdvisorConfig) {
        self.cell.set_recording(config.mode != AdvisorMode::Off);
        self.advisor.set_config(config);
    }

    /// The advisor's mined-shape state and lifecycle counters.
    pub fn advisor(&self) -> &Advisor {
        &self.advisor
    }

    /// The `ADVISE` report: one line per mined candidate (hottest first)
    /// plus a summary line.
    pub fn advisor_report(&self) -> Vec<String> {
        self.advisor.report_lines()
    }

    /// One advisor pass at the publish boundary: harvests every reader's
    /// shape ring plus the writer's own shape log, folds the events into
    /// the decayed frequency table, and — in [`AdvisorMode::Auto`] —
    /// evicts cold auto-views and materializes the gain-scored winners
    /// through the ordinary catalog path. A winner the lattice already
    /// serves about as cheaply through an existing view is rejected
    /// instead of materialized. The advisor only ever evicts names it
    /// minted itself (`__adv_*`); user-declared views are never touched.
    ///
    /// Runs strictly between transactions: on a durable database a pass
    /// that declared a new query class checkpoints (schema changes are
    /// not expressible as WAL deltas), any other catalog change
    /// republishes, and a pass that changed nothing publishes nothing.
    pub fn run_advisor(&mut self) -> Result<AdvisorPass, DurableError> {
        if self.advisor.config().mode == AdvisorMode::Off {
            return Ok(AdvisorPass::default());
        }
        let mut events = Vec::new();
        self.cell.harvest_shapes(&mut events);
        // Reader-side view hits arrive only through the rings; the
        // writer's own executions tallied theirs directly in `execute`.
        for event in &events {
            if let Some(view) = event.used_view.as_deref() {
                self.stats.record_view_hit(view);
            }
        }
        events.append(&mut self.shape_log);
        self.advisor.absorb(&events);
        self.stats.refresh(&self.db);
        // Surface the per-view tallies in the exposition (`STATS` over
        // the wire). Gauges are set, not bumped, so passes are idempotent.
        for (view, hits) in self.stats.view_hit_counts() {
            subq_telemetry::gauge(&format!("subq_view_hits{{view=\"{view}\"}}")).set(hits as i64);
        }
        let version = self.db.data_version();
        let deltas = version.saturating_sub(self.advisor_last_version);
        self.advisor_last_version = version;
        // Estimated membership checks one delta costs an average view,
        // from the maintainer's cumulative candidate-ball sizes.
        let maint = self.catalog.maintenance_stats();
        let maintenance_per_delta =
            maint.candidates_examined as f64 / maint.deltas_applied.max(1) as f64;
        let served = self.catalog.view_names();
        let cost = CostModel::new(&self.stats, &self.db);
        let plan = self
            .advisor
            .plan_pass(&cost, maintenance_per_delta, deltas, &served);
        let mut pass = AdvisorPass {
            harvested: events.len(),
            ..AdvisorPass::default()
        };
        if self.advisor.config().mode != AdvisorMode::Auto {
            return Ok(pass);
        }
        // Evictions first — they free budget for this pass's winners.
        // Defense in depth: only advisor-minted names are ever evicted.
        for name in &plan.evict {
            if Advisor::is_auto_view(name) && self.catalog.evict(name) {
                self.advisor.note_evicted(name);
                pass.evicted.push(name.clone());
            }
        }
        let mut schema_changed = false;
        for (key, existing, definition, expected_extent) in plan.winners {
            // Subsumption rejection: when the lattice already routes this
            // shape through a view whose estimated filter cost is within
            // 2x of a dedicated extension's, a new view buys almost
            // nothing — leave the existing one to serve it.
            let current = self.plan(&definition);
            let incumbent = current
                .chosen_view
                .as_deref()
                .and_then(|name| self.catalog.view(name));
            if let Some(view) = incumbent {
                let cost = CostModel::new(&self.stats, &self.db);
                let via_existing = cost.filter_cost(
                    cost.estimated_candidates(view.extent.len(), &definition),
                    &definition,
                );
                let dedicated = cost.filter_cost(expected_extent as usize, &definition);
                if via_existing <= dedicated * 2.0 + 1.0 {
                    self.advisor.note_rejected_subsumed(key);
                    continue;
                }
            }
            let name = definition.name.clone();
            let fresh = existing.is_none();
            if fresh {
                // The declaration enters the model through the ordinary
                // schema path (`update` panics on an untranslatable
                // model, so pre-validate and skip losers). The served
                // model may carry pre-existing validation warnings, so
                // only problems the new declaration *adds* disqualify
                // it. Evicted auto-views keep their declaration —
                // checkpoint images refer to views by name — so a
                // re-materialization is catalog-only.
                let baseline = subq_dl::validate_model(self.db.model()).len();
                let mut probe = self.db.model().clone();
                probe.queries.push(definition.clone());
                if subq_dl::validate_model(&probe).len() > baseline
                    || subq_translate::translate_model(&probe).is_err()
                {
                    continue;
                }
                self.update(|db| db.model_mut().queries.push(definition.clone()));
                schema_changed = true;
            }
            match self.materialize_view(&name) {
                Ok(()) => {
                    self.advisor.note_materialized(key, &name, fresh);
                    pass.materialized.push(name);
                }
                Err(_) => continue,
            }
        }
        if !pass.materialized.is_empty() || !pass.evicted.is_empty() {
            if self.durable.is_some() && schema_changed {
                self.checkpoint()?;
            } else {
                self.publish_snapshot();
            }
        }
        Ok(pass)
    }

    /// Executes a query without using any materialized view (the baseline
    /// the paper's optimization is compared against).
    pub fn execute_unoptimized(&self, query: &QueryClassDecl) -> (BTreeSet<ObjId>, ExecutionStats) {
        let candidates = initial_candidates(&self.db, query);
        let answers = evaluate_query_over(&self.db, query, Some(&candidates));
        let stats = ExecutionStats {
            candidates_examined: candidates.len(),
            used_view: None,
            answers: answers.len(),
        };
        (answers, stats)
    }
}

/// The lattice-classification oracle of an optimized database: translates
/// view definitions with the shared vocabulary and arena (preferring the
/// model's pre-translated query classes) and answers view-vs-view
/// subsumption probes through the database's memoizing cache, so each
/// view's fact closure is saturated at most once across all insertions.
struct DatabaseOracle<'a> {
    db: &'a Database,
    queries: &'a std::collections::HashMap<String, ConceptId>,
    vocabulary: &'a mut subq_concepts::symbol::Vocabulary,
    arena: &'a mut TermArena,
    cache: &'a mut SubsumptionCache,
    checker: SubsumptionChecker<'a>,
}

impl ClassifyOracle for DatabaseOracle<'_> {
    fn concept_of(&mut self, definition: &QueryClassDecl) -> Option<ConceptId> {
        view_concept(
            definition,
            self.db,
            self.queries,
            self.vocabulary,
            self.arena,
        )
    }

    fn subsumes(&mut self, sub: ConceptId, sup: ConceptId) -> bool {
        self.checker
            .subsumes_cached(self.arena, sub, sup, self.cache)
    }
}

/// The QL concept of a view definition: the model's pre-translated query
/// classes first, a fresh translation of the definition otherwise (e.g.
/// for the synthesized `isA C` views of schema classes). The single
/// lookup behind classification, the flat scan, and `view_subsumes`.
fn view_concept(
    definition: &QueryClassDecl,
    db: &Database,
    queries: &std::collections::HashMap<String, ConceptId>,
    vocabulary: &mut subq_concepts::symbol::Vocabulary,
    arena: &mut TermArena,
) -> Option<ConceptId> {
    queries
        .get(&definition.name)
        .copied()
        .or_else(|| translate_query(definition, db.model(), vocabulary, arena).ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_dl::samples;

    fn hospital_with_many_patients(extra: usize) -> Database {
        let mut db = crate::store::tests::hospital();
        let welby = db.object("welby").expect("exists");
        let flu = db.object("flu").expect("exists");
        let aspirin = db.object("Aspirin").expect("exists");
        // One fully-matching male patient.
        let john = db.add_object("john");
        let john_name = db.add_object("john_name");
        db.assert_class(john, "Patient");
        db.assert_class(john, "Male");
        db.assert_class(john_name, "String");
        db.assert_attr(john, "suffers", flu);
        db.assert_attr(john, "consults", welby);
        db.assert_attr(john, "takes", aspirin);
        db.assert_attr(john, "name", john_name);
        // Many male patients that do not consult anyone: they are scanned
        // by a from-scratch evaluation of QueryPatient (they are in all its
        // superclasses) but are absent from ViewPatient's extension.
        for i in 0..extra {
            let p = db.add_object(&format!("p{i}"));
            let n = db.add_object(&format!("p{i}_name"));
            db.assert_class(p, "Patient");
            db.assert_class(p, "Male");
            db.assert_class(n, "String");
            db.assert_attr(p, "suffers", flu);
            db.assert_attr(p, "name", n);
        }
        db
    }

    #[test]
    fn plan_finds_the_subsuming_view() {
        let db = hospital_with_many_patients(10);
        let model = samples::medical_model();
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        odb.materialize_view("ViewPatient").expect("materializes");
        let query = model.query_class("QueryPatient").expect("declared");
        let plan = odb.plan(query);
        assert_eq!(plan.subsuming_views, vec!["ViewPatient".to_owned()]);
        assert_eq!(plan.chosen_view.as_deref(), Some("ViewPatient"));
    }

    #[test]
    fn optimized_and_unoptimized_execution_agree() {
        let db = hospital_with_many_patients(25);
        let model = samples::medical_model();
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        odb.materialize_view("ViewPatient").expect("materializes");
        let query = model.query_class("QueryPatient").expect("declared");
        let (optimized, opt_stats) = odb.execute(query);
        let (baseline, base_stats) = odb.execute_unoptimized(query);
        assert_eq!(optimized, baseline);
        assert_eq!(opt_stats.answers, base_stats.answers);
        assert_eq!(opt_stats.used_view.as_deref(), Some("ViewPatient"));
        assert!(base_stats.used_view.is_none());
        assert!(
            opt_stats.candidates_examined < base_stats.candidates_examined,
            "the view filter must shrink the search space ({} vs {})",
            opt_stats.candidates_examined,
            base_stats.candidates_examined
        );
    }

    #[test]
    fn repeated_plans_are_answered_from_the_subsumption_cache() {
        let db = hospital_with_many_patients(10);
        let model = samples::medical_model();
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        odb.materialize_view("ViewPatient").expect("materializes");
        odb.materialize_view("Person").expect("materializes");
        let query = model.query_class("QueryPatient").expect("declared");

        let first = odb.plan(query);
        assert_eq!(first.cached_probes, 0);
        assert_eq!(first.fresh_probes, 2);

        let second = odb.plan(query);
        assert_eq!(second.subsuming_views, first.subsuming_views);
        assert_eq!(second.chosen_view, first.chosen_view);
        assert_eq!(second.cached_probes, 2);
        assert_eq!(second.fresh_probes, 0);

        // Database updates invalidate view extents but not subsumption:
        // the memo table keeps answering.
        odb.update(|db| {
            let p = db.add_object("extra");
            db.assert_class(p, "Patient");
        });
        let (answers_a, _) = odb.execute(query);
        let third = odb.plan(query);
        assert_eq!(third.cached_probes, 2);
        assert_eq!(third.fresh_probes, 0);
        let (answers_b, _) = odb.execute(query);
        assert_eq!(answers_a, answers_b);
        let (hits, misses) = odb.subsumption_cache_stats();
        assert!(hits >= 2 * misses, "hits {hits} misses {misses}");
    }

    /// The acceptance criterion of the two-phase split: planning against
    /// N fresh views performs exactly one fact saturation (plus N goal
    /// probes), and repeat plans perform none at all.
    #[test]
    fn planning_against_n_fresh_views_saturates_the_query_once() {
        let db = hospital_with_many_patients(10);
        let model = samples::medical_model();
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        for view in ["ViewPatient", "Person", "Patient", "Doctor", "Male"] {
            odb.materialize_view(view).expect("materializes");
        }
        let query = model.query_class("QueryPatient").expect("declared");

        let first = odb.plan(query);
        assert_eq!(first.fresh_probes, 5);
        assert_eq!(
            first.fact_saturations, 1,
            "all five fresh probes must fork one saturated query"
        );

        let second = odb.plan(query);
        assert_eq!(second.cached_probes, 5);
        assert_eq!(second.fresh_probes, 0);
        assert_eq!(second.fact_saturations, 0);

        // A view added later: its first probe reuses the retained
        // saturated query — still no new saturation.
        odb.materialize_view("Female").expect("materializes");
        let third = odb.plan(query);
        assert_eq!(third.cached_probes, 5);
        assert_eq!(third.fresh_probes, 1);
        assert_eq!(third.fact_saturations, 0);
        assert_eq!(third.subsuming_views, first.subsuming_views);
    }

    /// View concepts are translated once — at classification time — and
    /// cached in the catalog; plans before and after the cache is warm are
    /// identical.
    #[test]
    fn view_concepts_are_translated_once_and_cached_in_the_catalog() {
        let db = hospital_with_many_patients(5);
        let model = samples::medical_model();
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        odb.materialize_view("ViewPatient").expect("materializes");
        odb.materialize_view("Person").expect("materializes");
        // Classification at materialization time already translated and
        // cached every view concept.
        assert!(odb
            .catalog()
            .plan_entries()
            .iter()
            .all(|(_, _, concept)| concept.is_some()));
        let query = model.query_class("QueryPatient").expect("declared");
        let first = odb.plan(query);
        let second = odb.plan(query);
        assert_eq!(first.subsuming_views, second.subsuming_views);
        assert_eq!(first.chosen_view, second.chosen_view);
    }

    /// Satellite regression test: mutating the *schema* through `update`
    /// must drop the memoized verdicts and saturated-query state — a
    /// verdict computed against the old Σ must not survive.
    #[test]
    fn schema_mutation_through_update_drops_stale_verdicts() {
        let db = hospital_with_many_patients(5);
        let model = samples::medical_model();
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        odb.materialize_view("ViewPatient").expect("materializes");
        let query = model.query_class("QueryPatient").expect("declared");

        let before = odb.plan(query);
        assert_eq!(before.subsuming_views, vec!["ViewPatient".to_owned()]);

        // Drop `Person.name` being necessary+single: the subsumption
        // QueryPatient ⊑_Σ ViewPatient depends on it (the S5-created name
        // filler), so the old cached verdict is now wrong.
        odb.update(|db| {
            let person = db
                .model_mut()
                .classes
                .iter_mut()
                .find(|c| c.name == "Person")
                .expect("Person declared");
            for attr in &mut person.attributes {
                if attr.name == "name" {
                    attr.necessary = false;
                    attr.single = false;
                }
            }
        });

        let after = odb.plan(query);
        assert!(
            after.subsuming_views.is_empty(),
            "stale verdict survived the schema mutation: {:?}",
            after.subsuming_views
        );
        // The plan was recomputed, not served from the (dropped) cache.
        assert_eq!(after.cached_probes, 0);
        assert_eq!(after.fresh_probes, 1);
        assert_eq!(after.fact_saturations, 1);

        // Data-only updates keep the cache (the documented behaviour).
        odb.update(|db| {
            let p = db.add_object("one_more");
            db.assert_class(p, "Patient");
        });
        let data_only = odb.plan(query);
        assert_eq!(data_only.cached_probes, 1);
        assert_eq!(data_only.fresh_probes, 0);
    }

    /// Regression: a *schema-only* mutation (no data deltas) can change
    /// what a view's membership condition means — here the constraint of
    /// a query-class superclass — so `update` must force full
    /// re-derivation of the extensions; the delta log has nothing to say
    /// about it.
    #[test]
    fn schema_only_mutations_force_extension_rederivation() {
        use subq_dl::{ConstraintExpr, Term};
        let db = hospital_with_many_patients(3);
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        // A view over the constrained query class (no constraint of its
        // own, so it is materializable; its answers still depend on
        // QueryPatient's clause through the recursive membership check).
        odb.update(|db| {
            db.model_mut().queries.push(QueryClassDecl {
                name: "ViaQuery".into(),
                is_a: vec!["QueryPatient".into()],
                derived: vec![],
                where_eqs: vec![],
                constraint: None,
            });
        });
        odb.materialize_view("ViaQuery").expect("materializes");
        let before = odb.catalog().view("ViaQuery").expect("stored");
        assert!(!before.extent.is_empty(), "john matches QueryPatient");

        // Make QueryPatient's constraint unsatisfiable — purely a schema
        // edit, the data version does not move.
        let data_version = odb.database().data_version();
        odb.update(|db| {
            let qp = db
                .model_mut()
                .queries
                .iter_mut()
                .find(|q| q.name == "QueryPatient")
                .expect("declared");
            qp.constraint = Some(ConstraintExpr::Not(Box::new(ConstraintExpr::Eq(
                Term::This,
                Term::This,
            ))));
        });
        assert_eq!(odb.database().data_version(), data_version);
        odb.refresh_views();
        let after = odb.catalog().view("ViaQuery").expect("stored");
        assert!(
            after.extent.is_empty(),
            "stale extension survived the schema mutation: {:?}",
            after.extent
        );
        assert_eq!(
            *after.extent,
            crate::eval::evaluate_query(odb.database(), &after.definition)
        );
    }

    #[test]
    fn queries_not_subsumed_by_any_view_fall_back_to_full_evaluation() {
        let db = hospital_with_many_patients(5);
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        odb.materialize_view("ViewPatient").expect("materializes");
        // "All patients" is not subsumed by ViewPatient.
        let query = subq_dl::QueryClassDecl {
            name: "AllPatients".into(),
            is_a: vec!["Patient".into()],
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        };
        let plan = odb.plan(&query);
        assert!(plan.subsuming_views.is_empty());
        let (answers, stats) = odb.execute(&query);
        assert!(stats.used_view.is_none());
        assert_eq!(answers, odb.database().class_extent("Patient"));
    }

    #[test]
    fn updates_invalidate_views_and_execution_stays_correct() {
        let db = hospital_with_many_patients(3);
        let model = samples::medical_model();
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        odb.materialize_view("ViewPatient").expect("materializes");
        let query = model.query_class("QueryPatient").expect("declared");
        let (before, _) = odb.execute(query);

        // A new matching male patient arrives.
        odb.update(|db| {
            let welby = db.object("welby").expect("exists");
            let flu = db.object("flu").expect("exists");
            let paul = db.add_object("paul");
            let paul_name = db.add_object("paul_name");
            db.assert_class(paul, "Patient");
            db.assert_class(paul, "Male");
            db.assert_class(paul_name, "String");
            db.assert_attr(paul, "suffers", flu);
            db.assert_attr(paul, "consults", welby);
            db.assert_attr(paul, "name", paul_name);
        });
        let (after, stats) = odb.execute(query);
        assert_eq!(after.len(), before.len() + 1);
        assert_eq!(stats.used_view.as_deref(), Some("ViewPatient"));
        // Cross-check against the baseline.
        let (baseline, _) = odb.execute_unoptimized(query);
        assert_eq!(after, baseline);
    }

    /// The lattice traversal reports the maximal-specific frontier of the
    /// flat scan's subsumer set, prunes probes under failed parents, and
    /// chooses a view with the same (smallest) extension.
    #[test]
    fn lattice_plan_agrees_with_the_flat_scan() {
        let db = hospital_with_many_patients(10);
        let model = samples::medical_model();
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        for view in [
            "Person",
            "Patient",
            "Doctor",
            "Male",
            "Female",
            "ViewPatient",
        ] {
            odb.materialize_view(view).expect("materializes");
        }
        assert!(odb.catalog().lattice_violations().is_empty());
        let query = model.query_class("QueryPatient").expect("declared");
        let lattice = odb.plan(query);
        let flat = odb.plan_flat(query);
        // Flat subsumers: Person, Patient, Male, ViewPatient. The frontier
        // keeps only ViewPatient and Male (Patient and Person have a more
        // specific subsumer below them).
        let mut flat_set = flat.subsuming_views.clone();
        flat_set.sort();
        assert_eq!(flat_set, vec!["Male", "Patient", "Person", "ViewPatient"]);
        let mut frontier = lattice.subsuming_views.clone();
        frontier.sort();
        assert_eq!(frontier, vec!["Male", "ViewPatient"]);
        // Same chosen extension size (the frontier contains a smallest
        // subsumer), hence identical filtered answers.
        let extent = |name: &str| odb.catalog().view(name).expect("stored").len();
        assert_eq!(
            extent(lattice.chosen_view.as_deref().expect("chosen")),
            extent(flat.chosen_view.as_deref().expect("chosen")),
        );
        assert_eq!(lattice.chosen_view, flat.chosen_view);
        // Doctor and Female fail but have no descendants here, so every
        // view is probed; probes + pruned always covers the catalog.
        assert_eq!(lattice.fresh_probes + lattice.cached_probes, 6);
        assert_eq!(lattice.probes_pruned, 0);
        assert!(lattice.lattice_depth >= 3, "Person → Patient → ViewPatient");
        // Counter parity: the flat scan populates the same fields — zero
        // prunes by definition, and the full classified depth (here no
        // probe failed above a deeper node, so both planners report the
        // same depth and the plans diff field by field).
        assert_eq!(flat.probes_pruned, 0);
        assert_eq!(flat.lattice_depth, lattice.lattice_depth);
    }

    /// Satellite regression test: a rejected double materialization and
    /// data-update refreshes leave the lattice consistent — no dangling
    /// nodes, no duplicate edges, identical edge set.
    #[test]
    fn rejected_materialization_and_refresh_keep_the_lattice_consistent() {
        let db = hospital_with_many_patients(4);
        let model = samples::medical_model();
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        for view in ["Person", "Patient", "ViewPatient"] {
            odb.materialize_view(view).expect("materializes");
        }
        let mut edges_before = odb.catalog().lattice_edges();
        edges_before.sort();
        assert!(odb.catalog().lattice_violations().is_empty());

        // Double materialization is rejected and must not disturb the DAG.
        let err = odb.materialize_view("ViewPatient").expect_err("duplicate");
        assert!(matches!(err, ViewError::AlreadyMaterialized { .. }));
        let mut edges = odb.catalog().lattice_edges();
        edges.sort();
        assert_eq!(edges, edges_before);
        assert!(odb.catalog().lattice_violations().is_empty());

        // Data mutations invalidate extents, and the refresh performed by
        // `execute` re-evaluates them — the lattice is untouched.
        odb.update(|db| {
            let p = db.add_object("newcomer");
            db.assert_class(p, "Patient");
        });
        let query = model.query_class("QueryPatient").expect("declared");
        let (answers, _) = odb.execute(query);
        let (baseline, _) = odb.execute_unoptimized(query);
        assert_eq!(answers, baseline);
        let mut edges = odb.catalog().lattice_edges();
        edges.sort();
        assert_eq!(edges, edges_before);
        assert!(odb.catalog().lattice_violations().is_empty());
        assert_eq!(odb.catalog().classified_count(), 3);

        // A schema mutation rebuilds the lattice; the rebuilt diagram is
        // consistent again (and in this case identical).
        odb.update(|db| {
            db.model_mut();
        });
        let _ = odb.plan(query);
        let mut edges = odb.catalog().lattice_edges();
        edges.sort();
        assert_eq!(edges, edges_before);
        assert!(odb.catalog().lattice_violations().is_empty());
    }

    /// Deep chains give the traversal something to prune: a query not
    /// subsumed by the chain root skips the entire chain below it.
    #[test]
    fn failed_root_probe_prunes_the_whole_chain() {
        let db = hospital_with_many_patients(3);
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        for view in ["Doctor", "Person", "Patient", "ViewPatient"] {
            odb.materialize_view(view).expect("materializes");
        }
        // "All females" is subsumed by Person only — the Patient →
        // ViewPatient chain is pruned once Patient fails; Doctor fails on
        // its own.
        let query = subq_dl::QueryClassDecl {
            name: "AllFemales".into(),
            is_a: vec!["Female".into()],
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        };
        let plan = odb.plan(&query);
        assert_eq!(plan.subsuming_views, vec!["Person".to_owned()]);
        // Probed: Person ✓, Patient ✗, Doctor ✗ — ViewPatient pruned.
        assert_eq!(plan.fresh_probes + plan.cached_probes, 3);
        assert_eq!(plan.probes_pruned, 1);
    }

    /// Review regression test: a schema-mutating commit resets the
    /// lattice (`invalidate_concepts`), and readers cannot classify —
    /// `publish_snapshot` must re-classify before capturing the views,
    /// or every published snapshot after a schema change would serve
    /// full scans forever.
    #[test]
    fn published_snapshots_stay_classified_after_schema_commits() {
        let db = hospital_with_many_patients(6);
        let model = samples::medical_model();
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        odb.materialize_view("ViewPatient").expect("materializes");
        odb.publish_snapshot();
        let query = model.query_class("QueryPatient").expect("declared");
        let mut reader = odb.reader();
        assert_eq!(
            reader.plan(query).chosen_view.as_deref(),
            Some("ViewPatient")
        );

        // A no-op model mutation still bumps the schema version: the
        // lattice and all derived state are rebuilt.
        odb.commit(|db| {
            db.model_mut();
        });
        assert!(reader.sync(), "commit must publish a new snapshot");
        let snapshot = reader.snapshot().clone();
        assert!(
            snapshot.views().iter().all(|v| v.classified),
            "published views must be classified after a schema commit"
        );
        let plan = reader.plan(query);
        assert_eq!(plan.chosen_view.as_deref(), Some("ViewPatient"));
        let (answers, stats) = reader.execute(query);
        assert_eq!(stats.used_view.as_deref(), Some("ViewPatient"));
        assert_eq!(
            answers,
            crate::eval::evaluate_query(snapshot.database(), query)
        );
    }

    /// The durable lifecycle end to end: genesis open, logged commits,
    /// a checkpoint, more commits, crash (drop), reopen — the recovered
    /// database answers exactly like the one that never went down, the
    /// restored views are classified, and later commits keep working.
    #[test]
    fn durable_open_commit_checkpoint_and_reopen_roundtrip() {
        use crate::durable::{DurableOptions, FaultyBackend};
        let backend = Arc::new(FaultyBackend::new());
        let model = samples::medical_model();
        let query = model.query_class("QueryPatient").expect("declared").clone();

        let mut odb = OptimizedDatabase::open(backend.clone(), DurableOptions::default(), || {
            hospital_with_many_patients(8)
        })
        .expect("genesis open");
        odb.materialize_view("ViewPatient").expect("materializes");
        odb.materialize_view("Patient").expect("materializes");
        odb.commit_durable(|db| {
            let welby = db.object("welby").expect("exists");
            let flu = db.object("flu").expect("exists");
            let paul = db.add_object("paul");
            let paul_name = db.add_object("paul_name");
            db.assert_class(paul, "Patient");
            db.assert_class(paul, "Male");
            db.assert_class(paul_name, "String");
            db.assert_attr(paul, "suffers", flu);
            db.assert_attr(paul, "consults", welby);
            db.assert_attr(paul, "name", paul_name);
        })
        .expect("commit");
        let checkpoint_version = odb.checkpoint().expect("checkpoint");
        assert_eq!(checkpoint_version, odb.database().data_version());
        // Two more commits land in the WAL only.
        for i in 0..2 {
            odb.commit_durable(|db| {
                let p = db.add_object(&format!("late{i}"));
                db.assert_class(p, "Patient");
            })
            .expect("commit");
        }
        let (expected_answers, _) = odb.execute(&query);
        let expected_version = odb.database().data_version();
        let expected_edges = {
            let mut edges = odb.catalog().lattice_edges();
            edges.sort();
            edges
        };
        let stats = odb.durability_stats().expect("durable");
        assert_eq!(stats.wal_records, 3);
        assert!(stats.wal_bytes > 0);
        assert!(stats.fsyncs >= 3, "group_commit=1 syncs every commit");
        assert_eq!(stats.checkpoints, 2, "genesis image + explicit checkpoint");
        drop(odb); // The crash: in-memory state is gone.

        let mut reopened =
            OptimizedDatabase::open(backend.clone(), DurableOptions::default(), || {
                panic!("an image exists; genesis must not run")
            })
            .expect("recovery");
        assert_eq!(reopened.database().data_version(), expected_version);
        let stats = reopened.durability_stats().expect("durable");
        assert_eq!(
            stats.recovered_records, 2,
            "the two post-checkpoint commits"
        );
        assert_eq!(stats.truncated_tail_bytes, 0, "nothing was torn");
        // Views came back classified with the recorded lattice.
        let mut edges = reopened.catalog().lattice_edges();
        edges.sort();
        assert_eq!(edges, expected_edges);
        let plan = reopened.plan(&query);
        assert_eq!(plan.chosen_view.as_deref(), Some("ViewPatient"));
        let (answers, stats_exec) = reopened.execute(&query);
        assert_eq!(answers, expected_answers);
        assert_eq!(stats_exec.used_view.as_deref(), Some("ViewPatient"));
        let (baseline, _) = reopened.execute_unoptimized(&query);
        assert_eq!(answers, baseline);
        // The engine keeps going: another durable commit, another view.
        reopened
            .commit_durable(|db| {
                let welby = db.object("welby").expect("exists");
                let flu = db.object("flu").expect("exists");
                let q = db.add_object("quincy");
                let q_name = db.add_object("quincy_name");
                db.assert_class(q, "Patient");
                db.assert_class(q, "Male");
                db.assert_class(q_name, "String");
                db.assert_attr(q, "suffers", flu);
                db.assert_attr(q, "consults", welby);
                db.assert_attr(q, "name", q_name);
            })
            .expect("commit after recovery");
        let (after, _) = reopened.execute(&query);
        assert_eq!(after.len(), expected_answers.len() + 1);
        let (baseline, _) = reopened.execute_unoptimized(&query);
        assert_eq!(after, baseline);
    }

    /// A schema-mutating durable commit cannot be expressed as data
    /// deltas: it must checkpoint immediately, and the new model must be
    /// what recovery sees.
    #[test]
    fn schema_mutations_checkpoint_immediately_and_recover() {
        use crate::durable::{DurableOptions, FaultyBackend};
        use subq_dl::QueryClassDecl;
        let backend = Arc::new(FaultyBackend::new());
        let mut odb = OptimizedDatabase::open(backend.clone(), DurableOptions::default(), || {
            hospital_with_many_patients(4)
        })
        .expect("genesis open");
        let images_before = odb.durability_stats().expect("durable").checkpoints;
        odb.commit_durable(|db| {
            db.model_mut().queries.push(QueryClassDecl {
                name: "EveryPatient".into(),
                is_a: vec!["Patient".into()],
                derived: vec![],
                where_eqs: vec![],
                constraint: None,
            });
        })
        .expect("schema commit");
        assert_eq!(
            odb.durability_stats().expect("durable").checkpoints,
            images_before + 1,
            "schema commits checkpoint immediately"
        );
        odb.materialize_view("EveryPatient").expect("materializes");
        odb.checkpoint().expect("checkpoint the view");
        drop(odb);

        let mut reopened = OptimizedDatabase::open(backend, DurableOptions::default(), || {
            panic!("an image exists; genesis must not run")
        })
        .expect("recovery");
        assert!(
            reopened
                .database()
                .model()
                .query_class("EveryPatient")
                .is_some(),
            "the mutated schema survived through the image"
        );
        let query = QueryClassDecl {
            name: "Probe".into(),
            is_a: vec!["Patient".into()],
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        };
        let plan = reopened.plan(&query);
        assert_eq!(plan.chosen_view.as_deref(), Some("EveryPatient"));
    }

    #[test]
    fn every_schema_class_can_be_materialized_as_a_trivial_view() {
        let db = hospital_with_many_patients(2);
        let mut odb = OptimizedDatabase::new(db).expect("translates");
        // "Person" is a schema class, not a query class; materializing it
        // builds the trivial query class `isA Person` — the paper's remark
        // that every schema class can be turned into a query class.
        odb.materialize_view("Person").expect("materializes");
        let view = odb.catalog().view("Person").expect("stored");
        assert_eq!(*view.extent, odb.database().class_extent("Person"));
        // An undeclared name is rejected.
        let err = odb.materialize_view("Nonsense").expect_err("must fail");
        assert!(matches!(err, ViewError::UnknownQuery { .. }));
    }
}
