//! The object store: objects, class memberships, attribute assertions, and
//! schema conformance checking.
//!
//! A database state (Section 2.1) relates objects to classes by
//! instance-relationships and to each other by attribute values. Explicit
//! class membership is propagated upwards along the isA hierarchy ("any
//! instance of a class is also an instance of the superclasses"), and
//! attribute assertions made through an inverse synonym are stored in the
//! primitive direction. Retraction propagates the other way: removing an
//! object from a class also removes it from every subclass, since any
//! subclass membership would immediately re-imply the retracted one.
//!
//! Every effective mutation — object creation, class assertion and
//! retraction (including the propagated ones), attribute assertion and
//! retraction — is recorded in a [`DeltaLog`] stamped with a monotonically
//! increasing [`Database::data_version`]; the incremental view maintainer
//! ([`crate::maintain`]) consumes the log to refresh only affected views.
//!
//! Attribute pairs are held in Fx-hashed forward *and* reverse indexes per
//! attribute, so [`Database::attr_values`] is a lookup proportional to the
//! answer instead of a scan over every pair of the attribute, and the
//! maintainer can walk paths backwards when computing candidate objects.

use crate::maintain::{Delta, DeltaLog};
use crate::objset::ObjSet;
use fxhash::{FxHashMap, FxHashSet, FxHasher};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hasher;
use std::sync::Arc;
use subq_dl::{DlModel, PathFilter};

/// An object identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A violation of the schema found by conformance checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConformanceViolation {
    /// An attribute value is not an instance of the class required by the
    /// declaring class or the attribute's global range.
    IllTypedValue {
        object: String,
        attribute: String,
        value: String,
        required: String,
    },
    /// A `necessary` attribute has no value for a member of its class.
    MissingNecessaryValue {
        object: String,
        attribute: String,
        class: String,
    },
    /// A `single` attribute has more than one value for a member of its
    /// class.
    MultipleValuesForSingle {
        object: String,
        attribute: String,
        class: String,
    },
    /// An object violates a class constraint clause.
    ConstraintViolated { object: String, class: String },
}

impl fmt::Display for ConformanceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceViolation::IllTypedValue {
                object,
                attribute,
                value,
                required,
            } => write!(
                f,
                "value `{value}` of attribute `{attribute}` on `{object}` is not an instance of `{required}`"
            ),
            ConformanceViolation::MissingNecessaryValue {
                object,
                attribute,
                class,
            } => write!(
                f,
                "`{object}` is a `{class}` but has no value for the necessary attribute `{attribute}`"
            ),
            ConformanceViolation::MultipleValuesForSingle {
                object,
                attribute,
                class,
            } => write!(
                f,
                "`{object}` is a `{class}` but has several values for the single attribute `{attribute}`"
            ),
            ConformanceViolation::ConstraintViolated { object, class } => {
                write!(f, "`{object}` violates the constraint clause of `{class}`")
            }
        }
    }
}

/// The pairs of one primitive attribute, indexed in both directions.
///
/// `forward[from]` holds the values, `reverse[to]` the sources; the two
/// maps always describe the same pair set. Postings are compressed
/// bitmaps ([`ObjSet`]), and the total pair count is maintained as an
/// O(1) statistic for the cost model.
#[derive(Clone, Debug, Default)]
struct AttrIndex {
    forward: FxHashMap<ObjId, ObjSet>,
    reverse: FxHashMap<ObjId, ObjSet>,
    /// Number of stored pairs (cardinality statistic, kept in step with
    /// the indexes).
    pairs: usize,
}

impl AttrIndex {
    /// Rebuilds an index from its forward map alone (the checkpoint image
    /// stores only that half; the reverse index and pair count are
    /// derived).
    fn from_forward(forward: FxHashMap<ObjId, ObjSet>) -> AttrIndex {
        let mut reverse: FxHashMap<ObjId, ObjSet> = FxHashMap::default();
        let mut pairs = 0usize;
        for (&from, values) in &forward {
            pairs += values.len();
            for to in values {
                reverse.entry(to).or_default().insert(from);
            }
        }
        AttrIndex {
            forward,
            reverse,
            pairs,
        }
    }

    fn contains(&self, from: ObjId, to: ObjId) -> bool {
        self.forward
            .get(&from)
            .is_some_and(|values| values.contains(&to))
    }

    fn insert(&mut self, from: ObjId, to: ObjId) -> bool {
        if self.forward.entry(from).or_default().insert(to) {
            self.reverse.entry(to).or_default().insert(from);
            self.pairs += 1;
            true
        } else {
            false
        }
    }

    fn remove(&mut self, from: ObjId, to: ObjId) -> bool {
        let Some(values) = self.forward.get_mut(&from) else {
            return false;
        };
        if !values.remove(&to) {
            return false;
        }
        if values.is_empty() {
            self.forward.remove(&from);
        }
        if let Some(sources) = self.reverse.get_mut(&to) {
            sources.remove(&from);
            if sources.is_empty() {
                self.reverse.remove(&to);
            }
        }
        self.pairs -= 1;
        true
    }
}

/// O(1) physical statistics of one primitive attribute's index, for the
/// cost model: total pair count, distinct sources, distinct targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct AttrCardinality {
    pub pairs: usize,
    pub sources: usize,
    pub targets: usize,
}

impl AttrCardinality {
    /// Average out-fanout (values per source), 0 when unused.
    pub fn avg_fanout(&self) -> f64 {
        if self.sources == 0 {
            0.0
        } else {
            self.pairs as f64 / self.sources as f64
        }
    }

    /// Average in-fanout (sources per target), 0 when unused.
    pub fn avg_in_fanout(&self) -> f64 {
        if self.targets == 0 {
            0.0
        } else {
            self.pairs as f64 / self.targets as f64
        }
    }
}

/// Retained delta-log entries are capped: when the log grows past this
/// bound, the oldest half is dropped. Consumers whose snapshot predates
/// the truncation point (a catalog refreshed less often than every ~32k
/// mutations) detect it through [`DeltaLog::since`] and fall back to full
/// re-evaluation, so the cap bounds memory for log-oblivious users of
/// [`Database`] without affecting correctness.
const DELTA_LOG_CAP: usize = 1 << 16;

/// Objects per copy-on-write chunk of the name table.
const NAME_CHUNK: usize = 512;

/// Copy-on-write shards of the name → id index.
const NAME_SHARDS: usize = 32;

/// The object name table, chunked so that a clone shares all full chunks
/// and appending after a clone copies at most [`NAME_CHUNK`] names.
#[derive(Clone, Debug, Default)]
struct ObjectNames {
    chunks: Vec<Arc<Vec<String>>>,
    len: usize,
}

impl ObjectNames {
    fn push(&mut self, name: String) {
        if self.len.is_multiple_of(NAME_CHUNK) {
            self.chunks.push(Arc::new(Vec::with_capacity(NAME_CHUNK)));
        }
        Arc::make_mut(self.chunks.last_mut().expect("pushed above")).push(name);
        self.len += 1;
    }

    fn get(&self, index: usize) -> &str {
        &self.chunks[index / NAME_CHUNK][index % NAME_CHUNK]
    }
}

/// The name → id index, sharded by name hash so that a clone shares every
/// shard and an insertion after a clone copies one shard (1/[`NAME_SHARDS`]
/// of the objects), not the whole map.
#[derive(Clone, Debug)]
struct NameIndex {
    shards: Vec<Arc<FxHashMap<String, ObjId>>>,
}

impl Default for NameIndex {
    fn default() -> Self {
        NameIndex {
            shards: std::iter::repeat_with(|| Arc::new(FxHashMap::default()))
                .take(NAME_SHARDS)
                .collect(),
        }
    }
}

impl NameIndex {
    fn shard_of(name: &str) -> usize {
        let mut hasher = FxHasher::default();
        hasher.write(name.as_bytes());
        (hasher.finish() as usize) % NAME_SHARDS
    }

    fn get(&self, name: &str) -> Option<ObjId> {
        self.shards[Self::shard_of(name)].get(name).copied()
    }

    fn insert(&mut self, name: String, id: ObjId) {
        Arc::make_mut(&mut self.shards[Self::shard_of(&name)]).insert(name, id);
    }
}

/// An in-memory database state over a DL model.
///
/// Every bulky component — the model, the name table, the name index, and
/// each per-class extent and per-attribute index — sits behind its own
/// [`Arc`] shard, so `Database::clone` is proportional to the number of
/// *shards* (classes + attributes + name chunks), not to the number of
/// objects or assertions, and a mutation after a clone copies only the
/// shard it touches. This is what makes publishing a read
/// [`Snapshot`](crate::snapshot::Snapshot) after a small transaction
/// cheap.
#[derive(Clone, Debug)]
pub struct Database {
    model: Arc<DlModel>,
    object_names: ObjectNames,
    object_by_name: NameIndex,
    /// Explicit (and upward-propagated) class memberships, one
    /// copy-on-write compressed-bitmap shard per class.
    extents: FxHashMap<String, Arc<ObjSet>>,
    /// Attribute assertions in the primitive direction, indexed both
    /// ways, one copy-on-write shard per attribute.
    attrs: FxHashMap<String, Arc<AttrIndex>>,
    /// Bumped whenever the model is mutated through [`Database::model_mut`];
    /// lets wrappers (the optimizer) detect schema changes and drop any
    /// state derived from the old model.
    schema_version: u64,
    /// The change log behind incremental view maintenance.
    log: DeltaLog,
    /// When the durable engine owns history (`Some`), log entries with
    /// `data_version > floor` are not yet on disk and must never be
    /// dropped: both [`Database::truncate_log`] and the
    /// [`DELTA_LOG_CAP`] enforcement clamp their truncation point to the
    /// floor. The engine advances it after every WAL append and
    /// checkpoint.
    durable_floor: Option<u64>,
}

impl Database {
    /// Creates an empty state over the given model.
    pub fn new(model: DlModel) -> Self {
        Database {
            model: Arc::new(model),
            object_names: ObjectNames::default(),
            object_by_name: NameIndex::default(),
            extents: FxHashMap::default(),
            attrs: FxHashMap::default(),
            schema_version: 0,
            log: DeltaLog::new(),
            durable_floor: None,
        }
    }

    /// Rebuilds a state from checkpoint-image parts: names in id order,
    /// extents, and the forward halves of the attribute indexes (the
    /// reverse indexes and pair counts are derived). The log starts empty
    /// at `data_version`, exactly like a snapshot clone, so the WAL
    /// suffix replays on top and view maintenance sees the replayed
    /// entries as a normal log suffix. Returns `None` when any stored id
    /// is out of the name-table range (a corrupt image must fail to
    /// load, not build a state that panics later).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_checkpoint(
        model: DlModel,
        schema_version: u64,
        data_version: u64,
        names: Vec<String>,
        extents: Vec<(String, ObjSet)>,
        attrs: Vec<(String, Vec<(ObjId, ObjSet)>)>,
    ) -> Option<Database> {
        let count = names.len() as u64;
        let mut object_names = ObjectNames::default();
        let mut object_by_name = NameIndex::default();
        for (index, name) in names.into_iter().enumerate() {
            object_by_name.insert(name.clone(), ObjId(index as u32));
            object_names.push(name);
        }
        let mut extent_map: FxHashMap<String, Arc<ObjSet>> = FxHashMap::default();
        let in_range = |set: &ObjSet| set.last().is_none_or(|id| u64::from(id.0) < count);
        for (class, extent) in extents {
            if !in_range(&extent) {
                return None;
            }
            extent_map.insert(class, Arc::new(extent));
        }
        let mut attr_map: FxHashMap<String, Arc<AttrIndex>> = FxHashMap::default();
        for (attribute, postings) in attrs {
            let mut forward: FxHashMap<ObjId, ObjSet> = FxHashMap::default();
            for (from, values) in postings {
                if u64::from(from.0) >= count || !in_range(&values) {
                    return None;
                }
                forward.insert(from, values);
            }
            attr_map.insert(attribute, Arc::new(AttrIndex::from_forward(forward)));
        }
        Some(Database {
            model: Arc::new(model),
            object_names,
            object_by_name,
            extents: extent_map,
            attrs: attr_map,
            schema_version,
            log: DeltaLog::at_version(data_version),
            durable_floor: None,
        })
    }

    /// The DL model this state conforms to.
    pub fn model(&self) -> &DlModel {
        &self.model
    }

    /// Mutable access to the model, for schema evolution. Every call bumps
    /// [`Database::schema_version`], pessimistically treating the model as
    /// changed: anything derived from it (translations, subsumption
    /// verdicts, saturated queries) must be recomputed.
    pub fn model_mut(&mut self) -> &mut DlModel {
        self.schema_version += 1;
        Arc::make_mut(&mut self.model)
    }

    /// The current schema version (0 until the first [`Database::model_mut`]).
    pub fn schema_version(&self) -> u64 {
        self.schema_version
    }

    /// The current data version: stamped on the last effective state
    /// mutation, strictly increasing, 0 for a fresh state.
    pub fn data_version(&self) -> u64 {
        self.log.version()
    }

    /// Clamps a truncation point to the durable floor: entries newer than
    /// the floor exist nowhere on disk yet and must stay in memory.
    fn clamp_to_durable_floor(&self, through: u64) -> u64 {
        match self.durable_floor {
            Some(floor) => through.min(floor),
            None => through,
        }
    }

    /// Marks every entry with `data_version <= floor` as safely on disk
    /// (WAL or checkpoint image); newer entries are pinned in memory. The
    /// durable engine calls this after each WAL append and checkpoint.
    /// Monotone: the floor never moves backwards.
    pub(crate) fn set_durable_floor(&mut self, floor: u64) {
        let floor = self.durable_floor.map_or(floor, |prev| prev.max(floor));
        self.durable_floor = Some(floor);
    }

    /// The durable floor, when a durable engine owns history.
    pub fn durable_floor(&self) -> Option<u64> {
        self.durable_floor
    }

    /// Appends a delta, enforcing [`DELTA_LOG_CAP`] by dropping the
    /// oldest half when the log outgrows it (amortized O(1)). Under a
    /// durable engine the drop point is clamped to the durable floor, so
    /// the log may temporarily exceed the cap rather than lose entries
    /// that are not yet on disk.
    fn record(&mut self, delta: Delta) {
        self.log.record(delta);
        if self.log.len() > DELTA_LOG_CAP {
            let through =
                self.clamp_to_durable_floor(self.log.version() - (DELTA_LOG_CAP as u64) / 2);
            self.log.truncate_through(through);
        }
    }

    /// The change log (deltas since the last truncation).
    pub fn delta_log(&self) -> &DeltaLog {
        &self.log
    }

    /// A clone for publication as an immutable read snapshot: shares
    /// every copy-on-write shard like `Clone` does, but carries an
    /// **empty** delta log at the same data version — readers never
    /// replay the log, and the retained entries (Strings per delta) are
    /// the one component a plain clone would deep-copy.
    pub fn snapshot_clone(&self) -> Self {
        let mut clone = self.clone_without_log();
        clone.log = DeltaLog::at_version(self.log.version());
        clone
    }

    /// `Clone` minus the log entries (helper for
    /// [`Database::snapshot_clone`]; the log field is overwritten by the
    /// caller, so an empty placeholder avoids the entry deep-copy).
    fn clone_without_log(&self) -> Self {
        Database {
            model: self.model.clone(),
            object_names: self.object_names.clone(),
            object_by_name: self.object_by_name.clone(),
            extents: self.extents.clone(),
            attrs: self.attrs.clone(),
            schema_version: self.schema_version,
            log: DeltaLog::new(),
            // Snapshot clones are read-only; they never truncate, so the
            // floor is irrelevant — but carrying it costs nothing.
            durable_floor: self.durable_floor,
        }
    }

    /// Drops log entries with `data_version <= through`; call with the
    /// oldest version any view maintainer still needs (see
    /// [`DeltaLog::truncate_through`]). Under a durable engine the point
    /// is clamped to the durable floor — truncation never outruns what
    /// the WAL and checkpoint have persisted.
    pub fn truncate_log(&mut self, through: u64) {
        let through = self.clamp_to_durable_floor(through);
        self.log.truncate_through(through);
    }

    /// Creates (or finds) an object by name.
    pub fn add_object(&mut self, name: &str) -> ObjId {
        if let Some(id) = self.object_by_name.get(name) {
            return id;
        }
        let id = ObjId(self.object_names.len as u32);
        self.object_names.push(name.to_owned());
        self.object_by_name.insert(name.to_owned(), id);
        self.record(Delta::AddObject { object: id });
        id
    }

    /// Looks up an object by name.
    pub fn object(&self, name: &str) -> Option<ObjId> {
        self.object_by_name.get(name)
    }

    /// The name of an object.
    pub fn object_name(&self, id: ObjId) -> &str {
        self.object_names.get(id.index())
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.object_names.len
    }

    /// All objects.
    pub fn objects(&self) -> impl Iterator<Item = ObjId> + '_ {
        (0..self.object_names.len as u32).map(ObjId)
    }

    /// The full object universe `0..object_count` as a run-compressed
    /// bitmap — O(objects / 65 536) to build, so unrestricted candidate
    /// sets stop paying a per-object materialization.
    pub fn object_universe(&self) -> ObjSet {
        ObjSet::universe(self.object_names.len as u32)
    }

    /// Asserts that an object is an instance of a class; membership is
    /// propagated to all declared superclasses. Every extent actually
    /// grown is logged as its own delta.
    pub fn assert_class(&mut self, object: ObjId, class: &str) {
        if self
            .extents
            .get(class)
            .is_some_and(|ext| ext.contains(&object))
        {
            return;
        }
        Arc::make_mut(self.extents.entry(class.to_owned()).or_default()).insert(object);
        self.record(Delta::AssertClass {
            object,
            class: class.to_owned(),
        });
        let supers: Vec<String> = self
            .model
            .class(class)
            .map(|decl| decl.is_a.clone())
            .unwrap_or_default();
        for sup in supers {
            self.assert_class(object, &sup);
        }
    }

    /// Retracts an object from a class. Because explicit membership in any
    /// subclass would immediately re-imply the retracted one (upward
    /// propagation), retraction propagates *downwards*: the object also
    /// leaves every declared subclass it is in. Every extent actually
    /// shrunk is logged as its own delta.
    pub fn retract_class(&mut self, object: ObjId, class: &str) {
        // The retracted class plus its transitive subclasses, via a
        // subclass adjacency built in one pass over the declarations.
        let affected: Vec<String> = {
            let mut children: FxHashMap<&str, Vec<&str>> = FxHashMap::default();
            for decl in &self.model.classes {
                for sup in &decl.is_a {
                    children
                        .entry(sup.as_str())
                        .or_default()
                        .push(decl.name.as_str());
                }
            }
            let mut seen: FxHashSet<&str> = FxHashSet::default();
            seen.insert(class);
            let mut out: Vec<String> = Vec::new();
            let mut frontier: Vec<&str> = vec![class];
            while let Some(current) = frontier.pop() {
                out.push(current.to_owned());
                for &child in children.get(current).map(Vec::as_slice).unwrap_or(&[]) {
                    if seen.insert(child) {
                        frontier.push(child);
                    }
                }
            }
            out
        };
        for name in affected {
            let removed = match self.extents.get_mut(&name) {
                // Probe before `make_mut`: a miss must not copy the shard.
                Some(ext) if ext.contains(&object) => Arc::make_mut(ext).remove(&object),
                _ => false,
            };
            if removed {
                self.record(Delta::RetractClass {
                    object,
                    class: name,
                });
            }
        }
    }

    /// Asserts an attribute value; inverse synonyms are stored in the
    /// primitive direction. Logged when the pair is new.
    pub fn assert_attr(&mut self, from: ObjId, attribute: &str, to: ObjId) {
        let (name, (from, to)) = self.resolve_pair(attribute, from, to);
        let index = self.attrs.entry(name.clone()).or_default();
        // Probe before `make_mut`: a re-assertion must not copy the shard.
        if !index.contains(from, to) && Arc::make_mut(index).insert(from, to) {
            self.record(Delta::AssertAttr {
                from,
                attribute: name,
                to,
            });
        }
    }

    /// Retracts an attribute value (inverse synonyms are resolved like in
    /// [`Database::assert_attr`]). Logged when the pair existed.
    pub fn retract_attr(&mut self, from: ObjId, attribute: &str, to: ObjId) {
        let (name, (from, to)) = self.resolve_pair(attribute, from, to);
        let removed = match self.attrs.get_mut(&name) {
            // Probe before `make_mut`: a miss must not copy the shard.
            Some(index) if index.contains(from, to) => Arc::make_mut(index).remove(from, to),
            _ => false,
        };
        if removed {
            self.record(Delta::RetractAttr {
                from,
                attribute: name,
                to,
            });
        }
    }

    /// Applies one WAL-decoded delta *physically*: no isA propagation and
    /// no synonym resolution, because the log already contains every
    /// propagated membership as its own entry and every attribute pair in
    /// the primitive direction. Each applied delta is recorded, so the
    /// in-memory log (and [`Database::data_version`]) advances exactly as
    /// it did when the delta was first produced — which is what lets view
    /// maintenance catch restored extents up through the ordinary
    /// `since(fresh_as_of)` path after recovery.
    ///
    /// Returns `false` (leaving the state untouched) when the delta is
    /// inconsistent with the current state — a non-sequential object id,
    /// an out-of-range reference, a retraction of something absent. The
    /// original log records only *effective* mutations, so on an intact
    /// WAL every replay is effective; an ineffective one means the record
    /// stream is corrupt in a way the CRC did not catch, and recovery
    /// stops there instead of panicking.
    pub(crate) fn apply_replayed(&mut self, delta: Delta, add_object_name: Option<&str>) -> bool {
        let count = self.object_names.len as u32;
        let applied = match &delta {
            Delta::AddObject { object } => match add_object_name {
                Some(name) if object.0 == count && self.object_by_name.get(name).is_none() => {
                    self.object_names.push(name.to_owned());
                    self.object_by_name.insert(name.to_owned(), *object);
                    true
                }
                _ => false,
            },
            Delta::AssertClass { object, class } => {
                object.0 < count
                    && !self
                        .extents
                        .get(class)
                        .is_some_and(|ext| ext.contains(object))
                    && Arc::make_mut(self.extents.entry(class.clone()).or_default()).insert(*object)
            }
            Delta::RetractClass { object, class } => match self.extents.get_mut(class) {
                Some(ext) if ext.contains(object) => Arc::make_mut(ext).remove(object),
                _ => false,
            },
            Delta::AssertAttr {
                from,
                attribute,
                to,
            } => {
                from.0 < count && to.0 < count && {
                    let index = self.attrs.entry(attribute.clone()).or_default();
                    !index.contains(*from, *to) && Arc::make_mut(index).insert(*from, *to)
                }
            }
            Delta::RetractAttr {
                from,
                attribute,
                to,
            } => match self.attrs.get_mut(attribute) {
                Some(index) if index.contains(*from, *to) => {
                    Arc::make_mut(index).remove(*from, *to)
                }
                _ => false,
            },
        };
        if applied {
            self.record(delta);
        }
        applied
    }

    /// Every class extent, sorted by class name — the deterministic
    /// enumeration the checkpoint image is written from.
    pub(crate) fn checkpoint_extents(&self) -> Vec<(&str, &ObjSet)> {
        let mut out: Vec<(&str, &ObjSet)> = self
            .extents
            .iter()
            .map(|(name, ext)| (name.as_str(), ext.as_ref()))
            .collect();
        out.sort_unstable_by_key(|&(name, _)| name);
        out
    }

    /// Every attribute's forward postings, sorted by attribute name and
    /// source id — the reverse half is derived again at load time.
    pub(crate) fn checkpoint_attrs(&self) -> Vec<(&str, Vec<(ObjId, &ObjSet)>)> {
        let mut out: Vec<(&str, Vec<(ObjId, &ObjSet)>)> = self
            .attrs
            .iter()
            .map(|(name, index)| {
                let mut postings: Vec<(ObjId, &ObjSet)> = index
                    .forward
                    .iter()
                    .map(|(&from, values)| (from, values))
                    .collect();
                postings.sort_unstable_by_key(|&(from, _)| from);
                (name.as_str(), postings)
            })
            .collect();
        out.sort_unstable_by_key(|&(name, _)| name);
        out
    }

    /// Resolves a possibly-synonym attribute to its primitive name and
    /// pair direction.
    fn resolve_pair(&self, attribute: &str, from: ObjId, to: ObjId) -> (String, (ObjId, ObjId)) {
        match self.model.resolve_attribute(attribute) {
            Some((decl, true)) => (decl.name.clone(), (to, from)),
            Some((decl, false)) => (decl.name.clone(), (from, to)),
            None => (attribute.to_owned(), (from, to)),
        }
    }

    /// Whether the object is a (direct or inherited) instance of the class.
    pub fn is_instance_of(&self, object: ObjId, class: &str) -> bool {
        self.extents
            .get(class)
            .is_some_and(|ext| ext.contains(&object))
    }

    /// The stored extent of a class (explicit members plus members of
    /// subclasses, which were propagated at assertion time), materialized
    /// as an ordered set. This form copies; every hot path reads the
    /// bitmap through [`Database::class_extent_ref`] instead, leaving
    /// this for tests and ordered API boundaries.
    pub fn class_extent(&self, class: &str) -> BTreeSet<ObjId> {
        self.class_extent_ref(class)
            .map(ObjSet::to_btree)
            .unwrap_or_default()
    }

    /// The stored extent of a class without cloning (`None` when no object
    /// was ever asserted into it) — the maintained compressed-bitmap
    /// index behind [`Database::class_extent`], for hot read paths.
    pub fn class_extent_ref(&self, class: &str) -> Option<&ObjSet> {
        self.extents.get(class).map(Arc::as_ref)
    }

    /// Cardinality of a class extent (0 when nothing was asserted) — an
    /// O(containers) read off the maintained index, for the cost model.
    pub fn class_cardinality(&self, class: &str) -> usize {
        self.extents.get(class).map_or(0, |ext| ext.len())
    }

    /// Names of every class that ever had a member asserted (the keys of
    /// the maintained extent shards) — the enumeration behind a full
    /// statistics collection.
    pub fn class_names(&self) -> impl Iterator<Item = &str> {
        self.extents.keys().map(String::as_str)
    }

    /// Names of every *primitive* attribute that ever had a pair asserted
    /// (the keys of the maintained index shards).
    pub fn attribute_names(&self) -> impl Iterator<Item = &str> {
        self.attrs.keys().map(String::as_str)
    }

    /// The primitive name and direction behind a possibly-synonym
    /// attribute: `(name, true)` when `attribute` is an inverse synonym.
    /// Resolve once per step, then read through [`Database::attr_out`] /
    /// [`Database::attr_in`] on hot paths.
    pub fn resolve_attr_direction<'a>(&'a self, attribute: &'a str) -> (&'a str, bool) {
        match self.model.resolve_attribute(attribute) {
            Some((decl, inv)) => (decl.name.as_str(), inv),
            None => (attribute, false),
        }
    }

    /// The values of a (possibly synonym) attribute for an object,
    /// materialized as an ordered set. This form copies; hot paths read
    /// the postings through [`Database::attr_values_ref`] /
    /// [`Database::attr_out`] / [`Database::attr_in`] instead, leaving
    /// this for tests and ordered API boundaries.
    pub fn attr_values(&self, object: ObjId, attribute: &str) -> BTreeSet<ObjId> {
        self.attr_values_ref(object, attribute)
            .map(ObjSet::to_btree)
            .unwrap_or_default()
    }

    /// The posting list of a (possibly synonym) attribute for an object,
    /// without cloning — `None` when the object has no values.
    pub fn attr_values_ref(&self, object: ObjId, attribute: &str) -> Option<&ObjSet> {
        let (name, inverted) = self.resolve_attr_direction(attribute);
        if inverted {
            self.attr_in(object, name)
        } else {
            self.attr_out(object, name)
        }
    }

    /// Whether `to` is a value of the (possibly synonym) attribute for
    /// `from` — a containment probe on the maintained indexes, no clone.
    pub fn has_attr_value(&self, from: ObjId, attribute: &str, to: ObjId) -> bool {
        let (name, inverted) = self.resolve_attr_direction(attribute);
        let lookup = if inverted {
            self.attr_in(from, name)
        } else {
            self.attr_out(from, name)
        };
        lookup.is_some_and(|values| values.contains(&to))
    }

    /// The values of a *primitive* attribute for a source object, from the
    /// forward index (no clone; `None` when the object has no values).
    pub fn attr_out(&self, from: ObjId, attribute: &str) -> Option<&ObjSet> {
        self.attrs.get(attribute)?.forward.get(&from)
    }

    /// The sources of a *primitive* attribute for a value object, from the
    /// reverse index (no clone; `None` when nothing points at the object).
    pub fn attr_in(&self, to: ObjId, attribute: &str) -> Option<&ObjSet> {
        self.attrs.get(attribute)?.reverse.get(&to)
    }

    /// O(1) cardinality statistics of a *primitive* attribute's index:
    /// pair count, distinct sources, distinct targets. Default (all
    /// zeros) when the attribute was never asserted.
    pub fn attr_cardinality(&self, attribute: &str) -> AttrCardinality {
        self.attrs
            .get(attribute)
            .map(|index| AttrCardinality {
                pairs: index.pairs,
                sources: index.forward.len(),
                targets: index.reverse.len(),
            })
            .unwrap_or_default()
    }

    /// All pairs of a primitive attribute (rebuilt from the forward
    /// index; prefer [`Database::attr_out`] / [`Database::attr_in`] on hot
    /// paths).
    pub fn attr_pairs(&self, attribute: &str) -> BTreeSet<(ObjId, ObjId)> {
        let mut out = BTreeSet::new();
        if let Some(index) = self.attrs.get(attribute) {
            for (&from, values) in &index.forward {
                for to in values {
                    out.insert((from, to));
                }
            }
        }
        out
    }

    /// Whether an object satisfies a path-step filter.
    pub fn satisfies_filter(&self, object: ObjId, filter: &PathFilter) -> bool {
        match filter {
            PathFilter::Any => true,
            PathFilter::Class(class) => class == "Object" || self.is_instance_of(object, class),
            PathFilter::Singleton(name) => self.object(name) == Some(object),
        }
    }

    /// Checks the state against the structural schema (attribute typing,
    /// `necessary`, `single`, and global domain/range declarations) and the
    /// class constraint clauses.
    pub fn check_conformance(&self) -> Vec<ConformanceViolation> {
        let mut violations = Vec::new();
        // Per-class attribute restrictions, read off the maintained
        // indexes without cloning extents or postings.
        for class in &self.model.classes {
            let members = self.class_extent_ref(&class.name);
            for spec in &class.attributes {
                for member in members.into_iter().flatten() {
                    let values = self.attr_values_ref(member, &spec.name);
                    if spec.necessary && values.is_none_or(ObjSet::is_empty) {
                        violations.push(ConformanceViolation::MissingNecessaryValue {
                            object: self.object_name(member).to_owned(),
                            attribute: spec.name.clone(),
                            class: class.name.clone(),
                        });
                    }
                    if spec.single && values.is_some_and(|v| v.len() > 1) {
                        violations.push(ConformanceViolation::MultipleValuesForSingle {
                            object: self.object_name(member).to_owned(),
                            attribute: spec.name.clone(),
                            class: class.name.clone(),
                        });
                    }
                    for value in values.into_iter().flatten() {
                        if spec.range != "Object" && !self.is_instance_of(value, &spec.range) {
                            violations.push(ConformanceViolation::IllTypedValue {
                                object: self.object_name(member).to_owned(),
                                attribute: spec.name.clone(),
                                value: self.object_name(value).to_owned(),
                                required: spec.range.clone(),
                            });
                        }
                    }
                }
            }
            if let Some(constraint) = &class.constraint {
                for member in members.into_iter().flatten() {
                    if !crate::eval::eval_constraint_for(self, constraint, member) {
                        violations.push(ConformanceViolation::ConstraintViolated {
                            object: self.object_name(member).to_owned(),
                            class: class.name.clone(),
                        });
                    }
                }
            }
        }
        // Global attribute domain/range typing.
        for attr in &self.model.attributes {
            for (from, to) in self.attr_pairs(&attr.name) {
                if attr.domain != "Object" && !self.is_instance_of(from, &attr.domain) {
                    violations.push(ConformanceViolation::IllTypedValue {
                        object: self.object_name(from).to_owned(),
                        attribute: attr.name.clone(),
                        value: self.object_name(to).to_owned(),
                        required: attr.domain.clone(),
                    });
                }
                if attr.range != "Object" && !self.is_instance_of(to, &attr.range) {
                    violations.push(ConformanceViolation::IllTypedValue {
                        object: self.object_name(from).to_owned(),
                        attribute: attr.name.clone(),
                        value: self.object_name(to).to_owned(),
                        required: attr.range.clone(),
                    });
                }
            }
        }
        violations
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use subq_dl::samples;

    /// The small hospital state used across the OODB tests: one compliant
    /// patient, one doctor, one disease, one drug.
    pub(crate) fn hospital() -> Database {
        let mut db = Database::new(samples::medical_model());
        let mary = db.add_object("mary");
        let welby = db.add_object("welby");
        let flu = db.add_object("flu");
        let aspirin = db.add_object("Aspirin");
        let mary_name = db.add_object("mary_name");
        let welby_name = db.add_object("welby_name");
        db.assert_class(mary, "Patient");
        db.assert_class(mary, "Female");
        db.assert_class(welby, "Doctor");
        db.assert_class(welby, "Female");
        db.assert_class(flu, "Disease");
        db.assert_class(aspirin, "Drug");
        db.assert_class(mary_name, "String");
        db.assert_class(welby_name, "String");
        db.assert_attr(mary, "suffers", flu);
        db.assert_attr(mary, "consults", welby);
        db.assert_attr(mary, "takes", aspirin);
        db.assert_attr(mary, "name", mary_name);
        db.assert_attr(welby, "name", welby_name);
        db.assert_attr(welby, "skilled_in", flu);
        db
    }

    #[test]
    fn class_membership_propagates_to_superclasses() {
        let db = hospital();
        let mary = db.object("mary").expect("exists");
        assert!(db.is_instance_of(mary, "Patient"));
        assert!(db.is_instance_of(mary, "Person"));
        assert!(!db.is_instance_of(mary, "Doctor"));
        assert!(db.class_extent("Person").len() >= 2);
    }

    #[test]
    fn attribute_values_and_synonyms() {
        let db = hospital();
        let welby = db.object("welby").expect("exists");
        let flu = db.object("flu").expect("exists");
        let mary = db.object("mary").expect("exists");
        assert_eq!(db.attr_values(welby, "skilled_in"), BTreeSet::from([flu]));
        // The inverse synonym reads the same pairs backwards.
        assert_eq!(db.attr_values(flu, "specialist"), BTreeSet::from([welby]));
        assert_eq!(db.attr_values(mary, "consults"), BTreeSet::from([welby]));
        assert!(db.attr_values(welby, "consults").is_empty());
    }

    #[test]
    fn asserting_via_synonym_stores_primitive_direction() {
        let mut db = hospital();
        let welby = db.object("welby").expect("exists");
        let measles = db.add_object("measles");
        db.assert_class(measles, "Disease");
        // "measles' specialist is welby" == "welby is skilled_in measles".
        db.assert_attr(measles, "specialist", welby);
        assert!(db.attr_values(welby, "skilled_in").contains(&measles));
    }

    #[test]
    fn conformant_state_has_no_violations() {
        let db = hospital();
        let violations = db.check_conformance();
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn missing_necessary_value_is_reported() {
        let mut db = hospital();
        let bob = db.add_object("bob");
        db.assert_class(bob, "Patient");
        let violations = db.check_conformance();
        assert!(violations.iter().any(|v| matches!(
            v,
            ConformanceViolation::MissingNecessaryValue { object, attribute, .. }
                if object == "bob" && attribute == "suffers"
        )));
        // bob also lacks a name (necessary on Person).
        assert!(violations.iter().any(|v| matches!(
            v,
            ConformanceViolation::MissingNecessaryValue { object, attribute, .. }
                if object == "bob" && attribute == "name"
        )));
    }

    #[test]
    fn single_and_typing_violations_are_reported() {
        let mut db = hospital();
        let mary = db.object("mary").expect("exists");
        let other_name = db.add_object("other_name");
        db.assert_class(other_name, "String");
        db.assert_attr(mary, "name", other_name);
        let violations = db.check_conformance();
        assert!(violations.iter().any(|v| matches!(
            v,
            ConformanceViolation::MultipleValuesForSingle { object, attribute, .. }
                if object == "mary" && attribute == "name"
        )));

        let mut db = hospital();
        let mary = db.object("mary").expect("exists");
        let rock = db.add_object("rock");
        db.assert_attr(mary, "suffers", rock); // not a Disease
        let violations = db.check_conformance();
        assert!(violations.iter().any(|v| matches!(
            v,
            ConformanceViolation::IllTypedValue { value, required, .. }
                if value == "rock" && required == "Disease"
        )));
    }

    #[test]
    fn retract_class_propagates_to_subclasses() {
        let mut db = hospital();
        let mary = db.object("mary").expect("exists");
        assert!(db.is_instance_of(mary, "Patient"));
        assert!(db.is_instance_of(mary, "Person"));
        // Retracting the superclass takes every subclass membership with
        // it (otherwise upward propagation would re-imply it immediately):
        // mary leaves Patient and Female along with Person.
        db.retract_class(mary, "Person");
        assert!(!db.is_instance_of(mary, "Person"));
        assert!(!db.is_instance_of(mary, "Patient"));
        assert!(!db.is_instance_of(mary, "Female"));
        // A hierarchy the object never belonged to is untouched.
        assert!(db.is_instance_of(db.object("flu").expect("exists"), "Disease"));

        // Retracting a subclass leaves the superclass membership alone.
        let welby = db.object("welby").expect("exists");
        db.retract_class(welby, "Doctor");
        assert!(!db.is_instance_of(welby, "Doctor"));
        assert!(db.is_instance_of(welby, "Person"));
        // Idempotent: a second retraction changes nothing and logs nothing.
        let version = db.data_version();
        db.retract_class(welby, "Doctor");
        assert_eq!(db.data_version(), version);
    }

    #[test]
    fn retract_attr_resolves_synonyms_and_keeps_indexes_consistent() {
        let mut db = hospital();
        let welby = db.object("welby").expect("exists");
        let flu = db.object("flu").expect("exists");
        assert_eq!(db.attr_values(welby, "skilled_in"), BTreeSet::from([flu]));
        // Retract through the inverse synonym: "flu's specialist welby".
        db.retract_attr(flu, "specialist", welby);
        assert!(db.attr_values(welby, "skilled_in").is_empty());
        assert!(db.attr_values(flu, "specialist").is_empty());
        assert!(db.attr_out(welby, "skilled_in").is_none());
        assert!(db.attr_in(flu, "skilled_in").is_none());
        assert!(!db.attr_pairs("skilled_in").contains(&(welby, flu)));
        // Retracting a pair that never existed logs nothing.
        let version = db.data_version();
        db.retract_attr(flu, "specialist", welby);
        assert_eq!(db.data_version(), version);
        // Re-assertion works after retraction.
        db.assert_attr(welby, "skilled_in", flu);
        assert_eq!(db.attr_values(flu, "specialist"), BTreeSet::from([welby]));
    }

    #[test]
    fn reverse_indexes_mirror_forward_lookups() {
        let db = hospital();
        let mary = db.object("mary").expect("exists");
        let welby = db.object("welby").expect("exists");
        assert_eq!(
            db.attr_out(mary, "consults").expect("indexed"),
            &BTreeSet::from([welby])
        );
        assert_eq!(
            db.attr_in(welby, "consults").expect("indexed"),
            &BTreeSet::from([mary])
        );
        assert_eq!(
            db.class_extent_ref("Patient").expect("asserted"),
            &db.class_extent("Patient")
        );
        assert!(db.class_extent_ref("Nonsense").is_none());
        assert_eq!(db.class_cardinality("Patient"), 1);
        assert_eq!(db.class_cardinality("Nonsense"), 0);
        let consults = db.attr_cardinality("consults");
        assert_eq!(
            (consults.pairs, consults.sources, consults.targets),
            (1, 1, 1)
        );
        assert_eq!(db.attr_cardinality("nonsense"), AttrCardinality::default());
    }

    #[test]
    fn the_delta_log_records_effective_changes_once() {
        use crate::maintain::Delta;
        let mut db = Database::new(subq_dl::samples::medical_model());
        assert_eq!(db.data_version(), 0);
        let mary = db.add_object("mary");
        assert_eq!(db.data_version(), 1);
        // Re-adding is a no-op.
        assert_eq!(db.add_object("mary"), mary);
        assert_eq!(db.data_version(), 1);
        // Asserting Patient propagates to Person: two class deltas, each
        // under its own class symbol.
        db.assert_class(mary, "Patient");
        let classes: Vec<String> = db
            .delta_log()
            .since(1)
            .expect("replayable")
            .filter_map(|(_, d)| match d {
                Delta::AssertClass { class, .. } => Some(class.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(classes, vec!["Patient".to_owned(), "Person".to_owned()]);
        // Re-asserting either is silent.
        let version = db.data_version();
        db.assert_class(mary, "Patient");
        db.assert_class(mary, "Person");
        assert_eq!(db.data_version(), version);
        // Attribute assertions through an inverse synonym log the
        // primitive direction.
        let flu = db.add_object("flu");
        let welby = db.add_object("welby");
        db.assert_attr(flu, "specialist", welby); // inverse of skilled_in
        let last: Vec<Delta> = db
            .delta_log()
            .since(db.data_version() - 1)
            .expect("replayable")
            .map(|(_, d)| d.clone())
            .collect();
        assert_eq!(
            last,
            vec![Delta::AssertAttr {
                from: welby,
                attribute: "skilled_in".to_owned(),
                to: flu,
            }]
        );
        // Retraction propagates downwards and logs both extents.
        db.retract_class(mary, "Person");
        let retracted: Vec<String> = db
            .delta_log()
            .since(version + 2)
            .expect("replayable")
            .filter_map(|(_, d)| match d {
                Delta::RetractClass { class, .. } => Some(class.clone()),
                _ => None,
            })
            .collect();
        assert!(retracted.contains(&"Person".to_owned()));
        assert!(retracted.contains(&"Patient".to_owned()));
        // Truncation below a consumer's snapshot blocks its replay.
        let now = db.data_version();
        db.truncate_log(now);
        assert!(db.delta_log().since(version).is_none());
        assert!(db.delta_log().since(now).is_some());
    }

    #[test]
    fn durable_floor_pins_log_against_truncation_and_cap() {
        let mut db = Database::new(subq_dl::samples::medical_model());
        let mary = db.add_object("mary");
        db.assert_class(mary, "Patient"); // + Person (propagated)
        let floor = db.data_version();
        db.set_durable_floor(floor);
        let flu = db.add_object("flu");
        db.assert_attr(mary, "suffers", flu);
        // Explicit truncation clamps to the floor: entries above it are
        // not yet on disk and must survive.
        db.truncate_log(db.data_version());
        assert_eq!(db.delta_log().base_version(), floor);
        assert!(db.delta_log().since(floor).is_some());

        // The 64k cap also clamps: the log grows past the cap rather
        // than dropping undurable entries.
        while db.delta_log().len() <= DELTA_LOG_CAP + 10 {
            let next = db.object_count();
            db.add_object(&format!("o{next}"));
        }
        assert_eq!(db.delta_log().base_version(), floor);
        assert!(db.delta_log().len() > DELTA_LOG_CAP);

        // Once the engine advances the floor (WAL append / checkpoint),
        // cap enforcement resumes on the next recorded delta.
        let now = db.data_version();
        db.set_durable_floor(now);
        db.add_object("one_more");
        assert!(db.delta_log().len() <= DELTA_LOG_CAP);
        assert!(db.delta_log().base_version() > floor);
        // The floor is monotone: a stale (lower) floor cannot re-pin.
        db.set_durable_floor(floor);
        assert_eq!(db.durable_floor(), Some(now));
    }

    #[test]
    fn apply_replayed_mirrors_original_mutations_without_propagation() {
        // Drive a state through the public API, then replay its log into
        // a fresh state delta-by-delta: versions, extents, and attribute
        // indexes must match exactly.
        let original = hospital();
        let mut replayed = Database::new(samples::medical_model());
        for (version, delta) in original.delta_log().since(0).expect("full log") {
            let name = match delta {
                Delta::AddObject { object } => Some(original.object_name(*object)),
                _ => None,
            };
            assert!(
                replayed.apply_replayed(delta.clone(), name),
                "replay of {delta:?} at {version} must be effective"
            );
            assert_eq!(replayed.data_version(), version);
        }
        assert_eq!(replayed.object_count(), original.object_count());
        for class in original.class_names() {
            assert_eq!(
                replayed.class_extent(class),
                original.class_extent(class),
                "extent {class}"
            );
        }
        for attr in original.attribute_names() {
            assert_eq!(
                replayed.attr_pairs(attr),
                original.attr_pairs(attr),
                "pairs {attr}"
            );
            assert_eq!(
                replayed.attr_cardinality(attr),
                original.attr_cardinality(attr),
                "cardinality {attr}"
            );
        }
        // Inconsistent replays are rejected without touching the state.
        let version = replayed.data_version();
        assert!(!replayed.apply_replayed(Delta::AddObject { object: ObjId(999) }, Some("gap")));
        assert!(!replayed.apply_replayed(
            Delta::RetractClass {
                object: ObjId(0),
                class: "Nonsense".to_owned()
            },
            None
        ));
        assert_eq!(replayed.data_version(), version);
    }

    #[test]
    fn checkpoint_parts_roundtrip_through_from_checkpoint() {
        let original = hospital();
        let names: Vec<String> = (0..original.object_count())
            .map(|i| original.object_name(ObjId(i as u32)).to_owned())
            .collect();
        let extents: Vec<(String, ObjSet)> = original
            .checkpoint_extents()
            .into_iter()
            .map(|(name, ext)| (name.to_owned(), ext.clone()))
            .collect();
        let attrs: Vec<(String, Vec<(ObjId, ObjSet)>)> = original
            .checkpoint_attrs()
            .into_iter()
            .map(|(name, postings)| {
                (
                    name.to_owned(),
                    postings
                        .into_iter()
                        .map(|(from, values)| (from, values.clone()))
                        .collect(),
                )
            })
            .collect();
        let restored = Database::from_checkpoint(
            original.model().clone(),
            original.schema_version(),
            original.data_version(),
            names,
            extents,
            attrs,
        )
        .expect("consistent parts");
        assert_eq!(restored.data_version(), original.data_version());
        assert_eq!(restored.object_count(), original.object_count());
        assert_eq!(restored.object("mary"), original.object("mary"));
        for class in original.class_names() {
            assert_eq!(restored.class_extent(class), original.class_extent(class));
        }
        for attr in original.attribute_names() {
            assert_eq!(restored.attr_pairs(attr), original.attr_pairs(attr));
            assert_eq!(
                restored.attr_cardinality(attr),
                original.attr_cardinality(attr)
            );
        }
        // Out-of-range ids in any part must fail the load.
        let bogus = Database::from_checkpoint(
            original.model().clone(),
            0,
            1,
            vec!["only".to_owned()],
            vec![("C".to_owned(), [ObjId(7)].into_iter().collect())],
            Vec::new(),
        );
        assert!(bogus.is_none());
    }

    #[test]
    fn class_constraints_are_checked() {
        let mut db = hospital();
        let mary = db.object("mary").expect("exists");
        // Making the patient also a doctor violates Patient's constraint
        // `not (this in Doctor)`.
        db.assert_class(mary, "Doctor");
        let violations = db.check_conformance();
        assert!(violations.iter().any(|v| matches!(
            v,
            ConformanceViolation::ConstraintViolated { object, class }
                if object == "mary" && class == "Patient"
        )));
    }
}
