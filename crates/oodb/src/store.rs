//! The object store: objects, class memberships, attribute assertions, and
//! schema conformance checking.
//!
//! A database state (Section 2.1) relates objects to classes by
//! instance-relationships and to each other by attribute values. Explicit
//! class membership is propagated upwards along the isA hierarchy ("any
//! instance of a class is also an instance of the superclasses"), and
//! attribute assertions made through an inverse synonym are stored in the
//! primitive direction.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use subq_dl::{DlModel, PathFilter};

/// An object identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A violation of the schema found by conformance checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConformanceViolation {
    /// An attribute value is not an instance of the class required by the
    /// declaring class or the attribute's global range.
    IllTypedValue {
        object: String,
        attribute: String,
        value: String,
        required: String,
    },
    /// A `necessary` attribute has no value for a member of its class.
    MissingNecessaryValue {
        object: String,
        attribute: String,
        class: String,
    },
    /// A `single` attribute has more than one value for a member of its
    /// class.
    MultipleValuesForSingle {
        object: String,
        attribute: String,
        class: String,
    },
    /// An object violates a class constraint clause.
    ConstraintViolated { object: String, class: String },
}

impl fmt::Display for ConformanceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceViolation::IllTypedValue {
                object,
                attribute,
                value,
                required,
            } => write!(
                f,
                "value `{value}` of attribute `{attribute}` on `{object}` is not an instance of `{required}`"
            ),
            ConformanceViolation::MissingNecessaryValue {
                object,
                attribute,
                class,
            } => write!(
                f,
                "`{object}` is a `{class}` but has no value for the necessary attribute `{attribute}`"
            ),
            ConformanceViolation::MultipleValuesForSingle {
                object,
                attribute,
                class,
            } => write!(
                f,
                "`{object}` is a `{class}` but has several values for the single attribute `{attribute}`"
            ),
            ConformanceViolation::ConstraintViolated { object, class } => {
                write!(f, "`{object}` violates the constraint clause of `{class}`")
            }
        }
    }
}

/// An in-memory database state over a DL model.
#[derive(Clone, Debug)]
pub struct Database {
    model: DlModel,
    object_names: Vec<String>,
    object_by_name: HashMap<String, ObjId>,
    /// Explicit (and upward-propagated) class memberships.
    extents: BTreeMap<String, BTreeSet<ObjId>>,
    /// Attribute assertions in the primitive direction.
    attrs: BTreeMap<String, BTreeSet<(ObjId, ObjId)>>,
    /// Bumped whenever the model is mutated through [`Database::model_mut`];
    /// lets wrappers (the optimizer) detect schema changes and drop any
    /// state derived from the old model.
    schema_version: u64,
}

impl Database {
    /// Creates an empty state over the given model.
    pub fn new(model: DlModel) -> Self {
        Database {
            model,
            object_names: Vec::new(),
            object_by_name: HashMap::new(),
            extents: BTreeMap::new(),
            attrs: BTreeMap::new(),
            schema_version: 0,
        }
    }

    /// The DL model this state conforms to.
    pub fn model(&self) -> &DlModel {
        &self.model
    }

    /// Mutable access to the model, for schema evolution. Every call bumps
    /// [`Database::schema_version`], pessimistically treating the model as
    /// changed: anything derived from it (translations, subsumption
    /// verdicts, saturated queries) must be recomputed.
    pub fn model_mut(&mut self) -> &mut DlModel {
        self.schema_version += 1;
        &mut self.model
    }

    /// The current schema version (0 until the first [`Database::model_mut`]).
    pub fn schema_version(&self) -> u64 {
        self.schema_version
    }

    /// Creates (or finds) an object by name.
    pub fn add_object(&mut self, name: &str) -> ObjId {
        if let Some(&id) = self.object_by_name.get(name) {
            return id;
        }
        let id = ObjId(self.object_names.len() as u32);
        self.object_names.push(name.to_owned());
        self.object_by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an object by name.
    pub fn object(&self, name: &str) -> Option<ObjId> {
        self.object_by_name.get(name).copied()
    }

    /// The name of an object.
    pub fn object_name(&self, id: ObjId) -> &str {
        &self.object_names[id.index()]
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.object_names.len()
    }

    /// All objects.
    pub fn objects(&self) -> impl Iterator<Item = ObjId> + '_ {
        (0..self.object_names.len() as u32).map(ObjId)
    }

    /// Asserts that an object is an instance of a class; membership is
    /// propagated to all declared superclasses.
    pub fn assert_class(&mut self, object: ObjId, class: &str) {
        if self
            .extents
            .get(class)
            .is_some_and(|ext| ext.contains(&object))
        {
            return;
        }
        self.extents
            .entry(class.to_owned())
            .or_default()
            .insert(object);
        let supers: Vec<String> = self
            .model
            .class(class)
            .map(|decl| decl.is_a.clone())
            .unwrap_or_default();
        for sup in supers {
            self.assert_class(object, &sup);
        }
    }

    /// Asserts an attribute value; inverse synonyms are stored in the
    /// primitive direction.
    pub fn assert_attr(&mut self, from: ObjId, attribute: &str, to: ObjId) {
        let (name, pair) = match self.model.resolve_attribute(attribute) {
            Some((decl, true)) => (decl.name.clone(), (to, from)),
            Some((decl, false)) => (decl.name.clone(), (from, to)),
            None => (attribute.to_owned(), (from, to)),
        };
        self.attrs.entry(name).or_default().insert(pair);
    }

    /// Whether the object is a (direct or inherited) instance of the class.
    pub fn is_instance_of(&self, object: ObjId, class: &str) -> bool {
        self.extents
            .get(class)
            .is_some_and(|ext| ext.contains(&object))
    }

    /// The stored extent of a class (explicit members plus members of
    /// subclasses, which were propagated at assertion time).
    pub fn class_extent(&self, class: &str) -> BTreeSet<ObjId> {
        self.extents.get(class).cloned().unwrap_or_default()
    }

    /// The values of a (possibly synonym) attribute for an object.
    pub fn attr_values(&self, object: ObjId, attribute: &str) -> BTreeSet<ObjId> {
        let (name, inverted) = match self.model.resolve_attribute(attribute) {
            Some((decl, inv)) => (decl.name.clone(), inv),
            None => (attribute.to_owned(), false),
        };
        let mut out = BTreeSet::new();
        if let Some(pairs) = self.attrs.get(&name) {
            for &(from, to) in pairs {
                if inverted {
                    if to == object {
                        out.insert(from);
                    }
                } else if from == object {
                    out.insert(to);
                }
            }
        }
        out
    }

    /// All pairs of a primitive attribute.
    pub fn attr_pairs(&self, attribute: &str) -> BTreeSet<(ObjId, ObjId)> {
        self.attrs.get(attribute).cloned().unwrap_or_default()
    }

    /// Whether an object satisfies a path-step filter.
    pub fn satisfies_filter(&self, object: ObjId, filter: &PathFilter) -> bool {
        match filter {
            PathFilter::Any => true,
            PathFilter::Class(class) => class == "Object" || self.is_instance_of(object, class),
            PathFilter::Singleton(name) => self.object(name) == Some(object),
        }
    }

    /// Checks the state against the structural schema (attribute typing,
    /// `necessary`, `single`, and global domain/range declarations) and the
    /// class constraint clauses.
    pub fn check_conformance(&self) -> Vec<ConformanceViolation> {
        let mut violations = Vec::new();
        // Per-class attribute restrictions.
        for class in &self.model.classes {
            let members = self.class_extent(&class.name);
            for spec in &class.attributes {
                for &member in &members {
                    let values = self.attr_values(member, &spec.name);
                    if spec.necessary && values.is_empty() {
                        violations.push(ConformanceViolation::MissingNecessaryValue {
                            object: self.object_name(member).to_owned(),
                            attribute: spec.name.clone(),
                            class: class.name.clone(),
                        });
                    }
                    if spec.single && values.len() > 1 {
                        violations.push(ConformanceViolation::MultipleValuesForSingle {
                            object: self.object_name(member).to_owned(),
                            attribute: spec.name.clone(),
                            class: class.name.clone(),
                        });
                    }
                    for value in values {
                        if spec.range != "Object" && !self.is_instance_of(value, &spec.range) {
                            violations.push(ConformanceViolation::IllTypedValue {
                                object: self.object_name(member).to_owned(),
                                attribute: spec.name.clone(),
                                value: self.object_name(value).to_owned(),
                                required: spec.range.clone(),
                            });
                        }
                    }
                }
            }
            if let Some(constraint) = &class.constraint {
                for &member in &members {
                    if !crate::eval::eval_constraint_for(self, constraint, member) {
                        violations.push(ConformanceViolation::ConstraintViolated {
                            object: self.object_name(member).to_owned(),
                            class: class.name.clone(),
                        });
                    }
                }
            }
        }
        // Global attribute domain/range typing.
        for attr in &self.model.attributes {
            for (from, to) in self.attr_pairs(&attr.name) {
                if attr.domain != "Object" && !self.is_instance_of(from, &attr.domain) {
                    violations.push(ConformanceViolation::IllTypedValue {
                        object: self.object_name(from).to_owned(),
                        attribute: attr.name.clone(),
                        value: self.object_name(to).to_owned(),
                        required: attr.domain.clone(),
                    });
                }
                if attr.range != "Object" && !self.is_instance_of(to, &attr.range) {
                    violations.push(ConformanceViolation::IllTypedValue {
                        object: self.object_name(from).to_owned(),
                        attribute: attr.name.clone(),
                        value: self.object_name(to).to_owned(),
                        required: attr.range.clone(),
                    });
                }
            }
        }
        violations
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use subq_dl::samples;

    /// The small hospital state used across the OODB tests: one compliant
    /// patient, one doctor, one disease, one drug.
    pub(crate) fn hospital() -> Database {
        let mut db = Database::new(samples::medical_model());
        let mary = db.add_object("mary");
        let welby = db.add_object("welby");
        let flu = db.add_object("flu");
        let aspirin = db.add_object("Aspirin");
        let mary_name = db.add_object("mary_name");
        let welby_name = db.add_object("welby_name");
        db.assert_class(mary, "Patient");
        db.assert_class(mary, "Female");
        db.assert_class(welby, "Doctor");
        db.assert_class(welby, "Female");
        db.assert_class(flu, "Disease");
        db.assert_class(aspirin, "Drug");
        db.assert_class(mary_name, "String");
        db.assert_class(welby_name, "String");
        db.assert_attr(mary, "suffers", flu);
        db.assert_attr(mary, "consults", welby);
        db.assert_attr(mary, "takes", aspirin);
        db.assert_attr(mary, "name", mary_name);
        db.assert_attr(welby, "name", welby_name);
        db.assert_attr(welby, "skilled_in", flu);
        db
    }

    #[test]
    fn class_membership_propagates_to_superclasses() {
        let db = hospital();
        let mary = db.object("mary").expect("exists");
        assert!(db.is_instance_of(mary, "Patient"));
        assert!(db.is_instance_of(mary, "Person"));
        assert!(!db.is_instance_of(mary, "Doctor"));
        assert!(db.class_extent("Person").len() >= 2);
    }

    #[test]
    fn attribute_values_and_synonyms() {
        let db = hospital();
        let welby = db.object("welby").expect("exists");
        let flu = db.object("flu").expect("exists");
        let mary = db.object("mary").expect("exists");
        assert_eq!(db.attr_values(welby, "skilled_in"), BTreeSet::from([flu]));
        // The inverse synonym reads the same pairs backwards.
        assert_eq!(db.attr_values(flu, "specialist"), BTreeSet::from([welby]));
        assert_eq!(db.attr_values(mary, "consults"), BTreeSet::from([welby]));
        assert!(db.attr_values(welby, "consults").is_empty());
    }

    #[test]
    fn asserting_via_synonym_stores_primitive_direction() {
        let mut db = hospital();
        let welby = db.object("welby").expect("exists");
        let measles = db.add_object("measles");
        db.assert_class(measles, "Disease");
        // "measles' specialist is welby" == "welby is skilled_in measles".
        db.assert_attr(measles, "specialist", welby);
        assert!(db.attr_values(welby, "skilled_in").contains(&measles));
    }

    #[test]
    fn conformant_state_has_no_violations() {
        let db = hospital();
        let violations = db.check_conformance();
        assert!(violations.is_empty(), "unexpected: {violations:?}");
    }

    #[test]
    fn missing_necessary_value_is_reported() {
        let mut db = hospital();
        let bob = db.add_object("bob");
        db.assert_class(bob, "Patient");
        let violations = db.check_conformance();
        assert!(violations.iter().any(|v| matches!(
            v,
            ConformanceViolation::MissingNecessaryValue { object, attribute, .. }
                if object == "bob" && attribute == "suffers"
        )));
        // bob also lacks a name (necessary on Person).
        assert!(violations.iter().any(|v| matches!(
            v,
            ConformanceViolation::MissingNecessaryValue { object, attribute, .. }
                if object == "bob" && attribute == "name"
        )));
    }

    #[test]
    fn single_and_typing_violations_are_reported() {
        let mut db = hospital();
        let mary = db.object("mary").expect("exists");
        let other_name = db.add_object("other_name");
        db.assert_class(other_name, "String");
        db.assert_attr(mary, "name", other_name);
        let violations = db.check_conformance();
        assert!(violations.iter().any(|v| matches!(
            v,
            ConformanceViolation::MultipleValuesForSingle { object, attribute, .. }
                if object == "mary" && attribute == "name"
        )));

        let mut db = hospital();
        let mary = db.object("mary").expect("exists");
        let rock = db.add_object("rock");
        db.assert_attr(mary, "suffers", rock); // not a Disease
        let violations = db.check_conformance();
        assert!(violations.iter().any(|v| matches!(
            v,
            ConformanceViolation::IllTypedValue { value, required, .. }
                if value == "rock" && required == "Disease"
        )));
    }

    #[test]
    fn class_constraints_are_checked() {
        let mut db = hospital();
        let mary = db.object("mary").expect("exists");
        // Making the patient also a doctor violates Patient's constraint
        // `not (this in Doctor)`.
        db.assert_class(mary, "Doctor");
        let violations = db.check_conformance();
        assert!(violations.iter().any(|v| matches!(
            v,
            ConformanceViolation::ConstraintViolated { object, class }
                if object == "mary" && class == "Patient"
        )));
    }
}
