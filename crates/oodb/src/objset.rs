//! The physical object-set representation: a compressed bitmap.
//!
//! [`ObjId`]s are dense `u32`s, which makes a roaring-style bitmap
//! ([`croaring::Bitmap`]) a drop-in physical representation for every set
//! the store maintains — class extents, attribute postings, view
//! extensions, candidate sets. Intersections and unions become
//! word-parallel container ops instead of node-per-element tree walks,
//! and a contiguous id universe compresses to a handful of run
//! containers.
//!
//! `ObjSet` is a *physical* swap, never a semantic one: iteration is
//! ascending like `BTreeSet`'s, and the type compares equal to a
//! `BTreeSet<ObjId>` with the same content so equivalence suites can keep
//! asserting against ordered-set oracles. `BTreeSet` survives only at API
//! boundaries where ordered materialization is the contract (e.g.
//! [`crate::eval::evaluate_query`]).

use crate::store::ObjId;
use croaring::Bitmap;
use std::collections::BTreeSet;

/// A set of [`ObjId`]s backed by a compressed bitmap.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct ObjSet {
    bits: Bitmap,
}

impl ObjSet {
    pub fn new() -> Self {
        ObjSet {
            bits: Bitmap::new(),
        }
    }

    /// The dense universe `0..n` as run containers: O(`n` / 65 536) to
    /// build, regardless of cardinality.
    pub fn universe(n: u32) -> Self {
        ObjSet {
            bits: Bitmap::from_range(0..n),
        }
    }

    pub fn len(&self) -> usize {
        self.bits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    pub fn contains(&self, id: &ObjId) -> bool {
        self.bits.contains(id.0)
    }

    /// Inserts; returns whether the id was absent.
    pub fn insert(&mut self, id: ObjId) -> bool {
        self.bits.insert(id.0)
    }

    /// Removes; returns whether the id was present.
    pub fn remove(&mut self, id: &ObjId) -> bool {
        self.bits.remove(id.0)
    }

    /// Ascending iterator.
    pub fn iter(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.bits.iter().map(ObjId)
    }

    pub fn first(&self) -> Option<ObjId> {
        self.bits.min().map(ObjId)
    }

    pub fn last(&self) -> Option<ObjId> {
        self.bits.max().map(ObjId)
    }

    /// Intersection (word-parallel per 16-bit chunk).
    pub fn and(&self, other: &ObjSet) -> ObjSet {
        ObjSet {
            bits: self.bits.and(&other.bits),
        }
    }

    /// In-place intersection.
    pub fn and_inplace(&mut self, other: &ObjSet) {
        self.bits.and_inplace(&other.bits);
    }

    /// Union.
    pub fn or(&self, other: &ObjSet) -> ObjSet {
        ObjSet {
            bits: self.bits.or(&other.bits),
        }
    }

    /// In-place union (the gather side of scatter-gather).
    pub fn or_inplace(&mut self, other: &ObjSet) {
        self.bits.or_inplace(&other.bits);
    }

    /// Difference `self \ other`.
    pub fn and_not(&self, other: &ObjSet) -> ObjSet {
        ObjSet {
            bits: self.bits.and_not(&other.bits),
        }
    }

    /// Intersection cardinality without materializing the result.
    pub fn intersect_len(&self, other: &ObjSet) -> usize {
        self.bits.intersect_len(&other.bits)
    }

    pub fn intersects(&self, other: &ObjSet) -> bool {
        self.bits.intersects(&other.bits)
    }

    pub fn is_subset(&self, other: &ObjSet) -> bool {
        self.bits.is_subset(&other.bits)
    }

    /// Re-compresses dense chunks into run containers. Call after bulk
    /// construction, not per mutation.
    pub fn run_optimize(&mut self) {
        self.bits.run_optimize();
    }

    /// Splits the set into at most `p` cardinality-balanced, disjoint,
    /// ascending id-range iterators that together cover every member —
    /// the scatter side of scatter-gather evaluation.
    pub fn shards(&self, p: usize) -> Vec<impl Iterator<Item = ObjId> + Send + '_> {
        self.bits
            .shards(p)
            .into_iter()
            .map(|shard| shard.map(ObjId))
            .collect()
    }

    /// Ordered materialization for API boundaries where `BTreeSet` is the
    /// observable contract.
    pub fn to_btree(&self) -> BTreeSet<ObjId> {
        self.iter().collect()
    }

    /// Serializes the set at container granularity (appending to `out`);
    /// the physical layout is preserved, so a run-compressed universe
    /// costs bytes proportional to its runs, not its cardinality. The
    /// checkpoint codec stores every extent, posting, and view extension
    /// in this form.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        self.bits.serialize_into(out);
    }

    /// Serializes to a fresh buffer (see [`ObjSet::serialize_into`]).
    pub fn serialize(&self) -> Vec<u8> {
        self.bits.serialize()
    }

    /// Parses a set written by [`ObjSet::serialize`], consuming the whole
    /// slice; `None` on truncated or structurally invalid input (never
    /// panics — recovery treats `None` as corruption).
    pub fn deserialize(bytes: &[u8]) -> Option<ObjSet> {
        Bitmap::deserialize(bytes).map(|bits| ObjSet { bits })
    }
}

impl FromIterator<ObjId> for ObjSet {
    fn from_iter<I: IntoIterator<Item = ObjId>>(iter: I) -> Self {
        ObjSet {
            bits: iter.into_iter().map(|id| id.0).collect(),
        }
    }
}

impl Extend<ObjId> for ObjSet {
    fn extend<I: IntoIterator<Item = ObjId>>(&mut self, iter: I) {
        self.bits.extend(iter.into_iter().map(|id| id.0));
    }
}

impl<'a> IntoIterator for &'a ObjSet {
    type Item = ObjId;
    type IntoIter = std::iter::Map<croaring::Iter<'a>, fn(u32) -> ObjId>;

    fn into_iter(self) -> Self::IntoIter {
        self.bits.iter().map(ObjId)
    }
}

impl From<&BTreeSet<ObjId>> for ObjSet {
    fn from(set: &BTreeSet<ObjId>) -> Self {
        set.iter().copied().collect()
    }
}

/// Equivalence suites assert bitmap-backed extents against `BTreeSet`
/// oracles; the comparison is semantic (same members).
impl PartialEq<BTreeSet<ObjId>> for ObjSet {
    fn eq(&self, other: &BTreeSet<ObjId>) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl PartialEq<ObjSet> for BTreeSet<ObjId> {
    fn eq(&self, other: &ObjSet) -> bool {
        other == self
    }
}

impl std::fmt::Debug for ObjSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_btreeset_semantics() {
        let mut set = ObjSet::new();
        assert!(set.insert(ObjId(3)));
        assert!(!set.insert(ObjId(3)));
        assert!(set.insert(ObjId(70_000)));
        assert!(set.contains(&ObjId(3)));
        assert!(!set.contains(&ObjId(4)));
        assert_eq!(set.len(), 2);
        let oracle = BTreeSet::from([ObjId(3), ObjId(70_000)]);
        assert_eq!(set, oracle);
        assert_eq!(oracle, set);
        assert!(set.remove(&ObjId(3)));
        assert!(!set.remove(&ObjId(3)));
        assert_ne!(set, oracle);
    }

    #[test]
    fn universe_and_shards() {
        let universe = ObjSet::universe(200_000);
        assert_eq!(universe.len(), 200_000);
        assert!(universe.contains(&ObjId(199_999)));
        assert!(!universe.contains(&ObjId(200_000)));
        let gathered: Vec<ObjId> = universe.shards(4).into_iter().flatten().collect();
        assert_eq!(gathered.len(), 200_000);
        assert!(gathered.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn serialization_roundtrips() {
        let mixed: ObjSet = (0u32..5_000)
            .chain((100_000..100_050).map(|v| v * 2 - 100_000))
            .map(ObjId)
            .collect();
        let bytes = mixed.serialize();
        let back = ObjSet::deserialize(&bytes).expect("own encoding");
        assert_eq!(back, mixed);
        assert_eq!(back.to_btree(), mixed.to_btree());
        assert!(ObjSet::deserialize(&bytes[..bytes.len() - 1]).is_none());
        let mut universe = ObjSet::universe(1 << 20);
        universe.run_optimize();
        let compact = universe.serialize();
        assert!(compact.len() < 256, "runs must encode compactly");
        assert_eq!(ObjSet::deserialize(&compact).expect("valid"), universe);
    }

    #[test]
    fn algebra_matches_ordered_sets() {
        let a: ObjSet = [1u32, 2, 3, 100_000].into_iter().map(ObjId).collect();
        let b: ObjSet = [2u32, 3, 4].into_iter().map(ObjId).collect();
        assert_eq!(a.and(&b), BTreeSet::from([ObjId(2), ObjId(3)]));
        assert_eq!(a.intersect_len(&b), 2);
        assert_eq!(a.or(&b).len(), 5);
        assert_eq!(a.and_not(&b), BTreeSet::from([ObjId(1), ObjId(100_000)]));
        assert!(a.and(&b).is_subset(&a));
        assert_eq!(a.to_btree().len(), 4);
    }
}
