//! Process-wide telemetry of the storage and optimizer layer.
//!
//! Latency histograms span the writer's plan/execute/commit/checkpoint
//! paths and the WAL's fsync barrier; counters mirror the per-catalog
//! [`MaintenanceStats`](crate::maintain::MaintenanceStats) and the
//! per-catalog [`Statistics`](crate::stats::Statistics) refresh counters
//! by bumping at the same sites, so the registry aggregates every
//! catalog in the process without double-counting.

use std::sync::OnceLock;
use subq_telemetry::{Counter, Histogram};

/// Handles to the oodb metrics in the global registry.
pub struct OodbMetrics {
    /// Writer-side `plan` latency (nanoseconds).
    pub plan_ns: Histogram,
    /// Writer-side `execute` latency (nanoseconds).
    pub execute_ns: Histogram,
    /// Reader-side `plan` latency (nanoseconds).
    pub reader_plan_ns: Histogram,
    /// Reader-side `execute` latency (nanoseconds).
    pub reader_execute_ns: Histogram,
    /// `commit`/`commit_durable` end-to-end latency, mutation through
    /// snapshot publication (nanoseconds).
    pub commit_publish_ns: Histogram,
    /// Checkpoint image write latency (nanoseconds).
    pub checkpoint_ns: Histogram,
    /// Durable-open latency: recovery replay (or genesis checkpoint)
    /// through first publication (nanoseconds).
    pub recovery_ns: Histogram,
    /// WAL fsync barrier latency (nanoseconds).
    pub wal_fsync_ns: Histogram,
    /// Records covered per fsync (the group-commit batch size).
    pub wal_batch_records: Histogram,
    /// Candidate-ball size routed to one view by one refresh pass.
    pub maintenance_candidates: Histogram,
    /// Mirrors of [`MaintenanceStats`](crate::maintain::MaintenanceStats).
    pub maint_deltas_applied: Counter,
    pub maint_candidates_examined: Counter,
    pub maint_memberships_evaluated: Counter,
    pub maint_lattice_prunes: Counter,
    pub maint_full_reevaluations: Counter,
    pub maint_empty_refreshes: Counter,
    /// Mirrors of the [`Statistics`](crate::stats::Statistics) refresh
    /// counters.
    pub stats_full_collections: Counter,
    pub stats_incremental_refreshes: Counter,
    pub stats_entries_touched: Counter,
    /// Advisor lifecycle counters (see [`crate::advisor`]).
    pub advisor_materialized: Counter,
    pub advisor_evicted: Counter,
    pub advisor_rejected_subsumed: Counter,
    /// Gain estimate (cost-model probes) of each auto-materialized shape.
    pub advisor_gain_estimate: Histogram,
    /// Queries routed through each chosen frontier view, summed over all
    /// views (per-view tallies live in [`Statistics`](crate::stats::Statistics)
    /// and per-view counters are registered lazily by name).
    pub view_hits: Counter,
}

/// The oodb metrics, registered on first use.
pub fn metrics() -> &'static OodbMetrics {
    static METRICS: OnceLock<OodbMetrics> = OnceLock::new();
    METRICS.get_or_init(|| OodbMetrics {
        plan_ns: subq_telemetry::histogram("subq_plan_ns"),
        execute_ns: subq_telemetry::histogram("subq_execute_ns"),
        reader_plan_ns: subq_telemetry::histogram("subq_reader_plan_ns"),
        reader_execute_ns: subq_telemetry::histogram("subq_reader_execute_ns"),
        commit_publish_ns: subq_telemetry::histogram("subq_commit_publish_ns"),
        checkpoint_ns: subq_telemetry::histogram("subq_checkpoint_ns"),
        recovery_ns: subq_telemetry::histogram("subq_recovery_ns"),
        wal_fsync_ns: subq_telemetry::histogram("subq_wal_fsync_ns"),
        wal_batch_records: subq_telemetry::histogram("subq_wal_batch_records"),
        maintenance_candidates: subq_telemetry::histogram("subq_maintenance_candidates"),
        maint_deltas_applied: subq_telemetry::counter("subq_maintenance_deltas_applied_total"),
        maint_candidates_examined: subq_telemetry::counter(
            "subq_maintenance_candidates_examined_total",
        ),
        maint_memberships_evaluated: subq_telemetry::counter(
            "subq_maintenance_memberships_evaluated_total",
        ),
        maint_lattice_prunes: subq_telemetry::counter("subq_maintenance_lattice_prunes_total"),
        maint_full_reevaluations: subq_telemetry::counter(
            "subq_maintenance_full_reevaluations_total",
        ),
        maint_empty_refreshes: subq_telemetry::counter("subq_maintenance_empty_refreshes_total"),
        stats_full_collections: subq_telemetry::counter("subq_stats_full_collections_total"),
        stats_incremental_refreshes: subq_telemetry::counter(
            "subq_stats_incremental_refreshes_total",
        ),
        stats_entries_touched: subq_telemetry::counter("subq_stats_entries_touched_total"),
        advisor_materialized: subq_telemetry::counter("subq_advisor_materialized_total"),
        advisor_evicted: subq_telemetry::counter("subq_advisor_evicted_total"),
        advisor_rejected_subsumed: subq_telemetry::counter("subq_advisor_rejected_subsumed_total"),
        advisor_gain_estimate: subq_telemetry::histogram("subq_advisor_gain_estimate"),
        view_hits: subq_telemetry::counter("subq_view_hits_total"),
    })
}
