//! The workload-adaptive view advisor: query-shape mining, gain-scored
//! auto-materialization, and cold-view eviction.
//!
//! The paper's optimization only pays off when the views a workload needs
//! are actually materialized — and PRs 1–9 left that choice to a human.
//! This module closes the loop: every [`Reader`](crate::Reader) records
//! the *shape* of each executed query into a lock-free per-reader ring
//! ([`ShapeRing`]); the writer harvests the rings at the publish boundary,
//! mines frequent shapes with exponential decay, scores each candidate by
//! expected gain under the [`CostModel`](crate::stats::CostModel), and —
//! in [`AdvisorMode::Auto`] — materializes the winners through the
//! ordinary [`ViewCatalog`](crate::views::ViewCatalog) path and evicts
//! auto-views the workload has gone cold on. User-declared views are
//! never touched, and the advisor acts only between transactions, so
//! snapshot isolation and read-your-writes are untouched.
//!
//! # Shape normalization
//!
//! Two queries that differ only in a bound constant — a `{obj}` path
//! filter or a `where` literal — are the *same* shape: the advisor
//! generalizes the constant away ([`normalize_shape`]), because a view
//! over the generalized shape Σ-subsumes every constant-bound instance
//! and can therefore serve all of them. Labels are renamed positionally
//! and clauses are sorted, so the normalized declaration is a canonical
//! form fit for hashing ([`shape_key`]).

use crate::stats::CostModel;
use fxhash::{FxHashMap, FxHasher};
use std::cell::UnsafeCell;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use subq_dl::{LabeledPath, PathFilter, QueryClassDecl};

/// The reserved name prefix of advisor-declared views. User `DEFVIEW`s
/// under this prefix are rejected at the server boundary, which is what
/// lets the advisor evict anything carrying it without ever touching a
/// view a user declared by hand.
pub const AUTO_VIEW_PREFIX: &str = "__adv_";

/// Capacity of one reader's shape ring. Full rings drop the newest event
/// (and count the drop) — recording must never block or allocate
/// unboundedly on the read path.
pub(crate) const SHAPE_RING_CAPACITY: usize = 256;

/// Canonicalizes a query into its *shape*: bound constants are
/// generalized away (`(attr: {obj})` becomes `attr`, `where` clauses
/// mentioning anything but a declared label are dropped), derived paths
/// are sorted structurally, labels are renamed positionally (`l0`,
/// `l1`, …) with the surviving `where` equalities rewritten to match,
/// superclasses are sorted and deduplicated, and the name is blanked.
///
/// The result is both a canonical hash key (two queries differing only
/// in a literal normalize identically) and a *materializable
/// generalization*: it Σ-subsumes every query it was derived from, so a
/// view over it serves them all through the ordinary subsumption route.
pub fn normalize_shape(query: &QueryClassDecl) -> QueryClassDecl {
    let mut is_a = query.is_a.clone();
    is_a.sort();
    is_a.dedup();
    // Generalize constants out of the paths, remember each old label with
    // its path, and sort the paths by structure so label numbering does
    // not depend on source order.
    let mut derived: Vec<(Option<String>, LabeledPath)> = query
        .derived
        .iter()
        .map(|path| {
            let steps = path
                .steps
                .iter()
                .map(|step| subq_dl::PathStep {
                    attr: step.attr.clone(),
                    filter: match &step.filter {
                        PathFilter::Singleton(_) => PathFilter::Any,
                        other => other.clone(),
                    },
                })
                .collect();
            (path.label.clone(), LabeledPath { label: None, steps })
        })
        .collect();
    derived.sort_by(|(_, a), (_, b)| format!("{:?}", a.steps).cmp(&format!("{:?}", b.steps)));
    let mut rename: FxHashMap<&str, String> = FxHashMap::default();
    for (index, (old, path)) in derived.iter_mut().enumerate() {
        let new = format!("l{index}");
        if let Some(old) = old.as_deref() {
            rename.insert(old, new.clone());
        }
        path.label = Some(new);
    }
    // Keep only label-to-label equalities (they are structural); a side
    // naming anything else is a bound literal and is generalized away.
    let mut where_eqs: Vec<(String, String)> = query
        .where_eqs
        .iter()
        .filter_map(|(a, b)| {
            let (a, b) = (rename.get(a.as_str())?, rename.get(b.as_str())?);
            let mut pair = [a.clone(), b.clone()];
            pair.sort();
            let [a, b] = pair;
            Some((a, b))
        })
        .collect();
    where_eqs.sort();
    where_eqs.dedup();
    QueryClassDecl {
        name: String::new(),
        is_a,
        derived: derived.into_iter().map(|(_, path)| path).collect(),
        where_eqs,
        constraint: query.constraint.clone(),
    }
}

/// The hash key of a query's canonical shape.
pub fn shape_key(shape: &QueryClassDecl) -> u64 {
    let mut hasher = FxHasher::default();
    format!("{:?}|{:?}|{:?}", shape.is_a, shape.derived, shape.where_eqs).hash(&mut hasher);
    hasher.finish()
}

/// One recorded query execution: the normalized shape plus what the
/// executor observed — enough for the advisor to estimate both the cost
/// the query paid and the cost a dedicated view would have left.
#[derive(Clone, Debug)]
pub struct ShapeEvent {
    /// The canonical shape ([`normalize_shape`]).
    pub shape: Arc<QueryClassDecl>,
    /// The view the executor routed through, if any.
    pub used_view: Option<String>,
    /// Candidates whose membership condition was evaluated.
    pub candidates_examined: u64,
    /// Answers returned — the size a view over this shape would store.
    pub answers: u64,
}

/// A lock-free bounded single-producer/single-consumer ring of
/// [`ShapeEvent`]s: the producer is the one [`Reader`](crate::Reader)
/// owning the ring, the consumer is the writer harvesting at the publish
/// boundary. A full ring drops the newest event and counts it — the read
/// path never blocks.
pub struct ShapeRing {
    slots: Box<[UnsafeCell<Option<ShapeEvent>>]>,
    /// Next slot the consumer pops (only the consumer advances it).
    head: AtomicUsize,
    /// Next slot the producer fills (only the producer advances it).
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// Safety: head/tail form an SPSC handshake — the producer writes a slot
// strictly before publishing it with a Release store of `tail`, and the
// consumer reads slots strictly after an Acquire load of `tail` (and
// vice versa for `head`), so no slot is ever accessed concurrently.
unsafe impl Sync for ShapeRing {}
unsafe impl Send for ShapeRing {}

impl ShapeRing {
    pub(crate) fn new(capacity: usize) -> Arc<Self> {
        Arc::new(ShapeRing {
            slots: (0..capacity).map(|_| UnsafeCell::new(None)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// Producer side: appends one event, dropping it (counted) when the
    /// consumer has fallen a full ring behind.
    pub(crate) fn push(&self, event: ShapeEvent) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Safety: slot `tail` is outside the consumer's published window.
        unsafe { *self.slots[tail % self.slots.len()].get() = Some(event) };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side: moves every published event into `into`.
    pub(crate) fn harvest(&self, into: &mut Vec<ShapeEvent>) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        for index in head..tail {
            // Safety: slots in `head..tail` are published by the producer
            // and not yet released back to it.
            if let Some(event) = unsafe { (*self.slots[index % self.slots.len()].get()).take() } {
                into.push(event);
            }
        }
        self.head.store(tail, Ordering::Release);
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// What the advisor is allowed to do.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdvisorMode {
    /// No recording, no mining — zero read-path cost beyond one relaxed
    /// atomic load per execution.
    #[default]
    Off,
    /// Record and mine shapes, score candidates (visible via `ADVISE`),
    /// but never touch the catalog.
    Observe,
    /// Observe *and* auto-materialize winners / evict cold auto-views at
    /// the publish boundary.
    Auto,
}

impl AdvisorMode {
    /// Parses the `--advisor` flag values.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "off" => Some(AdvisorMode::Off),
            "observe" => Some(AdvisorMode::Observe),
            "auto" => Some(AdvisorMode::Auto),
            _ => None,
        }
    }
}

impl std::fmt::Display for AdvisorMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AdvisorMode::Off => "off",
            AdvisorMode::Observe => "observe",
            AdvisorMode::Auto => "auto",
        })
    }
}

/// The advisor's budget and sensitivity knobs.
#[derive(Clone, Debug)]
pub struct AdvisorConfig {
    pub mode: AdvisorMode,
    /// Upper bound on concurrently materialized auto-views.
    pub max_auto_views: usize,
    /// Minimum expected gain (in cost-model probes per pass) before a
    /// shape is worth materializing.
    pub min_gain: f64,
    /// Multiplier applied to every shape's decayed frequency per advisor
    /// pass — recent traffic dominates, stale phases fade.
    pub decay: f64,
    /// Consecutive cold passes (no routed query) before an auto-view is
    /// evicted.
    pub evict_after: u32,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            mode: AdvisorMode::Off,
            max_auto_views: 8,
            min_gain: 1.0,
            decay: 0.8,
            evict_after: 8,
        }
    }
}

/// One mined shape with its decayed heat and latest observations.
#[derive(Clone, Debug)]
struct ShapeStat {
    shape: Arc<QueryClassDecl>,
    /// Exponentially decayed execution frequency.
    freq: f64,
    /// Total executions ever observed.
    total: u64,
    /// Latest observed candidate count (what the query paid).
    last_candidates: u64,
    /// Latest observed answer count (what a dedicated view would store).
    last_answers: u64,
    /// Latest scoring verdict, for the `ADVISE` report.
    status: ShapeStatus,
    /// Latest computed gain estimate.
    gain: f64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShapeStatus {
    /// Seen but not yet scored (or not scorable: constrained shapes are
    /// not materializable).
    Pending,
    /// Scored below `min_gain` (or the budget was exhausted).
    BelowMinGain,
    /// An existing view already serves it about as cheaply.
    RejectedSubsumed,
    /// Materialized as an auto-view.
    Materialized,
    /// Its auto-view went cold and was evicted.
    Evicted,
}

impl ShapeStatus {
    fn as_str(self) -> &'static str {
        match self {
            ShapeStatus::Pending => "pending",
            ShapeStatus::BelowMinGain => "below_min_gain",
            ShapeStatus::RejectedSubsumed => "rejected_subsumed",
            ShapeStatus::Materialized => "materialized",
            ShapeStatus::Evicted => "evicted",
        }
    }
}

/// The writer-side mining and scoring state. Owned by
/// [`OptimizedDatabase`](crate::OptimizedDatabase); all mutation happens
/// on the writer, at the publish boundary.
#[derive(Debug, Default)]
pub struct Advisor {
    config: AdvisorConfig,
    shapes: FxHashMap<u64, ShapeStat>,
    /// Shape key → the auto-view name minted for it. Survives eviction:
    /// the declaration stays in the model (checkpoint images may refer to
    /// it), so re-materialization is a catalog-only operation.
    auto_views: FxHashMap<u64, String>,
    /// Auto-view name → consecutive passes without a routed query.
    cold_passes: FxHashMap<String, u32>,
    next_id: usize,
    /// Cumulative counters, mirrored into telemetry.
    pub materialized_total: u64,
    pub evicted_total: u64,
    pub rejected_subsumed_total: u64,
    pub events_harvested: u64,
}

/// What one advisor pass did — the writer logs it and tests assert on it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdvisorPass {
    /// Auto-views materialized this pass.
    pub materialized: Vec<String>,
    /// Auto-views evicted this pass.
    pub evicted: Vec<String>,
    /// Events consumed from the rings and the writer's local log.
    pub harvested: usize,
}

/// A scored decision the pass hands back to the database layer, which
/// owns the catalog and the model.
#[derive(Debug)]
pub(crate) struct AdvisorPlan {
    /// `(shape key, existing auto-view name if any, definition, expected
    /// extent size)` to materialize, best gain first. The expected size is
    /// the latest observed answer count — what the subsumption-rejection
    /// test compares the incumbent view's cost against.
    pub winners: Vec<(u64, Option<String>, QueryClassDecl, u64)>,
    /// Auto-view names to evict.
    pub evict: Vec<String>,
}

impl Advisor {
    /// The active configuration.
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    pub(crate) fn set_config(&mut self, config: AdvisorConfig) {
        self.config = config;
    }

    /// Whether a view name belongs to the advisor (and is therefore
    /// evictable).
    pub fn is_auto_view(name: &str) -> bool {
        name.starts_with(AUTO_VIEW_PREFIX)
    }

    /// Folds one harvested batch into the decayed shape table.
    pub(crate) fn absorb(&mut self, events: &[ShapeEvent]) {
        self.events_harvested += events.len() as u64;
        for event in events {
            let key = shape_key(&event.shape);
            let stat = self.shapes.entry(key).or_insert_with(|| ShapeStat {
                shape: event.shape.clone(),
                freq: 0.0,
                total: 0,
                last_candidates: 0,
                last_answers: 0,
                status: ShapeStatus::Pending,
                gain: 0.0,
            });
            stat.freq += 1.0;
            stat.total += 1;
            stat.last_candidates = event.candidates_examined;
            stat.last_answers = event.answers;
            if let Some(view) = &event.used_view {
                if Self::is_auto_view(view) {
                    self.cold_passes.insert(view.clone(), 0);
                }
            }
        }
    }

    /// Decays every shape's heat and returns the materialize/evict plan
    /// under the current budget. `cost` estimates per-query work,
    /// `maintenance_per_delta` the membership checks one delta costs an
    /// average view, and `deltas` how many deltas landed since the last
    /// pass. `served_views` lists currently materialized view names.
    pub(crate) fn plan_pass(
        &mut self,
        cost: &CostModel<'_>,
        maintenance_per_delta: f64,
        deltas: u64,
        served_views: &[String],
    ) -> AdvisorPlan {
        for stat in self.shapes.values_mut() {
            stat.freq *= self.config.decay;
        }
        self.shapes.retain(|_, stat| stat.freq > 1e-3);
        let mut plan = AdvisorPlan {
            winners: Vec::new(),
            evict: Vec::new(),
        };
        // Eviction first: auto-views no query routed through for
        // `evict_after` consecutive passes free budget for this pass's
        // winners. Only names the advisor minted are ever candidates.
        let materialized_auto: Vec<&String> = served_views
            .iter()
            .filter(|name| Self::is_auto_view(name))
            .collect();
        for name in &materialized_auto {
            let cold = self.cold_passes.entry((*name).clone()).or_insert(0);
            *cold += 1;
            if *cold > self.config.evict_after {
                plan.evict.push((*name).clone());
            }
        }
        for name in &plan.evict {
            self.cold_passes.remove(name);
            if let Some((&key, _)) = self.auto_views.iter().find(|(_, v)| *v == name) {
                if let Some(stat) = self.shapes.get_mut(&key) {
                    stat.status = ShapeStatus::Evicted;
                    // Residual decayed heat must not re-materialize an
                    // evicted view on the next pass (an idle writer would
                    // oscillate evict→materialize until the decay drops
                    // below min_gain); only fresh traffic re-heats it.
                    stat.freq = 0.0;
                }
            }
        }
        let mut live_auto = materialized_auto.len() - plan.evict.len();

        // Score every mined shape. Ranked best gain first so the budget
        // goes to the hottest candidates.
        let mut scored: Vec<(u64, f64)> = Vec::new();
        for (&key, stat) in self.shapes.iter_mut() {
            if stat.shape.constraint.is_some() {
                // Not a view; its stored answers would be unsound.
                stat.status = ShapeStatus::Pending;
                continue;
            }
            if let Some(name) = self.auto_views.get(&key) {
                if plan.evict.contains(name) {
                    // Evicted this very pass for being cold — do not
                    // re-materialize it from its residual heat; it must
                    // earn its way back through fresh traffic.
                    stat.status = ShapeStatus::Evicted;
                    continue;
                }
                if served_views.iter().any(|v| v == name) {
                    stat.status = ShapeStatus::Materialized;
                    continue;
                }
            }
            // Gain per query: what the last execution paid minus what
            // filtering a dedicated extension would cost.
            let paid = cost.filter_cost(stat.last_candidates as usize, &stat.shape);
            let with_view = cost.filter_cost(stat.last_answers as usize, &stat.shape);
            let maintenance =
                deltas as f64 * maintenance_per_delta * cost.membership_cost(&stat.shape);
            stat.gain = stat.freq * (paid - with_view).max(0.0) - maintenance;
            if stat.gain < self.config.min_gain {
                stat.status = ShapeStatus::BelowMinGain;
                continue;
            }
            scored.push((key, stat.gain));
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (key, _) in scored {
            if live_auto >= self.config.max_auto_views {
                let stat = self.shapes.get_mut(&key).expect("scored above");
                stat.status = ShapeStatus::BelowMinGain;
                continue;
            }
            let stat = self.shapes.get_mut(&key).expect("scored above");
            let mut definition = (*stat.shape).clone();
            let existing = self.auto_views.get(&key).cloned();
            definition.name = existing
                .clone()
                .unwrap_or_else(|| format!("{AUTO_VIEW_PREFIX}{}", self.next_id));
            plan.winners
                .push((key, existing, definition, stat.last_answers));
            live_auto += 1;
        }
        plan
    }

    /// Records the outcome of one materialization the database performed.
    pub(crate) fn note_materialized(&mut self, key: u64, name: &str, fresh_declaration: bool) {
        if fresh_declaration {
            self.next_id += 1;
        }
        self.auto_views.insert(key, name.to_owned());
        self.cold_passes.insert(name.to_owned(), 0);
        self.materialized_total += 1;
        if let Some(stat) = self.shapes.get_mut(&key) {
            stat.status = ShapeStatus::Materialized;
        }
        let metrics = crate::metrics::metrics();
        metrics.advisor_materialized.inc();
        if let Some(stat) = self.shapes.get(&key) {
            metrics.advisor_gain_estimate.record(stat.gain as u64);
        }
    }

    /// Records that a candidate was rejected because the lattice already
    /// serves it cheaply through an existing view.
    pub(crate) fn note_rejected_subsumed(&mut self, key: u64) {
        self.rejected_subsumed_total += 1;
        crate::metrics::metrics().advisor_rejected_subsumed.inc();
        if let Some(stat) = self.shapes.get_mut(&key) {
            stat.status = ShapeStatus::RejectedSubsumed;
        }
    }

    /// Records one performed eviction.
    pub(crate) fn note_evicted(&mut self, _name: &str) {
        self.evicted_total += 1;
        crate::metrics::metrics().advisor_evicted.inc();
    }

    /// The auto-view name minted for a shape key, if any.
    pub fn auto_view_name(&self, key: u64) -> Option<&str> {
        self.auto_views.get(&key).map(String::as_str)
    }

    /// The current candidate table, one line per mined shape, hottest
    /// first — the payload of the `ADVISE` wire verb. Line grammar:
    /// `candidate <key> freq=<decayed> total=<n> gain=<estimate>
    /// status=<status> view=<name|-> shape=<debug>` followed by a final
    /// `advisor` summary line.
    pub fn report_lines(&self) -> Vec<String> {
        let mut stats: Vec<(&u64, &ShapeStat)> = self.shapes.iter().collect();
        stats.sort_by(|a, b| b.1.freq.total_cmp(&a.1.freq));
        let mut lines: Vec<String> = stats
            .into_iter()
            .map(|(key, stat)| {
                format!(
                    "candidate {key:016x} freq={:.2} total={} gain={:.1} status={} view={} shape={:?}+{:?}",
                    stat.freq,
                    stat.total,
                    stat.gain,
                    stat.status.as_str(),
                    self.auto_views.get(key).map_or("-", String::as_str),
                    stat.shape.is_a,
                    stat.shape.derived.len(),
                )
            })
            .collect();
        lines.push(format!(
            "advisor mode={} shapes={} auto_views={} materialized={} evicted={} rejected_subsumed={} harvested={}",
            self.config.mode,
            self.shapes.len(),
            self.auto_views.len(),
            self.materialized_total,
            self.evicted_total,
            self.rejected_subsumed_total,
            self.events_harvested,
        ));
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_dl::PathStep;

    fn shape_with(filter: PathFilter, literal: &str) -> QueryClassDecl {
        QueryClassDecl {
            name: "Q".into(),
            is_a: vec!["Patient".into(), "Male".into(), "Patient".into()],
            derived: vec![
                LabeledPath {
                    label: Some("d".into()),
                    steps: vec![PathStep {
                        attr: "suffers".into(),
                        filter,
                    }],
                },
                LabeledPath {
                    label: Some("c".into()),
                    steps: vec![PathStep {
                        attr: "consults".into(),
                        filter: PathFilter::Class("Doctor".into()),
                    }],
                },
            ],
            where_eqs: vec![("d".into(), literal.into()), ("c".into(), "d".into())],
            constraint: None,
        }
    }

    /// Satellite 1: the canonical form is pinned — constants are
    /// generalized away, labels are positional, clauses are sorted.
    #[test]
    fn normalization_pins_the_canonical_form() {
        let shape = normalize_shape(&shape_with(PathFilter::Singleton("flu".into()), "aspirin"));
        assert_eq!(shape.name, "");
        assert_eq!(shape.is_a, vec!["Male".to_owned(), "Patient".to_owned()]);
        // Paths sorted structurally: `consults.(…: Doctor)` before the
        // generalized `suffers` (labels are positional after the sort).
        assert_eq!(shape.derived.len(), 2);
        assert_eq!(shape.derived[0].label.as_deref(), Some("l0"));
        assert_eq!(shape.derived[0].steps[0].attr, "consults");
        assert_eq!(
            shape.derived[0].steps[0].filter,
            PathFilter::Class("Doctor".into())
        );
        assert_eq!(shape.derived[1].label.as_deref(), Some("l1"));
        assert_eq!(shape.derived[1].steps[0].attr, "suffers");
        assert_eq!(
            shape.derived[1].steps[0].filter,
            PathFilter::Any,
            "constant generalized"
        );
        // The `where d = aspirin` literal is dropped; `c = d` survives as
        // the positional pair, sides sorted.
        assert_eq!(shape.where_eqs, vec![("l0".to_owned(), "l1".to_owned())]);
        assert!(shape.constraint.is_none());
    }

    /// Two queries differing only in bound constants hash identically;
    /// a structurally different query does not.
    #[test]
    fn constants_do_not_split_shapes() {
        let a = shape_with(PathFilter::Singleton("flu".into()), "aspirin");
        let b = shape_with(PathFilter::Singleton("measles".into()), "penicillin");
        assert_eq!(normalize_shape(&a), normalize_shape(&b));
        assert_eq!(
            shape_key(&normalize_shape(&a)),
            shape_key(&normalize_shape(&b))
        );
        let c = shape_with(PathFilter::Class("Disease".into()), "aspirin");
        assert_ne!(
            shape_key(&normalize_shape(&a)),
            shape_key(&normalize_shape(&c))
        );
    }

    #[test]
    fn ring_is_bounded_and_harvestable() {
        let ring = ShapeRing::new(4);
        let event = |n: u64| ShapeEvent {
            shape: Arc::new(normalize_shape(&shape_with(PathFilter::Any, "x"))),
            used_view: None,
            candidates_examined: n,
            answers: n,
        };
        for n in 0..6 {
            ring.push(event(n));
        }
        assert_eq!(ring.dropped(), 2, "two events over capacity dropped");
        let mut out = Vec::new();
        ring.harvest(&mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].candidates_examined, 0);
        assert_eq!(out[3].candidates_examined, 3);
        // The ring is reusable after a harvest.
        ring.push(event(9));
        out.clear();
        ring.harvest(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].candidates_examined, 9);
    }

    #[test]
    fn advisor_mode_parses_the_flag_values() {
        assert_eq!(AdvisorMode::parse("off"), Some(AdvisorMode::Off));
        assert_eq!(AdvisorMode::parse("observe"), Some(AdvisorMode::Observe));
        assert_eq!(AdvisorMode::parse("auto"), Some(AdvisorMode::Auto));
        assert_eq!(AdvisorMode::parse("bogus"), None);
        assert_eq!(AdvisorMode::Auto.to_string(), "auto");
    }
}
