//! Snapshot-isolated concurrent reads: immutable published states and
//! lock-free reader handles.
//!
//! The engine follows the writer/reader asymmetry of the paper's serving
//! scenario (and of the deductive-database integrity-checking literature):
//! mutations are rare and funnel through the single writer
//! ([`OptimizedDatabase`]), reads dominate and must scale with cores. The
//! split is:
//!
//! * the **writer** mutates its state in place, brings the materialized
//!   views up to date (incrementally and, across independent lattice
//!   components, in parallel — see [`crate::maintain::propagate`]), and
//!   then *publishes* the result as one [`Snapshot`] with a single atomic
//!   swap ([`OptimizedDatabase::publish_snapshot`]);
//! * any number of **readers** ([`Reader`]) hold an `Arc` of a published
//!   snapshot and answer plans, view probes, and query executions against
//!   it with **no locking and no `&mut` on any shared structure** — a
//!   reader that keeps serving an old snapshot simply observes an older,
//!   internally consistent state (snapshot isolation; there is no
//!   write-write concurrency to reason about).
//!
//! Publishing is cheap because every bulky component is copy-on-write at
//! shard granularity: the store clones per-class/per-attribute `Arc`
//! shards ([`crate::store`]), the catalog clones per-view `Arc`'d
//! definitions and extensions ([`crate::views::MaterializedView`]), and
//! the translation (vocabulary, term arena, schema) is frozen into an
//! `Arc` that is rebuilt only when the writer actually interned new
//! concepts.
//!
//! # Subsumption caching across threads
//!
//! `ConceptId`s are indexes into a hash-consed, append-only arena. A
//! reader clones the frozen arena once and interns locally, so ids below
//! the frozen concept count denote identical terms in *every* clone —
//! those pairs go through the snapshot's shared, sharded
//! [`SharedSubsumptionMemo`]; pairs involving a locally interned concept
//! stay in the reader's small private [`SubsumptionCache`] (which also
//! keeps the saturated fact closures, LRU-capped). The writer probes with
//! the same memo, so query shapes it has planned are pre-warmed for every
//! reader.

use crate::advisor::{normalize_shape, ShapeEvent, ShapeRing, SHAPE_RING_CAPACITY};
use crate::eval::{evaluate_query_over, initial_candidates};
use crate::optimizer::{ExecutionStats, QueryPlan};
use crate::stats::{CostModel, Statistics};
use crate::store::{Database, ObjId};
use crate::views::{traverse_lattice, traverse_lattice_traced, MaterializedView, TraversalTrace};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};
use subq_calculus::{SharedSubsumptionMemo, SubsumptionCache, SubsumptionChecker};
use subq_concepts::schema::Schema;
use subq_concepts::symbol::Vocabulary;
use subq_concepts::term::{ConceptId, TermArena};
use subq_dl::QueryClassDecl;
use subq_translate::{translate_query, TranslatedModel};

#[cfg(doc)]
use crate::optimizer::OptimizedDatabase;

/// The frozen structural translation a snapshot carries: everything a
/// reader needs to translate and probe queries, cloned from the writer's
/// `TranslatedModel` at publish time (and only when it changed).
#[derive(Debug)]
pub struct FrozenTranslation {
    /// The vocabulary shared by the schema and all published concepts.
    pub vocabulary: Vocabulary,
    /// The term arena holding all published concepts (readers clone it
    /// and intern on top).
    pub arena: TermArena,
    /// The SL schema Σ.
    pub schema: Schema,
    /// Pre-translated query-class concepts, by name.
    pub queries: HashMap<String, ConceptId>,
}

impl FrozenTranslation {
    pub(crate) fn of(translated: &TranslatedModel) -> Self {
        FrozenTranslation {
            vocabulary: translated.vocabulary.clone(),
            arena: translated.arena.clone(),
            schema: translated.schema.clone(),
            queries: translated.queries.clone(),
        }
    }

    /// Concept ids below this bound are shared-arena ids, identical in
    /// every reader clone — the bound of the shared subsumption memo.
    pub fn shared_bound(&self) -> usize {
        self.arena.concept_count()
    }
}

/// One published, immutable, internally consistent state: the database at
/// a data version together with view extensions that are exactly the
/// scratch evaluations of their definitions at that version.
#[derive(Debug)]
pub struct Snapshot {
    pub(crate) db: Database,
    pub(crate) views: Vec<MaterializedView>,
    pub(crate) translated: Arc<FrozenTranslation>,
    pub(crate) memo: Arc<SharedSubsumptionMemo>,
}

impl Snapshot {
    /// The database state of this snapshot.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The materialized views, in catalog order, with their lattice
    /// edges.
    pub fn views(&self) -> &[MaterializedView] {
        &self.views
    }

    /// One view by name.
    pub fn view(&self, name: &str) -> Option<&MaterializedView> {
        self.views.iter().find(|v| v.definition.name == name)
    }

    /// The data version this snapshot was published at.
    pub fn data_version(&self) -> u64 {
        self.db.data_version()
    }

    /// The schema version this snapshot was published at.
    pub fn schema_version(&self) -> u64 {
        self.db.schema_version()
    }

    /// The frozen translation.
    pub fn translated(&self) -> &FrozenTranslation {
        &self.translated
    }

    /// `(hits, misses)` of the shared subsumption memo attached to this
    /// snapshot's schema epoch.
    pub fn shared_memo_stats(&self) -> (u64, u64) {
        self.memo.stats()
    }
}

/// The publication point: the writer swaps a new [`Snapshot`] in, readers
/// take `Arc` clones out. The lock is held only for the pointer swap /
/// pointer clone — never while planning or evaluating — so it is a
/// handover point, not a serialization point.
pub struct SnapshotCell {
    current: RwLock<Arc<Snapshot>>,
    /// Whether readers record query shapes for the advisor. One relaxed
    /// load per execution when off — the entire read-path cost of a
    /// disabled advisor.
    record_shapes: AtomicBool,
    /// The shape rings of every reader minted from this cell, harvested
    /// by the writer at the publish boundary. Touched only at reader
    /// creation and harvest time — never on the query path.
    rings: Mutex<Vec<Weak<ShapeRing>>>,
}

impl std::fmt::Debug for SnapshotCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("record_shapes", &self.record_shapes)
            .finish_non_exhaustive()
    }
}

impl SnapshotCell {
    pub(crate) fn new(snapshot: Arc<Snapshot>) -> Self {
        SnapshotCell {
            current: RwLock::new(snapshot),
            record_shapes: AtomicBool::new(false),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Turns reader-side shape recording on or off (the writer flips this
    /// when the advisor mode changes).
    pub fn set_recording(&self, on: bool) {
        self.record_shapes.store(on, Ordering::Relaxed);
    }

    /// Whether readers currently record query shapes.
    pub fn recording(&self) -> bool {
        self.record_shapes.load(Ordering::Relaxed)
    }

    pub(crate) fn register_ring(&self, ring: &Arc<ShapeRing>) {
        self.rings
            .lock()
            .expect("shape ring registry poisoned")
            .push(Arc::downgrade(ring));
    }

    /// Drains every live reader ring into `into` and prunes rings whose
    /// readers are gone. Writer-side, at the publish boundary.
    pub(crate) fn harvest_shapes(&self, into: &mut Vec<ShapeEvent>) {
        let mut rings = self.rings.lock().expect("shape ring registry poisoned");
        rings.retain(|weak| match weak.upgrade() {
            Some(ring) => {
                ring.harvest(into);
                true
            }
            None => false,
        });
    }

    /// The latest published snapshot.
    pub fn load(&self) -> Arc<Snapshot> {
        self.current.read().expect("snapshot cell poisoned").clone()
    }

    pub(crate) fn store(&self, snapshot: Arc<Snapshot>) {
        *self.current.write().expect("snapshot cell poisoned") = snapshot;
    }

    /// A new lock-free read handle over this cell — the snapshot handout
    /// for components (like a server's worker threads) that hold the
    /// shared cell but not the [`OptimizedDatabase`](crate::OptimizedDatabase)
    /// itself, which a writer thread may own exclusively.
    pub fn reader(self: &Arc<Self>) -> Reader {
        Reader::new(self.clone())
    }
}

/// A read handle over published snapshots: plans, probes, and executes
/// queries with zero locking and no `&mut` on shared state.
///
/// A reader owns private clones of the frozen vocabulary and arena (so
/// translating an unseen query interns locally, without touching the
/// writer) plus a private [`SubsumptionCache`]; verdicts about
/// shared-arena concept pairs flow through the snapshot's
/// [`SharedSubsumptionMemo`], so readers warm each other. The handle
/// pins one snapshot until [`Reader::sync`] adopts a newer one —
/// in-between, every answer is consistent with the pinned state.
///
/// Readers are independent: create one per thread
/// ([`OptimizedDatabase::reader`]); the creation cost is the clone of the
/// frozen arena and vocabulary.
pub struct Reader {
    cell: Arc<SnapshotCell>,
    snapshot: Arc<Snapshot>,
    vocabulary: Vocabulary,
    arena: TermArena,
    cache: SubsumptionCache,
    shared_bound: usize,
    /// Cardinality statistics of the pinned snapshot, collected lazily on
    /// first execution and dropped when [`Reader::sync`] adopts a newer
    /// snapshot (published snapshots carry an empty log positioned at
    /// their version, so a fresh collection is the incremental path's
    /// truncation fallback anyway).
    stats: Option<Statistics>,
    /// This reader's shape log: executions are pushed here (lock-free,
    /// bounded) when the cell has recording enabled; the writer harvests
    /// at the publish boundary. See [`crate::advisor`].
    shapes: Arc<ShapeRing>,
}

impl Reader {
    pub(crate) fn new(cell: Arc<SnapshotCell>) -> Self {
        let snapshot = cell.load();
        let translated = &snapshot.translated;
        let (vocabulary, arena) = (translated.vocabulary.clone(), translated.arena.clone());
        let shared_bound = translated.shared_bound();
        let shapes = ShapeRing::new(SHAPE_RING_CAPACITY);
        cell.register_ring(&shapes);
        Reader {
            cell,
            snapshot,
            vocabulary,
            arena,
            cache: SubsumptionCache::new(),
            shared_bound,
            stats: None,
            shapes,
        }
    }

    /// The snapshot this reader currently answers from.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snapshot
    }

    /// The data version of the pinned snapshot.
    pub fn data_version(&self) -> u64 {
        self.snapshot.data_version()
    }

    /// Read access to the pinned database state.
    pub fn database(&self) -> &Database {
        self.snapshot.database()
    }

    /// Adopts the latest published snapshot; returns whether it changed.
    /// When the new snapshot carries a different frozen translation (the
    /// writer interned new concepts or re-translated after a schema
    /// change), the private arena, vocabulary, and cache are rebuilt —
    /// locally interned ids would otherwise collide with the new shared
    /// prefix. Data-only publications keep all private state.
    pub fn sync(&mut self) -> bool {
        let latest = self.cell.load();
        if Arc::ptr_eq(&latest, &self.snapshot) {
            return false;
        }
        if !Arc::ptr_eq(&latest.translated, &self.snapshot.translated) {
            self.vocabulary = latest.translated.vocabulary.clone();
            self.arena = latest.translated.arena.clone();
            self.shared_bound = latest.translated.shared_bound();
            self.cache.clear();
        }
        self.snapshot = latest;
        self.stats = None;
        true
    }

    /// `(hits, misses)` of this reader's private subsumption cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Plans a query against the pinned snapshot's view lattice — the
    /// same root-down, prune-on-failure traversal as
    /// [`OptimizedDatabase::plan`], but over the immutable published view
    /// list: no catalog lock, no classification pass (published views are
    /// classified), no writer involvement.
    pub fn plan(&mut self, query: &QueryClassDecl) -> QueryPlan {
        let _span = crate::metrics::metrics().reader_plan_ns.span();
        let snapshot = Arc::clone(&self.snapshot);
        let query_concept = match translate_query(
            query,
            snapshot.db.model(),
            &mut self.vocabulary,
            &mut self.arena,
        ) {
            Ok(concept) => concept,
            Err(_) => return QueryPlan::default(),
        };
        let checker = SubsumptionChecker::new(&snapshot.translated.schema);
        let arena = &mut self.arena;
        let cache = &mut self.cache;
        let bound = self.shared_bound;
        let (hits_before, misses_before) = cache.stats();
        let (saturations_before, _) = cache.saturation_stats();
        let traversal = traverse_lattice(&snapshot.views, |view_concept| {
            checker.subsumes_shared(
                arena,
                query_concept,
                view_concept,
                cache,
                &snapshot.memo,
                bound,
            )
        });
        let (hits_after, misses_after) = cache.stats();
        let (saturations_after, _) = cache.saturation_stats();
        let mut subsuming = traversal.frontier;
        subsuming.sort_by_key(|(_, size)| *size);
        QueryPlan {
            chosen_view: subsuming.first().map(|(name, _)| name.clone()),
            subsuming_views: subsuming.into_iter().map(|(name, _)| name).collect(),
            cached_probes: (hits_after - hits_before) as usize,
            fresh_probes: (misses_after - misses_before) as usize,
            fact_saturations: (saturations_after - saturations_before) as usize,
            probes_pruned: traversal.pruned,
            lattice_depth: traversal.depth,
        }
    }

    /// Executes a query against the pinned snapshot: plans, chooses the
    /// cheapest subsuming frontier view by estimated filter cost, narrows
    /// its stored extension by the query's schema-superclass extents
    /// (cheapest intersection first — same cost model as
    /// [`OptimizedDatabase::execute`]), filters the narrowed candidates,
    /// and falls back to a full evaluation when no view subsumes — all
    /// over immutable state.
    pub fn execute(&mut self, query: &QueryClassDecl) -> (BTreeSet<ObjId>, ExecutionStats) {
        let _span = crate::metrics::metrics().reader_execute_ns.span();
        let plan = self.plan(query);
        let snapshot = Arc::clone(&self.snapshot);
        let stats = self
            .stats
            .get_or_insert_with(|| Statistics::collect(&snapshot.db));
        let cost = CostModel::new(stats, &snapshot.db);
        let chosen = plan
            .subsuming_views
            .iter()
            .filter_map(|name| snapshot.view(name))
            .min_by(|a, b| {
                let estimate = |v: &&MaterializedView| {
                    cost.filter_cost(cost.estimated_candidates(v.extent.len(), query), query)
                };
                estimate(a).total_cmp(&estimate(b))
            });
        let (answers, exec) = match chosen {
            Some(view) => {
                let candidates = cost.narrow_candidates(&view.extent, query);
                let answers = evaluate_query_over(&snapshot.db, query, Some(&candidates));
                let stats = ExecutionStats {
                    candidates_examined: candidates.len(),
                    used_view: Some(view.definition.name.clone()),
                    answers: answers.len(),
                };
                (answers, stats)
            }
            None => self.execute_unoptimized(query),
        };
        if let Some(view) = exec.used_view.as_deref() {
            if let Some(stats) = self.stats.as_mut() {
                stats.record_view_hit(view);
            }
        }
        // Shape recording for the advisor: one relaxed load when off;
        // when on, normalize and push into this reader's bounded ring
        // (never blocks, never allocates past the ring). Constrained
        // queries are skipped — their shapes cannot be materialized.
        if self.cell.recording() && query.constraint.is_none() {
            self.shapes.push(ShapeEvent {
                shape: Arc::new(normalize_shape(query)),
                used_view: exec.used_view.clone(),
                candidates_examined: exec.candidates_examined as u64,
                answers: exec.answers as u64,
            });
        }
        (answers, exec)
    }

    /// Executes a query against the pinned snapshot without using any
    /// materialized view.
    pub fn execute_unoptimized(&self, query: &QueryClassDecl) -> (BTreeSet<ObjId>, ExecutionStats) {
        let candidates = initial_candidates(&self.snapshot.db, query);
        let answers = evaluate_query_over(&self.snapshot.db, query, Some(&candidates));
        let stats = ExecutionStats {
            candidates_examined: candidates.len(),
            used_view: None,
            answers: answers.len(),
        };
        (answers, stats)
    }

    /// Whether one object is an answer of the query in the pinned
    /// snapshot (the membership check of [`crate::eval::is_member`], over
    /// immutable state).
    pub fn is_member(&self, query: &QueryClassDecl, object: ObjId) -> bool {
        crate::eval::is_member(&self.snapshot.db, query, object)
    }

    /// Explains how the query would be planned and executed against the
    /// pinned snapshot: the same traversal as [`Reader::plan`] (so the
    /// report's counters are exactly the `QueryPlan` the planner would
    /// return for this query in this cache state), plus the per-view
    /// probe order, the pruned views, the cost model's estimate for each
    /// frontier member with the executor's pick, and the narrowing
    /// (intersection) order. Probes go through the shared memo like any
    /// plan, so explaining warms the caches the same way planning does.
    pub fn explain(&mut self, query: &QueryClassDecl) -> ExplainReport {
        let snapshot = Arc::clone(&self.snapshot);
        let query_concept = match translate_query(
            query,
            snapshot.db.model(),
            &mut self.vocabulary,
            &mut self.arena,
        ) {
            Ok(concept) => concept,
            Err(_) => return ExplainReport::default(),
        };
        let checker = SubsumptionChecker::new(&snapshot.translated.schema);
        let arena = &mut self.arena;
        let cache = &mut self.cache;
        let bound = self.shared_bound;
        let (hits_before, misses_before) = cache.stats();
        let (saturations_before, _) = cache.saturation_stats();
        let (traversal, trace) = traverse_lattice_traced(&snapshot.views, |view_concept| {
            checker.subsumes_shared(
                arena,
                query_concept,
                view_concept,
                cache,
                &snapshot.memo,
                bound,
            )
        });
        let (hits_after, misses_after) = cache.stats();
        let (saturations_after, _) = cache.saturation_stats();
        let mut subsuming = traversal.frontier;
        subsuming.sort_by_key(|(_, size)| *size);
        let plan = QueryPlan {
            chosen_view: subsuming.first().map(|(name, _)| name.clone()),
            subsuming_views: subsuming.into_iter().map(|(name, _)| name).collect(),
            cached_probes: (hits_after - hits_before) as usize,
            fresh_probes: (misses_after - misses_before) as usize,
            fact_saturations: (saturations_after - saturations_before) as usize,
            probes_pruned: traversal.pruned,
            lattice_depth: traversal.depth,
        };
        let stats = self
            .stats
            .get_or_insert_with(|| Statistics::collect(&snapshot.db));
        let cost = CostModel::new(stats, &snapshot.db);
        let frontier: Vec<FrontierEstimate> = plan
            .subsuming_views
            .iter()
            .filter_map(|name| snapshot.view(name))
            .map(|v| {
                let estimated_candidates = cost.estimated_candidates(v.extent.len(), query);
                FrontierEstimate {
                    name: v.definition.name.clone(),
                    extent: v.extent.len(),
                    estimated_candidates,
                    estimated_cost: cost.filter_cost(estimated_candidates, query),
                }
            })
            .collect();
        // The executor's pick, chosen exactly like `Reader::execute`
        // (iterator `min_by` keeps the *last* of equal minima).
        let chosen = frontier
            .iter()
            .min_by(|a, b| a.estimated_cost.total_cmp(&b.estimated_cost))
            .map(|f| f.name.clone());
        let actual_candidates = chosen
            .as_deref()
            .and_then(|name| snapshot.view(name))
            .map(|v| cost.narrow_candidates(&v.extent, query).len());
        let narrowing_order = cost
            .intersection_order(query)
            .into_iter()
            .map(|(class, cardinality)| (class.to_owned(), cardinality))
            .collect();
        ExplainReport {
            plan,
            trace,
            frontier,
            chosen,
            narrowing_order,
            actual_candidates,
        }
    }
}

/// One frontier member of an [`ExplainReport`] with the cost model's
/// estimates the executor compares.
#[derive(Clone, Debug)]
pub struct FrontierEstimate {
    /// The view's name.
    pub name: String,
    /// Stored extension size.
    pub extent: usize,
    /// Estimated candidates left after narrowing by the query's
    /// schema-superclass extents.
    pub estimated_candidates: usize,
    /// Estimated filter cost — the quantity [`Reader::execute`]
    /// minimizes over the frontier.
    pub estimated_cost: f64,
}

/// The structured answer of [`Reader::explain`]: the plan the planner
/// would return for the query (identical counters), the traversal's
/// per-view events, and the cost model's reasoning for the executor's
/// choice.
#[derive(Clone, Debug, Default)]
pub struct ExplainReport {
    /// The plan, with counters from exactly this traversal.
    pub plan: QueryPlan,
    /// Fired probes in traversal order and the views pruned without a
    /// probe.
    pub trace: TraversalTrace,
    /// The frontier in plan order (smallest extent first) with cost
    /// estimates.
    pub frontier: Vec<FrontierEstimate>,
    /// The frontier member the executor would filter (cheapest estimated
    /// cost), if any view subsumes.
    pub chosen: Option<String>,
    /// The narrowing order: the query's schema superclasses, ascending
    /// by estimated cardinality, as the executor intersects them.
    pub narrowing_order: Vec<(String, usize)>,
    /// Candidates actually left after narrowing the chosen view's
    /// extension (the number the executor's filter examines).
    pub actual_candidates: Option<usize>,
}

impl ExplainReport {
    /// Renders the report as structured text, one datum per line, no
    /// blank lines — the payload of the server's `EXPLAIN` command.
    ///
    /// Line grammar: a `plan` line carrying every `QueryPlan` counter,
    /// one `probe` line per fired probe (in traversal order), one
    /// `pruned` line per unprobed view, one `frontier` line per frontier
    /// member (`chosen=true` on the executor's pick), one `narrow` line
    /// per intersected superclass, and a final `candidates` line.
    pub fn render_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        lines.push(format!(
            "plan chosen={} subsuming={} cached_probes={} fresh_probes={} fact_saturations={} probes_pruned={} lattice_depth={}",
            self.chosen.as_deref().unwrap_or("-"),
            self.plan.subsuming_views.len(),
            self.plan.cached_probes,
            self.plan.fresh_probes,
            self.plan.fact_saturations,
            self.plan.probes_pruned,
            self.plan.lattice_depth,
        ));
        for (i, (name, verdict)) in self.trace.probed.iter().enumerate() {
            lines.push(format!(
                "probe {i} {name} {}",
                if *verdict { "subsumes" } else { "rejected" }
            ));
        }
        for name in &self.trace.skipped {
            lines.push(format!("pruned {name}"));
        }
        for f in &self.frontier {
            lines.push(format!(
                "frontier {} extent={} est_candidates={} est_cost={:.3} chosen={}",
                f.name,
                f.extent,
                f.estimated_candidates,
                f.estimated_cost,
                self.chosen.as_deref() == Some(f.name.as_str()),
            ));
        }
        for (i, (class, cardinality)) in self.narrowing_order.iter().enumerate() {
            lines.push(format!("narrow {i} {class} card={cardinality}"));
        }
        lines.push(match self.actual_candidates {
            Some(n) => format!("candidates actual={n}"),
            None => "candidates actual=-".to_owned(),
        });
        lines
    }
}
