//! Delta propagation: refresh only affected views, and only affected
//! objects, exploiting the subsumption lattice top-down.
//!
//! # Candidate computation
//!
//! For every delta the propagator derives, per affected view (found
//! through the [`DependencyIndex`]), a *candidate set* — a superset of
//! the objects whose membership in that view may have changed:
//!
//! * `AddObject` — the new object, for views whose candidate set is all
//!   objects (`unrestricted`); volatile views (see below) are also
//!   touched, because a constraint clause can reference the new object
//!   *by name* and creation changes that resolution;
//! * `AssertClass` / `RetractClass` on `o` — the ball of radius
//!   `max_path_len` around `o`: the class may be a path filter up to
//!   `max_path_len` steps away from the source object (radius 0 when the
//!   view has no derived paths — then only `o` itself is affected);
//! * `AssertAttr` / `RetractAttr` on `(from, to)` — the ball of radius
//!   `max_path_len − 1` around both endpoints.
//!
//! Balls are breadth-first walks over the *current* state, treating every
//! attribute the view mentions as an undirected edge (paths may traverse
//! an attribute through its inverse synonym). This over-approximates but
//! never misses: an affected source object reaches the changed element
//! along its derived path; take the path's first edge changed within the
//! replayed window — every edge between the source and it is unchanged,
//! hence present in the current state and walkable backwards, and the
//! changed edge's own delta seeds the ball at its endpoints. Candidates
//! are then decided by re-running the ordinary membership check, so
//! over-approximation costs evaluations, never correctness.
//!
//! # Lattice pruning
//!
//! Views are refreshed in topological order of the catalog's subsumption
//! lattice, roots first. Σ-subsumption is sound (Proposition 3.1):
//! `C ⊑ P` implies `extent(C) ⊆ extent(P)` in every state, so a candidate
//! absent from a refreshed parent's extension is removed from the child
//! *without evaluating its membership condition*, and the saving repeats
//! down the whole sub-DAG. Σ-equivalent peers settle each of their
//! candidates from their representative's (already refreshed) extension —
//! mutual subsumption makes the representative's verdict theirs.
//!
//! # Fallbacks
//!
//! A view falls back to full re-evaluation (the [`refresh_full`] oracle
//! semantics) when its snapshot predates the log's truncation point or
//! when its recursive definition reaches a constraint clause (`volatile`
//! in the [`DependencyIndex`]) and a dependent symbol was touched — a
//! quantified constraint can flip the membership of objects arbitrarily
//! far from the delta.
//!
//! # Parallel propagation
//!
//! Candidate re-checks only ever consult a view's Hasse *ancestors*
//! (pruning) or its Σ-equivalence representative, so views in different
//! weakly-connected components of the lattice are completely independent.
//! The propagator groups the affected views by component and, when the
//! routed work is large enough to amortize a spawn, refreshes the
//! components on [`std::thread::scope`] workers — views inside one
//! component (one lattice chain) stay in topological order on one worker,
//! so top-down pruning still fires; one worker's counters are summed into
//! the catalog's after the join, keeping [`MaintenanceStats`]
//! deterministic. The single writer then publishes the refreshed state as
//! one atomic snapshot swap (see
//! [`OptimizedDatabase::commit`](crate::OptimizedDatabase::commit)).
//!
//! [`refresh_full`]: crate::views::ViewCatalog::refresh_full

use super::delta::Delta;
use super::depindex::{DependencyIndex, ViewDeps};
use crate::eval::{initial_candidates, is_member};
use crate::store::{Database, ObjId};
use crate::views::MaterializedView;
use fxhash::{FxHashMap, FxHashSet};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Process-wide override of the maintenance worker count: 0 = auto
/// (`std::thread::available_parallelism`).
static MAINTENANCE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Caps (or forces) the number of worker threads parallel view
/// maintenance may use, process-wide. `None` restores the default —
/// [`std::thread::available_parallelism`]. Setting an explicit count also
/// waives the minimum-work threshold (an operator who configures workers
/// wants them used), which is how the equivalence suites exercise the
/// parallel path deterministically on any machine.
pub fn set_maintenance_workers(workers: Option<usize>) {
    MAINTENANCE_WORKERS.store(workers.unwrap_or(0), Ordering::Relaxed);
}

/// Counters of the incremental maintainer (cumulative per catalog).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Log entries scanned by refresh passes.
    pub deltas_applied: u64,
    /// Candidate objects examined (per view; includes pruned ones).
    pub candidates_examined: u64,
    /// Membership conditions actually evaluated.
    pub memberships_evaluated: u64,
    /// Evaluations avoided by the lattice: candidates discarded because a
    /// parent view's refreshed extension already excluded them, plus
    /// candidates of Σ-equivalence peers (they copy the representative).
    pub lattice_prunes: u64,
    /// Views that fell back to full re-evaluation (volatile definitions,
    /// truncated logs, forced invalidation).
    pub full_reevaluations: u64,
    /// Refresh passes that returned without touching any view state
    /// because the log suffix routed zero views (see
    /// [`routes_nothing`] and
    /// [`ViewCatalog::refresh`](crate::views::ViewCatalog::refresh)).
    pub empty_refreshes: u64,
}

impl MaintenanceStats {
    /// Adds a worker's counters into this one (order-independent, so the
    /// cumulative stats stay deterministic under parallel propagation).
    fn absorb(&mut self, other: MaintenanceStats) {
        self.deltas_applied += other.deltas_applied;
        self.candidates_examined += other.candidates_examined;
        self.memberships_evaluated += other.memberships_evaluated;
        self.lattice_prunes += other.lattice_prunes;
        self.full_reevaluations += other.full_reevaluations;
        self.empty_refreshes += other.empty_refreshes;
    }
}

/// One view handed to a refresh worker: catalog index, exclusive borrow,
/// and the plan computed for it by the routing scan.
type ViewTask<'a> = (usize, &'a mut MaterializedView, Plan);

/// How one view is brought up to date by the current pass.
enum Plan {
    /// Already fresh — nothing to do.
    Fresh,
    /// Re-evaluate from scratch.
    Full,
    /// Re-check exactly these objects.
    Candidates(BTreeSet<ObjId>),
}

/// Brings every view up to `db.data_version()`, consuming the delta log.
/// `index` must describe `views` in catalog order (same length).
pub fn refresh_views(
    db: &Database,
    views: &mut [MaterializedView],
    index: &DependencyIndex,
    stats: &mut MaintenanceStats,
) {
    debug_assert_eq!(index.len(), views.len());
    let now = db.data_version();
    let base = db.delta_log().base_version();
    let mut plans: Vec<Plan> = views
        .iter()
        .map(|view| {
            if view.force_refresh {
                // Invalidation the log cannot express (schema mutation).
                Plan::Full
            } else if view.fresh_as_of >= now {
                Plan::Fresh
            } else if view.fresh_as_of < base {
                // The log no longer reaches back to this snapshot.
                Plan::Full
            } else {
                Plan::Candidates(BTreeSet::new())
            }
        })
        .collect();

    // Scan the log once, from the oldest replayable snapshot, routing each
    // delta to the views whose dependencies it touches.
    let min_snapshot = views
        .iter()
        .zip(&plans)
        .filter(|(_, plan)| matches!(plan, Plan::Candidates(_)))
        .map(|(view, _)| view.fresh_as_of)
        .min();
    if let Some(min_snapshot) = min_snapshot {
        let replay = db
            .delta_log()
            .since(min_snapshot)
            .expect("snapshots below the log base were planned as Full");
        for (version, delta) in replay {
            stats.deltas_applied += 1;
            let (affected, also) = affected_views(index, delta);
            let seeds: Vec<ObjId> = match delta {
                Delta::AddObject { object } => vec![*object],
                Delta::AssertClass { object, .. } | Delta::RetractClass { object, .. } => {
                    vec![*object]
                }
                Delta::AssertAttr { from, to, .. } | Delta::RetractAttr { from, to, .. } => {
                    vec![*from, *to]
                }
            };
            let radius_for = |deps: &ViewDeps| match delta {
                Delta::AddObject { .. } => 0,
                Delta::AssertClass { .. } | Delta::RetractClass { .. } => deps.max_path_len,
                Delta::AssertAttr { .. } | Delta::RetractAttr { .. } => {
                    deps.max_path_len.saturating_sub(1)
                }
            };
            for &i in affected.iter().chain(also) {
                if views[i].fresh_as_of >= version {
                    continue; // This view's snapshot already includes the delta.
                }
                let deps = index.deps(i);
                match &mut plans[i] {
                    Plan::Candidates(_) if deps.volatile => plans[i] = Plan::Full,
                    Plan::Candidates(candidates) => {
                        let radius = radius_for(deps);
                        if radius == 0 {
                            candidates.extend(seeds.iter().copied());
                        } else {
                            candidate_ball(db, deps, &seeds, radius, candidates);
                        }
                    }
                    Plan::Fresh | Plan::Full => {}
                }
            }
        }
    }

    // Refresh in lattice order: representatives root-down (so parent
    // extensions are current when a child consults them for pruning),
    // then equivalence peers, then unclassified views — grouped by
    // weakly-connected lattice component. Components never read each
    // other's extensions, so they refresh independently: on workers when
    // the routed work amortizes the spawns, inline otherwise. Either way
    // each component runs the identical `refresh_component` code, so the
    // results (and the summed counters) do not depend on the path taken.
    let order = lattice_order(views);
    let comp = components(views);
    let mut group_of: FxHashMap<usize, usize> = FxHashMap::default();
    let mut group_indices: Vec<Vec<usize>> = Vec::new();
    for &i in &order {
        let next = group_indices.len();
        let g = *group_of.entry(comp[i]).or_insert(next);
        if g == group_indices.len() {
            group_indices.push(Vec::new());
        }
        group_indices[g].push(i);
    }

    // Hand each group its disjoint `&mut` views (with the group's plans),
    // via the slice's own iterator — no unsafe splitting.
    let mut slots: Vec<Option<ViewTask<'_>>> = views
        .iter_mut()
        .zip(plans)
        .enumerate()
        .map(|(i, (view, plan))| Some((i, view, plan)))
        .collect();
    let mut groups: Vec<Vec<ViewTask<'_>>> = group_indices
        .iter()
        .map(|group| {
            group
                .iter()
                .map(|&i| slots[i].take().expect("every view is in exactly one group"))
                .collect()
        })
        .collect();

    let active_groups = groups.iter().filter(|g| group_work(g) > 0).count();
    let total_work: usize = groups.iter().map(|g| group_work(g)).sum();
    let override_workers = MAINTENANCE_WORKERS.load(Ordering::Relaxed);
    let workers = if override_workers > 0 {
        override_workers
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let worth_spawning = override_workers > 0 || total_work >= PARALLEL_WORK_THRESHOLD;
    if workers > 1 && active_groups >= 2 && worth_spawning {
        let buckets: Vec<Vec<Vec<ViewTask<'_>>>> = {
            let mut buckets: Vec<Vec<_>> = (0..workers.min(active_groups))
                .map(|_| Vec::new())
                .collect();
            // Largest groups first, round-robin, for rough balance.
            groups.sort_by_key(|g| std::cmp::Reverse(group_work(g)));
            for (at, group) in groups.into_iter().enumerate() {
                let slot = at % buckets.len();
                buckets[slot].push(group);
            }
            buckets
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .filter(|bucket| !bucket.is_empty())
                .map(|bucket| {
                    scope.spawn(move || {
                        let mut local = MaintenanceStats::default();
                        for mut group in bucket {
                            refresh_component(db, &mut group, &mut local, now);
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                stats.absorb(handle.join().expect("maintenance worker panicked"));
            }
        });
    } else {
        for group in &mut groups {
            refresh_component(db, group, stats, now);
        }
    }
}

/// Spawn workers only when the routed candidate work is at least this
/// many objects; below it the propagation is cheaper than the spawns.
const PARALLEL_WORK_THRESHOLD: usize = 64;

/// A rough work estimate for one component: candidates to re-check, plus
/// the current extension size for full re-evaluations.
fn group_work(group: &[ViewTask<'_>]) -> usize {
    group
        .iter()
        .map(|(_, view, plan)| match plan {
            Plan::Fresh => 0,
            Plan::Full => view.extent.len() + 16,
            Plan::Candidates(candidates) => candidates.len(),
        })
        .sum()
}

/// Refreshes the views of one lattice component, in topological order
/// (the order `entries` arrives in): full re-evaluations, candidate
/// re-checks pruned through the (already refreshed, same-component) Hasse
/// parents, and Σ-equivalence peers copying their representative's
/// verdicts.
fn refresh_component(
    db: &Database,
    entries: &mut [ViewTask<'_>],
    stats: &mut MaintenanceStats,
    now: u64,
) {
    let position: FxHashMap<usize, usize> = entries
        .iter()
        .enumerate()
        .map(|(pos, (i, _, _))| (*i, pos))
        .collect();
    for at in 0..entries.len() {
        let (done, rest) = entries.split_at_mut(at);
        let (_, view, plan) = &mut rest[0];
        let extent_of = |done: &[ViewTask<'_>], i: usize| Arc::clone(&done[position[&i]].1.extent);
        match std::mem::replace(plan, Plan::Fresh) {
            Plan::Fresh => {}
            Plan::Full => {
                stats.full_reevaluations += 1;
                let candidates = initial_candidates(db, &view.definition);
                stats.candidates_examined += candidates.len() as u64;
                stats.memberships_evaluated += candidates.len() as u64;
                // Large candidate sets scatter across id-range shards
                // inside `filter_members` and gather by bitmap union.
                view.extent = Arc::new(crate::eval::filter_members(
                    db,
                    &view.definition,
                    &candidates,
                ));
            }
            Plan::Candidates(candidates) => {
                crate::metrics::metrics()
                    .maintenance_candidates
                    .record(candidates.len() as u64);
                if let Some(rep) = view.equiv {
                    // Σ-equivalent peers share the representative's
                    // extension in every state, so the representative's
                    // (already refreshed) verdict decides each candidate
                    // without evaluation — and without unsharing the
                    // peer's extension when nothing actually changed.
                    stats.candidates_examined += candidates.len() as u64;
                    stats.lattice_prunes += candidates.len() as u64;
                    let rep_extent = extent_of(done, rep);
                    for object in candidates {
                        apply_verdict(view, object, rep_extent.contains(&object));
                    }
                } else {
                    for object in candidates {
                        stats.candidates_examined += 1;
                        let pruned = view
                            .parents
                            .iter()
                            .any(|&p| !done[position[&p]].1.extent.contains(&object));
                        let member = if pruned {
                            stats.lattice_prunes += 1;
                            false
                        } else {
                            stats.memberships_evaluated += 1;
                            is_member(db, &view.definition, object)
                        };
                        apply_verdict(view, object, member);
                    }
                }
            }
        }
        view.fresh_as_of = now;
        view.force_refresh = false;
    }
}

/// Applies one membership verdict to a view's extension, unsharing the
/// copy-on-write set only when the verdict actually changes it.
fn apply_verdict(view: &mut MaterializedView, object: ObjId, member: bool) {
    if member != view.extent.contains(&object) {
        let extent = Arc::make_mut(&mut view.extent);
        if member {
            extent.insert(object);
        } else {
            extent.remove(&object);
        }
    }
}

/// The weakly-connected component label of every view: union-find over
/// the Hasse child edges and the equivalence links — the only cross-view
/// edges a refresh ever reads through.
fn components(views: &[MaterializedView]) -> Vec<usize> {
    let n = views.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let union = |parent: &mut [usize], a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    };
    for (i, view) in views.iter().enumerate() {
        for &c in &view.children {
            if c < n {
                union(&mut parent, i, c);
            }
        }
        if let Some(rep) = view.equiv {
            if rep < n {
                union(&mut parent, i, rep);
            }
        }
    }
    (0..n).map(|i| find(&mut parent, i)).collect()
}

/// The views a delta can possibly affect: the dependency-index lookup
/// shared by the propagator's routing loop and the empty-refresh pre-scan
/// ([`routes_nothing`]). `AddObject` additionally reaches every volatile
/// view: constraints may resolve objects by name, and creation changes
/// that resolution even before any class or attribute is asserted.
fn affected_views<'a>(index: &'a DependencyIndex, delta: &Delta) -> (&'a [usize], &'a [usize]) {
    let empty: &[usize] = &[];
    match delta {
        Delta::AddObject { .. } => (index.unrestricted_views(), index.volatile_views()),
        Delta::AssertClass { class, .. } | Delta::RetractClass { class, .. } => {
            (index.views_on_class(class), empty)
        }
        Delta::AssertAttr { attribute, .. } | Delta::RetractAttr { attribute, .. } => {
            (index.views_on_attr(attribute), empty)
        }
    }
}

/// Whether the unseen suffix of the delta log routes **zero** stale views
/// through the dependency index — the condition under which
/// [`ViewCatalog::refresh`](crate::views::ViewCatalog::refresh) returns
/// without touching any view state (no write lock, no allocation beyond
/// this scan). `false` as soon as any stale view needs work: a routed
/// delta, a snapshot beyond the log's reach, or a forced refresh (which
/// the caller checks).
pub fn routes_nothing(db: &Database, views: &[MaterializedView], index: &DependencyIndex) -> bool {
    debug_assert_eq!(index.len(), views.len());
    let now = db.data_version();
    let base = db.delta_log().base_version();
    let mut min_snapshot = now;
    for view in views {
        if view.fresh_as_of >= now {
            continue;
        }
        if view.fresh_as_of < base {
            return false; // Needs a full re-evaluation: the log is gone.
        }
        min_snapshot = min_snapshot.min(view.fresh_as_of);
    }
    if min_snapshot >= now {
        return true;
    }
    let Some(replay) = db.delta_log().since(min_snapshot) else {
        return false;
    };
    for (version, delta) in replay {
        let (affected, also) = affected_views(index, delta);
        for &i in affected.iter().chain(also) {
            if views[i].fresh_as_of < version {
                return false;
            }
        }
    }
    true
}

/// The processing order: classified representatives in topological order
/// (roots first — [`crate::views::representative_topo_order`]), then
/// equivalence peers, then unclassified views.
fn lattice_order(views: &[MaterializedView]) -> Vec<usize> {
    let n = views.len();
    let (mut order, reps) = crate::views::representative_topo_order(views);
    debug_assert_eq!(order.len(), reps, "lattice must be acyclic");
    // Peers after their representatives, then views outside the lattice.
    order.extend((0..n).filter(|&i| views[i].classified && views[i].equiv.is_some()));
    order.extend((0..n).filter(|&i| !views[i].classified));
    debug_assert_eq!(order.len(), n, "every view must be processed");
    order
}

/// Collects into `out` every object within `radius` undirected steps of
/// the seeds, walking only the attributes the view mentions.
fn candidate_ball(
    db: &Database,
    deps: &ViewDeps,
    seeds: &[ObjId],
    radius: usize,
    out: &mut BTreeSet<ObjId>,
) {
    let mut visited: FxHashSet<ObjId> = seeds.iter().copied().collect();
    let mut frontier: Vec<ObjId> = seeds.to_vec();
    for _ in 0..radius {
        let mut next = Vec::new();
        for &object in &frontier {
            for attribute in &deps.attributes {
                for neighbors in [
                    db.attr_in(object, attribute),
                    db.attr_out(object, attribute),
                ]
                .into_iter()
                .flatten()
                {
                    for neighbor in neighbors {
                        if visited.insert(neighbor) {
                            next.push(neighbor);
                        }
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    out.extend(visited);
}
