//! Delta propagation: refresh only affected views, and only affected
//! objects, exploiting the subsumption lattice top-down.
//!
//! # Candidate computation
//!
//! For every delta the propagator derives, per affected view (found
//! through the [`DependencyIndex`]), a *candidate set* — a superset of
//! the objects whose membership in that view may have changed:
//!
//! * `AddObject` — the new object, for views whose candidate set is all
//!   objects (`unrestricted`); volatile views (see below) are also
//!   touched, because a constraint clause can reference the new object
//!   *by name* and creation changes that resolution;
//! * `AssertClass` / `RetractClass` on `o` — the ball of radius
//!   `max_path_len` around `o`: the class may be a path filter up to
//!   `max_path_len` steps away from the source object (radius 0 when the
//!   view has no derived paths — then only `o` itself is affected);
//! * `AssertAttr` / `RetractAttr` on `(from, to)` — the ball of radius
//!   `max_path_len − 1` around both endpoints.
//!
//! Balls are breadth-first walks over the *current* state, treating every
//! attribute the view mentions as an undirected edge (paths may traverse
//! an attribute through its inverse synonym). This over-approximates but
//! never misses: an affected source object reaches the changed element
//! along its derived path; take the path's first edge changed within the
//! replayed window — every edge between the source and it is unchanged,
//! hence present in the current state and walkable backwards, and the
//! changed edge's own delta seeds the ball at its endpoints. Candidates
//! are then decided by re-running the ordinary membership check, so
//! over-approximation costs evaluations, never correctness.
//!
//! # Lattice pruning
//!
//! Views are refreshed in topological order of the catalog's subsumption
//! lattice, roots first. Σ-subsumption is sound (Proposition 3.1):
//! `C ⊑ P` implies `extent(C) ⊆ extent(P)` in every state, so a candidate
//! absent from a refreshed parent's extension is removed from the child
//! *without evaluating its membership condition*, and the saving repeats
//! down the whole sub-DAG. Σ-equivalent peers settle each of their
//! candidates from their representative's (already refreshed) extension —
//! mutual subsumption makes the representative's verdict theirs.
//!
//! # Fallbacks
//!
//! A view falls back to full re-evaluation (the [`refresh_full`] oracle
//! semantics) when its snapshot predates the log's truncation point or
//! when its recursive definition reaches a constraint clause (`volatile`
//! in the [`DependencyIndex`]) and a dependent symbol was touched — a
//! quantified constraint can flip the membership of objects arbitrarily
//! far from the delta.
//!
//! [`refresh_full`]: crate::views::ViewCatalog::refresh_full

use super::delta::Delta;
use super::depindex::{DependencyIndex, ViewDeps};
use crate::eval::{initial_candidates, is_member};
use crate::store::{Database, ObjId};
use crate::views::MaterializedView;
use fxhash::FxHashSet;
use std::collections::BTreeSet;

/// Counters of the incremental maintainer (cumulative per catalog).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Log entries scanned by refresh passes.
    pub deltas_applied: u64,
    /// Candidate objects examined (per view; includes pruned ones).
    pub candidates_examined: u64,
    /// Membership conditions actually evaluated.
    pub memberships_evaluated: u64,
    /// Evaluations avoided by the lattice: candidates discarded because a
    /// parent view's refreshed extension already excluded them, plus
    /// candidates of Σ-equivalence peers (they copy the representative).
    pub lattice_prunes: u64,
    /// Views that fell back to full re-evaluation (volatile definitions,
    /// truncated logs, forced invalidation).
    pub full_reevaluations: u64,
}

/// How one view is brought up to date by the current pass.
enum Plan {
    /// Already fresh — nothing to do.
    Fresh,
    /// Re-evaluate from scratch.
    Full,
    /// Re-check exactly these objects.
    Candidates(BTreeSet<ObjId>),
}

/// Brings every view up to `db.data_version()`, consuming the delta log.
/// `index` must describe `views` in catalog order (same length).
pub fn refresh_views(
    db: &Database,
    views: &mut [MaterializedView],
    index: &DependencyIndex,
    stats: &mut MaintenanceStats,
) {
    debug_assert_eq!(index.len(), views.len());
    let now = db.data_version();
    let base = db.delta_log().base_version();
    let mut plans: Vec<Plan> = views
        .iter()
        .map(|view| {
            if view.force_refresh {
                // Invalidation the log cannot express (schema mutation).
                Plan::Full
            } else if view.fresh_as_of >= now {
                Plan::Fresh
            } else if view.fresh_as_of < base {
                // The log no longer reaches back to this snapshot.
                Plan::Full
            } else {
                Plan::Candidates(BTreeSet::new())
            }
        })
        .collect();

    // Scan the log once, from the oldest replayable snapshot, routing each
    // delta to the views whose dependencies it touches.
    let min_snapshot = views
        .iter()
        .zip(&plans)
        .filter(|(_, plan)| matches!(plan, Plan::Candidates(_)))
        .map(|(view, _)| view.fresh_as_of)
        .min();
    if let Some(min_snapshot) = min_snapshot {
        let replay = db
            .delta_log()
            .since(min_snapshot)
            .expect("snapshots below the log base were planned as Full");
        for (version, delta) in replay {
            stats.deltas_applied += 1;
            // `AddObject` additionally reaches every volatile view:
            // constraints may resolve objects by name, and creation
            // changes that resolution even before any class or attribute
            // is asserted.
            let empty: &[usize] = &[];
            let (affected, also, seeds): (&[usize], &[usize], Vec<ObjId>) = match delta {
                Delta::AddObject { object } => (
                    index.unrestricted_views(),
                    index.volatile_views(),
                    vec![*object],
                ),
                Delta::AssertClass { object, class } | Delta::RetractClass { object, class } => {
                    (index.views_on_class(class), empty, vec![*object])
                }
                Delta::AssertAttr {
                    from,
                    to,
                    attribute,
                }
                | Delta::RetractAttr {
                    from,
                    to,
                    attribute,
                } => (index.views_on_attr(attribute), empty, vec![*from, *to]),
            };
            let radius_for = |deps: &ViewDeps| match delta {
                Delta::AddObject { .. } => 0,
                Delta::AssertClass { .. } | Delta::RetractClass { .. } => deps.max_path_len,
                Delta::AssertAttr { .. } | Delta::RetractAttr { .. } => {
                    deps.max_path_len.saturating_sub(1)
                }
            };
            for &i in affected.iter().chain(also) {
                if views[i].fresh_as_of >= version {
                    continue; // This view's snapshot already includes the delta.
                }
                let deps = index.deps(i);
                match &mut plans[i] {
                    Plan::Candidates(_) if deps.volatile => plans[i] = Plan::Full,
                    Plan::Candidates(candidates) => {
                        let radius = radius_for(deps);
                        if radius == 0 {
                            candidates.extend(seeds.iter().copied());
                        } else {
                            candidate_ball(db, deps, &seeds, radius, candidates);
                        }
                    }
                    Plan::Fresh | Plan::Full => {}
                }
            }
        }
    }

    // Refresh in lattice order: representatives root-down (so parent
    // extensions are current when a child consults them for pruning),
    // then equivalence peers, then unclassified views.
    for i in lattice_order(views) {
        match std::mem::replace(&mut plans[i], Plan::Fresh) {
            Plan::Fresh => {}
            Plan::Full => {
                refresh_one_full(db, views, i, stats);
            }
            Plan::Candidates(candidates) => {
                if let Some(rep) = views[i].equiv {
                    // Σ-equivalent peers share the representative's
                    // extension in every state, so the representative's
                    // (already refreshed) verdict decides each candidate
                    // without evaluation — and without cloning the whole
                    // extension when nothing was touched.
                    stats.candidates_examined += candidates.len() as u64;
                    stats.lattice_prunes += candidates.len() as u64;
                    let verdicts: Vec<(ObjId, bool)> = candidates
                        .into_iter()
                        .map(|object| (object, views[rep].extent.contains(&object)))
                        .collect();
                    for (object, member) in verdicts {
                        if member {
                            views[i].extent.insert(object);
                        } else {
                            views[i].extent.remove(&object);
                        }
                    }
                } else {
                    refresh_one_incremental(db, views, i, candidates, stats);
                }
            }
        }
        views[i].fresh_as_of = now;
        views[i].force_refresh = false;
    }
}

/// Re-checks the candidates of one (non-peer) view, pruning through its
/// Hasse parents before evaluating.
fn refresh_one_incremental(
    db: &Database,
    views: &mut [MaterializedView],
    i: usize,
    candidates: BTreeSet<ObjId>,
    stats: &mut MaintenanceStats,
) {
    if candidates.is_empty() {
        return;
    }
    let mut verdicts: Vec<(ObjId, bool)> = Vec::with_capacity(candidates.len());
    {
        let view = &views[i];
        for &object in &candidates {
            stats.candidates_examined += 1;
            let pruned = view
                .parents
                .iter()
                .any(|&p| !views[p].extent.contains(&object));
            if pruned {
                stats.lattice_prunes += 1;
                verdicts.push((object, false));
            } else {
                stats.memberships_evaluated += 1;
                verdicts.push((object, is_member(db, &view.definition, object)));
            }
        }
    }
    for (object, member) in verdicts {
        if member {
            views[i].extent.insert(object);
        } else {
            views[i].extent.remove(&object);
        }
    }
}

/// Re-evaluates one view from scratch (the oracle semantics).
fn refresh_one_full(
    db: &Database,
    views: &mut [MaterializedView],
    i: usize,
    stats: &mut MaintenanceStats,
) {
    stats.full_reevaluations += 1;
    let extension: BTreeSet<ObjId> = {
        let definition = &views[i].definition;
        let candidates = initial_candidates(db, definition);
        stats.candidates_examined += candidates.len() as u64;
        stats.memberships_evaluated += candidates.len() as u64;
        candidates
            .into_iter()
            .filter(|&object| is_member(db, definition, object))
            .collect()
    };
    views[i].extent = extension;
}

/// The processing order: classified representatives in topological order
/// (roots first — [`crate::views::representative_topo_order`]), then
/// equivalence peers, then unclassified views.
fn lattice_order(views: &[MaterializedView]) -> Vec<usize> {
    let n = views.len();
    let (mut order, reps) = crate::views::representative_topo_order(views);
    debug_assert_eq!(order.len(), reps, "lattice must be acyclic");
    // Peers after their representatives, then views outside the lattice.
    order.extend((0..n).filter(|&i| views[i].classified && views[i].equiv.is_some()));
    order.extend((0..n).filter(|&i| !views[i].classified));
    debug_assert_eq!(order.len(), n, "every view must be processed");
    order
}

/// Collects into `out` every object within `radius` undirected steps of
/// the seeds, walking only the attributes the view mentions.
fn candidate_ball(
    db: &Database,
    deps: &ViewDeps,
    seeds: &[ObjId],
    radius: usize,
    out: &mut BTreeSet<ObjId>,
) {
    let mut visited: FxHashSet<ObjId> = seeds.iter().copied().collect();
    let mut frontier: Vec<ObjId> = seeds.to_vec();
    for _ in 0..radius {
        let mut next = Vec::new();
        for &object in &frontier {
            for attribute in &deps.attributes {
                for neighbors in [
                    db.attr_in(object, attribute),
                    db.attr_out(object, attribute),
                ]
                .into_iter()
                .flatten()
                {
                    for &neighbor in neighbors {
                        if visited.insert(neighbor) {
                            next.push(neighbor);
                        }
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    out.extend(visited);
}
