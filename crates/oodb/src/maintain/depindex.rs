//! The dependency index: which views can a delta possibly affect?
//!
//! For every materialized view the index extracts, once per (re-)build,
//! the set of class and attribute symbols its membership condition reads —
//! recursing through query-class superclasses, resolving inverse synonyms
//! to their primitive attribute (the direction the log records), and
//! noting three structural facts the propagator needs:
//!
//! * `max_path_len` — the longest `derived` path anywhere in the
//!   recursive definition, which bounds how far an attribute or filter
//!   change can sit from an affected source object;
//! * `unrestricted` — whether the view's candidate set is *all objects*
//!   (no direct schema superclass), in which case even a bare
//!   `AddObject` delta makes the new object a candidate;
//! * `volatile` — whether the recursion reaches a constraint clause
//!   (a query-class superclass with a `constraint`). Constraints may
//!   quantify over whole class extents, so a single delta can flip the
//!   membership of *any* object; volatile views fall back to full
//!   re-evaluation whenever one of their symbols is touched.
//!
//! The index is inverted into `symbol → views` maps so the propagator
//! looks up the affected views per delta in O(1).

use fxhash::{FxHashMap, FxHashSet};
use subq_dl::{ConstraintExpr, DlModel, QueryClassDecl};

/// The extracted dependencies of one view definition.
#[derive(Clone, Debug, Default)]
pub struct ViewDeps {
    /// Class symbols whose extents the membership condition reads (isA
    /// superclasses, path filters, constraint atoms and quantifier
    /// sorts — recursively through query-class superclasses).
    pub classes: FxHashSet<String>,
    /// Primitive attribute names the condition traverses.
    pub attributes: FxHashSet<String>,
    /// The longest derived path in the recursive definition.
    pub max_path_len: usize,
    /// Whether the candidate set is all objects (no direct schema
    /// superclass restricts it).
    pub unrestricted: bool,
    /// Whether the recursion reaches a constraint clause.
    pub volatile: bool,
}

/// `symbol → views` lookup over a catalog's definitions.
#[derive(Clone, Debug, Default)]
pub struct DependencyIndex {
    /// Views (catalog indices) whose condition reads a class extent.
    by_class: FxHashMap<String, Vec<usize>>,
    /// Views whose condition traverses a primitive attribute.
    by_attr: FxHashMap<String, Vec<usize>>,
    /// Views whose candidate set is all objects.
    unrestricted: Vec<usize>,
    /// Views whose recursion reaches a constraint clause. Constraints may
    /// reference objects *by name* (`Term::Ident`), and object creation
    /// changes that resolution — so `AddObject` deltas must reach these
    /// views even when a schema superclass restricts their candidates.
    volatile: Vec<usize>,
    /// Per-view dependency summaries, indexed like the catalog.
    deps: Vec<ViewDeps>,
}

impl DependencyIndex {
    /// Builds the index for the catalog's definitions (in catalog order).
    pub fn build<'a>(
        model: &DlModel,
        definitions: impl IntoIterator<Item = &'a QueryClassDecl>,
    ) -> Self {
        let mut index = DependencyIndex::default();
        for (view, definition) in definitions.into_iter().enumerate() {
            let mut deps = ViewDeps {
                unrestricted: !definition.is_a.iter().any(|sup| model.class(sup).is_some()),
                ..ViewDeps::default()
            };
            let mut visited = FxHashSet::default();
            collect(model, definition, &mut deps, &mut visited);
            for class in &deps.classes {
                index.by_class.entry(class.clone()).or_default().push(view);
            }
            for attr in &deps.attributes {
                index.by_attr.entry(attr.clone()).or_default().push(view);
            }
            if deps.unrestricted {
                index.unrestricted.push(view);
            }
            if deps.volatile {
                index.volatile.push(view);
            }
            index.deps.push(deps);
        }
        index
    }

    /// The views whose condition reads the class.
    pub fn views_on_class(&self, class: &str) -> &[usize] {
        self.by_class.get(class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The views whose condition traverses the primitive attribute.
    pub fn views_on_attr(&self, attribute: &str) -> &[usize] {
        self.by_attr
            .get(attribute)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The views for which every new object is a candidate.
    pub fn unrestricted_views(&self) -> &[usize] {
        &self.unrestricted
    }

    /// The views whose recursion reaches a constraint clause (they fall
    /// back to full re-evaluation whenever touched, including by object
    /// creation — constraints can resolve objects by name).
    pub fn volatile_views(&self) -> &[usize] {
        &self.volatile
    }

    /// The dependency summary of one view.
    pub fn deps(&self, view: usize) -> &ViewDeps {
        &self.deps[view]
    }

    /// Number of indexed views.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether no view is indexed.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }
}

/// Walks one definition, accumulating symbols into `deps`. `visited`
/// guards against isA cycles between query classes.
fn collect(
    model: &DlModel,
    definition: &QueryClassDecl,
    deps: &mut ViewDeps,
    visited: &mut FxHashSet<String>,
) {
    if !visited.insert(definition.name.clone()) {
        return;
    }
    for sup in &definition.is_a {
        if let Some(query) = model.query_class(sup) {
            collect(model, query, deps, visited);
        } else if sup != "Object" {
            // Schema classes and undeclared names alike: membership is
            // read from the stored extent under this symbol.
            deps.classes.insert(sup.clone());
        }
    }
    for path in &definition.derived {
        deps.max_path_len = deps.max_path_len.max(path.steps.len());
        for step in &path.steps {
            deps.attributes.insert(primitive_attr(model, &step.attr));
            if let subq_dl::PathFilter::Class(class) = &step.filter {
                if class != "Object" {
                    deps.classes.insert(class.clone());
                }
            }
        }
    }
    if let Some(constraint) = &definition.constraint {
        deps.volatile = true;
        collect_constraint(model, constraint, deps);
    }
}

/// Symbols read by a constraint clause.
fn collect_constraint(model: &DlModel, expr: &ConstraintExpr, deps: &mut ViewDeps) {
    match expr {
        ConstraintExpr::In(_, class) => {
            if class != "Object" {
                deps.classes.insert(class.clone());
            }
        }
        ConstraintExpr::HasAttr(_, attr, _) => {
            deps.attributes.insert(primitive_attr(model, attr));
        }
        ConstraintExpr::Eq(_, _) => {}
        ConstraintExpr::Not(inner) => collect_constraint(model, inner, deps),
        ConstraintExpr::And(a, b) | ConstraintExpr::Or(a, b) => {
            collect_constraint(model, a, deps);
            collect_constraint(model, b, deps);
        }
        ConstraintExpr::Forall(_, class, body) | ConstraintExpr::Exists(_, class, body) => {
            if class != "Object" {
                deps.classes.insert(class.clone());
            }
            collect_constraint(model, body, deps);
        }
    }
}

/// The primitive name behind a possibly-synonym attribute.
fn primitive_attr(model: &DlModel, attribute: &str) -> String {
    match model.resolve_attribute(attribute) {
        Some((decl, _)) => decl.name.clone(),
        None => attribute.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subq_dl::samples;

    #[test]
    fn view_patient_dependencies_cover_classes_paths_and_synonyms() {
        let model = samples::medical_model();
        let view = model.query_class("ViewPatient").expect("declared");
        let index = DependencyIndex::build(&model, [view]);
        let deps = index.deps(0);
        assert!(!deps.volatile, "views have no constraint clause");
        assert!(!deps.unrestricted, "isA Patient restricts the candidates");
        assert!(deps.classes.contains("Patient"));
        assert!(deps.classes.contains("Doctor"), "path filter class");
        assert!(deps.attributes.contains("skilled_in"));
        assert!(deps.attributes.contains("consults"));
        assert!(deps.attributes.contains("suffers"));
        assert!(!deps.attributes.contains("specialist"));
        assert_eq!(deps.max_path_len, 2);
        assert!(index.views_on_class("Patient").contains(&0));
        assert!(index.views_on_attr("skilled_in").contains(&0));
        assert!(index.views_on_attr("specialist").is_empty());
        assert!(index.unrestricted_views().is_empty());
    }

    #[test]
    fn query_class_superclasses_are_recursed_and_constraints_mark_volatile() {
        let model = samples::medical_model();
        // A view whose only superclass is the *query class* QueryPatient:
        // candidates are unrestricted, and the recursion reaches
        // QueryPatient's constraint clause (volatile) plus everything the
        // clause and the structural part mention.
        let via_query = QueryClassDecl {
            name: "ViaQuery".into(),
            is_a: vec!["QueryPatient".into()],
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        };
        let index = DependencyIndex::build(&model, [&via_query]);
        let deps = index.deps(0);
        assert!(deps.volatile);
        assert!(deps.unrestricted);
        assert!(deps.classes.contains("Patient"));
        assert!(deps.classes.contains("Male"));
        assert!(deps.classes.contains("Drug"), "quantifier sort");
        assert!(deps.attributes.contains("takes"), "constraint atom");
        // QueryPatient's `l_2` path uses the inverse synonym `specialist`,
        // which resolves to its primitive `skilled_in`.
        assert!(deps.attributes.contains("skilled_in"));
        assert!(!deps.attributes.contains("specialist"));
        assert!(index.unrestricted_views().contains(&0));
    }

    #[test]
    fn trivial_views_depend_on_their_class_only() {
        let model = samples::medical_model();
        let trivial = QueryClassDecl {
            name: "AllPersons".into(),
            is_a: vec!["Person".into()],
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        };
        let index = DependencyIndex::build(&model, [&trivial]);
        let deps = index.deps(0);
        assert_eq!(deps.classes.len(), 1);
        assert!(deps.attributes.is_empty());
        assert_eq!(deps.max_path_len, 0);
        assert!(!deps.volatile);
        assert!(!deps.unrestricted);
        assert_eq!(index.len(), 1);
        assert!(!index.is_empty());
    }
}
