//! The change log: every state mutation of a [`Database`](crate::Database)
//! is recorded as a [`Delta`] stamped with a monotonically increasing
//! `data_version`, so that view maintenance can replay exactly the changes
//! a materialized extension has not seen yet.
//!
//! The log records *effective* changes only — a re-assertion of an
//! existing membership or attribute pair writes nothing — and class
//! assertions/retractions appear once per class actually touched,
//! including the memberships the store propagates along the isA hierarchy
//! (upward on assertion, downward on retraction). This is what makes the
//! dependency-index lookup in [`propagate`](crate::maintain::propagate)
//! precise: a view that mentions `Person` sees the `Person` delta of an
//! object asserted into `Patient` because the store logged the propagated
//! membership under its own class symbol.
//!
//! The log can be [truncated](DeltaLog::truncate_through) below the oldest
//! version any consumer still needs; a consumer whose snapshot predates
//! the truncation point detects this through [`DeltaLog::since`] returning
//! `None` and must fall back to full re-evaluation.

use crate::store::ObjId;

/// One effective state change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delta {
    /// A new object was created.
    AddObject {
        /// The fresh object.
        object: ObjId,
    },
    /// An object entered a class extent (explicitly or by upward isA
    /// propagation — one delta per extent actually grown).
    AssertClass {
        /// The object.
        object: ObjId,
        /// The class whose extent grew.
        class: String,
    },
    /// An object left a class extent (explicitly or by downward
    /// retraction propagation — one delta per extent actually shrunk).
    RetractClass {
        /// The object.
        object: ObjId,
        /// The class whose extent shrank.
        class: String,
    },
    /// An attribute pair was added, stored in the primitive direction
    /// (inverse-synonym assertions are resolved before logging).
    AssertAttr {
        /// The source object (primitive direction).
        from: ObjId,
        /// The primitive attribute name.
        attribute: String,
        /// The value object.
        to: ObjId,
    },
    /// An attribute pair was removed (primitive direction).
    RetractAttr {
        /// The source object (primitive direction).
        from: ObjId,
        /// The primitive attribute name.
        attribute: String,
        /// The value object.
        to: ObjId,
    },
}

/// An append-only, truncatable log of [`Delta`]s.
///
/// The entry at position `i` has `data_version == base_version + i + 1`;
/// the version after the last entry is [`DeltaLog::version`]. Versions
/// never repeat, survive truncation, and strictly increase with every
/// recorded delta.
#[derive(Clone, Debug, Default)]
pub struct DeltaLog {
    /// Version of the state before the oldest retained entry.
    base: u64,
    entries: Vec<Delta>,
}

impl DeltaLog {
    /// An empty log at version 0.
    pub fn new() -> Self {
        DeltaLog::default()
    }

    /// An empty log positioned at `version`: replays from `version` (and
    /// later) are possible and empty, earlier ones report truncation.
    /// Used when publishing read snapshots, which carry the version but
    /// never replay entries.
    pub fn at_version(version: u64) -> Self {
        DeltaLog {
            base: version,
            entries: Vec::new(),
        }
    }

    /// The current data version (the version stamped on the last recorded
    /// delta; 0 for a fresh database).
    pub fn version(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// The version of the state before the oldest retained entry: replays
    /// are possible from any version `>= base_version()`.
    pub fn base_version(&self) -> u64 {
        self.base
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a delta and returns its data version.
    pub fn record(&mut self, delta: Delta) -> u64 {
        self.entries.push(delta);
        self.version()
    }

    /// The deltas recorded after state version `since` (each paired with
    /// its own data version, ascending), or `None` when the log was
    /// truncated past that point and a replay from `since` is impossible.
    pub fn since(&self, since: u64) -> Option<impl Iterator<Item = (u64, &Delta)>> {
        if since < self.base {
            return None;
        }
        // A version from the future clamps to an empty replay.
        let skip = ((since - self.base) as usize).min(self.entries.len());
        Some(
            self.entries[skip..]
                .iter()
                .enumerate()
                .map(move |(i, d)| (self.base + skip as u64 + i as u64 + 1, d)),
        )
    }

    /// Drops every entry with `data_version <= through` (no-op when
    /// `through` is at or below the base). Consumers snapshotted at or
    /// after `through` are unaffected.
    pub fn truncate_through(&mut self, through: u64) {
        if through <= self.base {
            return;
        }
        let drop = ((through - self.base) as usize).min(self.entries.len());
        self.entries.drain(..drop);
        self.base += drop as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(i: u32) -> Delta {
        Delta::AddObject { object: ObjId(i) }
    }

    #[test]
    fn versions_increase_and_replay_from_any_point() {
        let mut log = DeltaLog::new();
        assert_eq!(log.version(), 0);
        assert_eq!(log.record(add(0)), 1);
        assert_eq!(log.record(add(1)), 2);
        assert_eq!(log.record(add(2)), 3);
        let all: Vec<(u64, Delta)> = log
            .since(0)
            .expect("replayable")
            .map(|(v, d)| (v, d.clone()))
            .collect();
        assert_eq!(all, vec![(1, add(0)), (2, add(1)), (3, add(2))]);
        let tail: Vec<u64> = log.since(2).expect("replayable").map(|(v, _)| v).collect();
        assert_eq!(tail, vec![3]);
        assert_eq!(log.since(3).expect("replayable").count(), 0);
        // A future version yields nothing rather than panicking.
        assert_eq!(log.since(99).expect("replayable").count(), 0);
    }

    #[test]
    fn truncation_preserves_versions_and_rejects_stale_replays() {
        let mut log = DeltaLog::new();
        for i in 0..5 {
            log.record(add(i));
        }
        log.truncate_through(2);
        assert_eq!(log.base_version(), 2);
        assert_eq!(log.version(), 5);
        assert_eq!(log.len(), 3);
        assert!(log.since(1).is_none(), "truncated past version 1");
        let versions: Vec<u64> = log.since(2).expect("replayable").map(|(v, _)| v).collect();
        assert_eq!(versions, vec![3, 4, 5]);
        // Truncating below the base or twice is a no-op.
        log.truncate_through(1);
        assert_eq!(log.len(), 3);
        log.truncate_through(5);
        assert!(log.is_empty());
        assert_eq!(log.version(), 5);
        assert_eq!(log.record(add(9)), 6);
    }
}
