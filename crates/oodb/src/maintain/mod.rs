//! Incremental view maintenance: delta-driven, lattice-aware refresh of
//! materialized extensions.
//!
//! The paper's optimizer answers queries from materialized views; this
//! module keeps that investment alive under updates. Instead of marking
//! every view stale and re-evaluating each extension from scratch on
//! every write, the store records each effective mutation in a change log
//! ([`delta`]), a dependency index maps every class and attribute symbol
//! to the views whose definitions mention it ([`depindex`]), and the
//! propagator replays only the unseen suffix of the log against only the
//! affected views, re-checking only candidate objects and exploiting the
//! catalog's subsumption lattice top-down to skip evaluations a parent
//! view already decided ([`propagate`]).
//!
//! Staleness is per view and versioned: a [`MaterializedView`] is current
//! as of its `fresh_as_of` data version, and a refresh pass replays
//! exactly the deltas in `(fresh_as_of, data_version]`. Full
//! re-evaluation survives as
//! [`ViewCatalog::refresh_full`](crate::views::ViewCatalog::refresh_full),
//! the oracle the incremental path is verified against
//! (`tests/incremental_equivalence.rs`).
//!
//! [`MaterializedView`]: crate::views::MaterializedView

pub mod delta;
pub mod depindex;
pub mod propagate;

pub use delta::{Delta, DeltaLog};
pub use depindex::{DependencyIndex, ViewDeps};
pub use propagate::{refresh_views, routes_nothing, set_maintenance_workers, MaintenanceStats};
