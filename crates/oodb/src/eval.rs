//! Deductive evaluation of query classes over a database state.
//!
//! The membership conditions of a query class are necessary and sufficient
//! (Section 2.2), so an object is recognized as an instance as soon as the
//! state satisfies the translated formula of Figure 4: it belongs to all
//! superclasses, every derived path can be bound, labels equated in the
//! `where` clause can be bound to a common object, and the constraint
//! clause holds for some such binding.

use crate::objset::ObjSet;
use crate::store::{Database, ObjId};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use subq_dl::{ConstraintExpr, LabeledPath, PathFilter, QueryClassDecl, Term};

/// Evaluates a query class over the whole database, materializing the
/// answers as an ordered set (the observable API boundary).
pub fn evaluate_query(db: &Database, query: &QueryClassDecl) -> BTreeSet<ObjId> {
    evaluate_query_set(db, query, None).to_btree()
}

/// Evaluates a query class over a restricted candidate set (used by the
/// optimizer to filter a subsuming view's extension instead of scanning the
/// database). `None` means all objects are candidates.
pub fn evaluate_query_over(
    db: &Database,
    query: &QueryClassDecl,
    candidates: Option<&ObjSet>,
) -> BTreeSet<ObjId> {
    evaluate_query_set(db, query, candidates).to_btree()
}

/// [`evaluate_query_over`] without the ordered materialization: the
/// answers stay a compressed bitmap. This is the physical evaluation path
/// views and the maintainer run on.
pub fn evaluate_query_set(
    db: &Database,
    query: &QueryClassDecl,
    candidates: Option<&ObjSet>,
) -> ObjSet {
    match candidates {
        Some(set) => filter_members(db, query, set),
        None => {
            let base = initial_candidates(db, query);
            filter_members(db, query, &base)
        }
    }
}

/// The candidate set used when evaluating from scratch: the intersection of
/// the extents of the schema superclasses (all objects when there is none).
/// Intersections run word-parallel on the store's maintained bitmap
/// extents, smallest first; the unrestricted case returns the
/// run-compressed universe instead of materializing every id.
pub fn initial_candidates(db: &Database, query: &QueryClassDecl) -> ObjSet {
    let mut sets: Vec<&ObjSet> = Vec::new();
    for sup in &query.is_a {
        if db.model().class(sup).is_some() {
            match db.class_extent_ref(sup) {
                Some(extent) => sets.push(extent),
                // A declared superclass nothing was ever asserted into:
                // the intersection is empty.
                None => return ObjSet::new(),
            }
        }
    }
    if sets.is_empty() {
        return db.object_universe();
    }
    sets.sort_by_key(|s| s.len());
    let (smallest, rest) = sets.split_first().expect("non-empty");
    let mut acc = (*smallest).clone();
    for set in rest {
        acc.and_inplace(set);
        if acc.is_empty() {
            break;
        }
    }
    acc
}

/// Process-wide override of the evaluation worker count: 0 = auto
/// (`std::thread::available_parallelism`).
static EVAL_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Caps (or forces) the number of worker threads scatter-gather
/// evaluation may use, process-wide. `None` restores the default —
/// [`std::thread::available_parallelism`]. Setting an explicit count also
/// waives the minimum-work threshold, the same contract as
/// [`crate::maintain::set_maintenance_workers`].
pub fn set_eval_workers(workers: Option<usize>) {
    EVAL_WORKERS.store(workers.unwrap_or(0), Ordering::Relaxed);
}

/// Scatter membership checks below this many candidates are cheaper than
/// the spawns (unless an explicit worker count waives the threshold).
const PARALLEL_EVAL_THRESHOLD: usize = 4096;

/// Filters a candidate set down to the query's members. Large candidate
/// sets are split into cardinality-balanced id-range shards
/// ([`ObjSet::shards`]) checked on [`std::thread::scope`] workers and
/// gathered with a bitmap union; membership is per-object, so the
/// scattered result is identical to the sequential one.
pub fn filter_members(db: &Database, query: &QueryClassDecl, base: &ObjSet) -> ObjSet {
    let override_workers = EVAL_WORKERS.load(Ordering::Relaxed);
    let workers = if override_workers > 0 {
        override_workers
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let worth_spawning = override_workers > 0 || base.len() >= PARALLEL_EVAL_THRESHOLD;
    if workers <= 1 || !worth_spawning {
        return base
            .iter()
            .filter(|&obj| is_member(db, query, obj))
            .collect();
    }
    let shards = base.shards(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                scope.spawn(move || {
                    shard
                        .filter(|&obj| is_member(db, query, obj))
                        .collect::<ObjSet>()
                })
            })
            .collect();
        let mut gathered = ObjSet::new();
        for handle in handles {
            gathered.or_inplace(&handle.join().expect("evaluation worker panicked"));
        }
        gathered
    })
}

/// Whether one object is an answer of the query class.
pub fn is_member(db: &Database, query: &QueryClassDecl, object: ObjId) -> bool {
    // Superclasses: schema classes by stored membership, query classes
    // recursively (they are completely defined by their declarations).
    for sup in &query.is_a {
        if let Some(sup_query) = db.model().query_class(sup) {
            if !is_member(db, sup_query, object) {
                return false;
            }
        } else if sup != "Object" && !db.is_instance_of(object, sup) {
            return false;
        }
    }

    // Bind every derived path.
    let mut endpoints: HashMap<&str, ObjSet> = HashMap::new();
    for path in &query.derived {
        let ends = path_endpoints(db, object, path);
        if ends.is_empty() {
            return false;
        }
        if let Some(label) = &path.label {
            endpoints.insert(label.as_str(), ends);
        }
    }

    // `where` equalities restrict equated labels to a common binding.
    let mut constrained: HashMap<&str, ObjSet> = endpoints.clone();
    for (left, right) in &query.where_eqs {
        let (Some(l), Some(r)) = (endpoints.get(left.as_str()), endpoints.get(right.as_str()))
        else {
            return false;
        };
        let common = l.and(r);
        if common.is_empty() {
            return false;
        }
        constrained.insert(left.as_str(), common.clone());
        constrained.insert(right.as_str(), common);
    }

    // Constraint clause: there must be a binding of the labels it mentions
    // (consistent with the `where` restrictions) that satisfies it.
    match &query.constraint {
        None => true,
        Some(constraint) => {
            let free: std::collections::HashSet<String> =
                constraint.free_idents().into_iter().collect();
            let domains: Vec<(&str, Vec<ObjId>)> = constrained
                .iter()
                .filter(|&(label, _)| free.contains(*label))
                .map(|(label, objs)| (*label, objs.iter().collect()))
                .collect();
            exists_binding(db, constraint, object, &domains, &mut HashMap::new(), 0)
        }
    }
}

/// Searches for a label binding that satisfies the constraint.
fn exists_binding(
    db: &Database,
    constraint: &ConstraintExpr,
    this: ObjId,
    domains: &[(&str, Vec<ObjId>)],
    bound: &mut HashMap<String, ObjId>,
    index: usize,
) -> bool {
    if index == domains.len() {
        return eval_constraint(db, constraint, this, bound);
    }
    let (label, candidates) = &domains[index];
    for &candidate in candidates {
        bound.insert((*label).to_owned(), candidate);
        if exists_binding(db, constraint, this, domains, bound, index + 1) {
            return true;
        }
    }
    bound.remove(*label);
    false
}

/// The objects reachable from `start` along a labeled path. Synonyms are
/// resolved once per step; values are read from the store's maintained
/// posting bitmaps, so an unfiltered step is a union and a class-filtered
/// step is a union of intersections — both word-parallel.
pub fn path_endpoints(db: &Database, start: ObjId, path: &LabeledPath) -> ObjSet {
    let mut current = ObjSet::new();
    current.insert(start);
    for step in &path.steps {
        let (name, inverted) = db.resolve_attr_direction(&step.attr);
        let class_filter = match &step.filter {
            PathFilter::Class(class) if class != "Object" => {
                match db.class_extent_ref(class) {
                    Some(extent) => Some(extent),
                    // A filter class with no members blocks the step.
                    None => {
                        current = ObjSet::new();
                        break;
                    }
                }
            }
            _ => None,
        };
        let mut next = ObjSet::new();
        for obj in &current {
            let values = if inverted {
                db.attr_in(obj, name)
            } else {
                db.attr_out(obj, name)
            };
            let Some(values) = values else { continue };
            match (&step.filter, class_filter) {
                (PathFilter::Singleton(singleton), _) => {
                    if let Some(id) = db.object(singleton) {
                        if values.contains(&id) {
                            next.insert(id);
                        }
                    }
                }
                (_, Some(extent)) => next.or_inplace(&values.and(extent)),
                _ => next.or_inplace(values),
            }
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current
}

/// Evaluates a constraint-clause formula with `this` bound and labels bound
/// by `env`; other identifiers denote objects by name.
pub fn eval_constraint(
    db: &Database,
    expr: &ConstraintExpr,
    this: ObjId,
    env: &HashMap<String, ObjId>,
) -> bool {
    let resolve = |term: &Term, env: &HashMap<String, ObjId>| -> Option<ObjId> {
        match term {
            Term::This => Some(this),
            Term::Ident(name) => env.get(name).copied().or_else(|| db.object(name)),
        }
    };
    match expr {
        ConstraintExpr::In(t, class) => {
            resolve(t, env).is_some_and(|obj| class == "Object" || db.is_instance_of(obj, class))
        }
        ConstraintExpr::HasAttr(s, attr, t) => match (resolve(s, env), resolve(t, env)) {
            (Some(from), Some(to)) => db.has_attr_value(from, attr, to),
            _ => false,
        },
        ConstraintExpr::Eq(s, t) => match (resolve(s, env), resolve(t, env)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        },
        ConstraintExpr::Not(inner) => !eval_constraint(db, inner, this, env),
        ConstraintExpr::And(a, b) => {
            eval_constraint(db, a, this, env) && eval_constraint(db, b, this, env)
        }
        ConstraintExpr::Or(a, b) => {
            eval_constraint(db, a, this, env) || eval_constraint(db, b, this, env)
        }
        ConstraintExpr::Forall(var, class, body) => {
            db.class_extent_ref(class).into_iter().flatten().all(|obj| {
                let mut env = env.clone();
                env.insert(var.clone(), obj);
                eval_constraint(db, body, this, &env)
            })
        }
        ConstraintExpr::Exists(var, class, body) => {
            db.class_extent_ref(class).into_iter().flatten().any(|obj| {
                let mut env = env.clone();
                env.insert(var.clone(), obj);
                eval_constraint(db, body, this, &env)
            })
        }
    }
}

/// Evaluates a class constraint clause for one object (no label bindings).
pub fn eval_constraint_for(db: &Database, expr: &ConstraintExpr, this: ObjId) -> bool {
    eval_constraint(db, expr, this, &HashMap::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Database;
    use subq_dl::{samples, PathFilter, PathStep};

    /// The hospital of the store tests extended with a male patient that
    /// satisfies every condition of QueryPatient.
    fn hospital_with_john() -> Database {
        let mut db = crate::store::tests::hospital();
        let john = db.add_object("john");
        let john_name = db.add_object("john_name");
        let welby = db.object("welby").expect("exists");
        let flu = db.object("flu").expect("exists");
        let aspirin = db.object("Aspirin").expect("exists");
        db.assert_class(john, "Patient");
        db.assert_class(john, "Male");
        db.assert_class(john_name, "String");
        db.assert_attr(john, "suffers", flu);
        db.assert_attr(john, "consults", welby);
        db.assert_attr(john, "takes", aspirin);
        db.assert_attr(john, "name", john_name);
        db
    }

    #[test]
    fn view_patient_contains_both_patients() {
        let db = hospital_with_john();
        let model = samples::medical_model();
        let view = model.query_class("ViewPatient").expect("declared");
        let answers = evaluate_query(&db, view);
        let mary = db.object("mary").expect("exists");
        let john = db.object("john").expect("exists");
        assert_eq!(answers, BTreeSet::from([mary, john]));
    }

    #[test]
    fn query_patient_contains_only_john() {
        let db = hospital_with_john();
        let model = samples::medical_model();
        let query = model.query_class("QueryPatient").expect("declared");
        let answers = evaluate_query(&db, query);
        let john = db.object("john").expect("exists");
        assert_eq!(answers, BTreeSet::from([john]));
    }

    #[test]
    fn query_answers_are_contained_in_view_answers() {
        let db = hospital_with_john();
        let model = samples::medical_model();
        let query = model.query_class("QueryPatient").expect("declared");
        let view = model.query_class("ViewPatient").expect("declared");
        let query_answers = evaluate_query(&db, query);
        let view_answers = evaluate_query(&db, view);
        assert!(query_answers.is_subset(&view_answers));
    }

    #[test]
    fn constraint_clause_filters_answers() {
        let mut db = hospital_with_john();
        let model = samples::medical_model();
        let query = model.query_class("QueryPatient").expect("declared");
        let john = db.object("john").expect("exists");
        assert!(is_member(&db, query, john));
        // Taking another drug besides Aspirin violates the constraint.
        let ibuprofen = db.add_object("ibuprofen");
        db.assert_class(ibuprofen, "Drug");
        db.assert_attr(john, "takes", ibuprofen);
        assert!(!is_member(&db, query, john));
    }

    #[test]
    fn where_clause_requires_a_common_filler() {
        let mut db = hospital_with_john();
        let model = samples::medical_model();
        let view = model.query_class("ViewPatient").expect("declared");
        let mary = db.object("mary").expect("exists");
        assert!(is_member(&db, view, mary));
        // Replace the doctor's skill with a different disease: the paths
        // l_1 (consulted doctor's skill) and l_2 (suffered disease) no
        // longer agree for a new patient similar to mary.
        let anna = db.add_object("anna");
        let anna_name = db.add_object("anna_name");
        let measles = db.add_object("measles");
        let welby = db.object("welby").expect("exists");
        db.assert_class(anna, "Patient");
        db.assert_class(anna_name, "String");
        db.assert_class(measles, "Disease");
        db.assert_attr(anna, "name", anna_name);
        db.assert_attr(anna, "suffers", measles);
        db.assert_attr(anna, "consults", welby);
        assert!(!is_member(&db, view, anna));
    }

    #[test]
    fn path_endpoints_follow_filters_and_synonyms() {
        let db = hospital_with_john();
        let model = samples::medical_model();
        let query = model.query_class("QueryPatient").expect("declared");
        let john = db.object("john").expect("exists");
        let welby = db.object("welby").expect("exists");
        // l_2: suffers.(specialist: Doctor) reaches the doctor through the
        // inverse synonym.
        let ends = path_endpoints(&db, john, &query.derived[1]);
        assert_eq!(ends, BTreeSet::from([welby]));
    }

    #[test]
    fn candidate_restriction_only_limits_the_search_space() {
        let db = hospital_with_john();
        let model = samples::medical_model();
        let view = model.query_class("ViewPatient").expect("declared");
        let mary = db.object("mary").expect("exists");
        let john = db.object("john").expect("exists");
        let only_mary: ObjSet = [mary].into_iter().collect();
        let restricted = evaluate_query_over(&db, view, Some(&only_mary));
        assert_eq!(restricted, BTreeSet::from([mary]));
        let full = evaluate_query_over(&db, view, None);
        assert_eq!(full, BTreeSet::from([mary, john]));
    }

    /// A query with no schema superclass starts from the all-objects
    /// candidate set — both with an empty `isA` clause and with an `isA`
    /// clause naming only query classes (which restrict by recursive
    /// membership, not by stored extents).
    #[test]
    fn query_without_schema_superclasses_scans_all_objects() {
        let db = hospital_with_john();
        let unrestricted = subq_dl::QueryClassDecl {
            name: "Everything".into(),
            is_a: vec![],
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        };
        let all: BTreeSet<ObjId> = db.objects().collect();
        assert_eq!(initial_candidates(&db, &unrestricted), all);
        assert_eq!(evaluate_query(&db, &unrestricted), all);

        // `isA ViewPatient` names a query class: no stored extent to
        // intersect, so the candidate set stays all objects, and the
        // recursive membership check does the filtering.
        let via_query_class = subq_dl::QueryClassDecl {
            name: "ViaView".into(),
            is_a: vec!["ViewPatient".into()],
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        };
        assert_eq!(initial_candidates(&db, &via_query_class), all);
        let model = samples::medical_model();
        let view = model.query_class("ViewPatient").expect("declared");
        assert_eq!(
            evaluate_query(&db, &via_query_class),
            evaluate_query(&db, view)
        );
    }

    /// A `where` equality between labels whose paths bind disjoint object
    /// sets recognizes no member, even when each path binds on its own.
    #[test]
    fn where_equality_binding_no_common_object_rejects_members() {
        let db = hospital_with_john();
        let john = db.object("john").expect("exists");
        // l_1: the consulted doctor (welby); l_2: the taken drug
        // (Aspirin). Both bind, but never to a common object.
        let query = subq_dl::QueryClassDecl {
            name: "Impossible".into(),
            is_a: vec!["Patient".into()],
            derived: vec![
                LabeledPath {
                    label: Some("l_1".into()),
                    steps: vec![PathStep {
                        attr: "consults".into(),
                        filter: PathFilter::Any,
                    }],
                },
                LabeledPath {
                    label: Some("l_2".into()),
                    steps: vec![PathStep {
                        attr: "takes".into(),
                        filter: PathFilter::Any,
                    }],
                },
            ],
            where_eqs: vec![("l_1".into(), "l_2".into())],
            constraint: None,
        };
        // Each path binds for john…
        assert!(!path_endpoints(&db, john, &query.derived[0]).is_empty());
        assert!(!path_endpoints(&db, john, &query.derived[1]).is_empty());
        // …but the equality has no common witness.
        assert!(!is_member(&db, &query, john));
        assert!(evaluate_query(&db, &query).is_empty());
        // A `where` clause over an unbound (undeclared) label also
        // rejects instead of panicking.
        let dangling = subq_dl::QueryClassDecl {
            name: "Dangling".into(),
            is_a: vec!["Patient".into()],
            derived: vec![],
            where_eqs: vec![("ghost".into(), "ghost".into())],
            constraint: None,
        };
        assert!(evaluate_query(&db, &dangling).is_empty());
    }

    /// Evaluation over an explicitly empty restricted candidate set is
    /// empty — the optimizer's degenerate case of filtering an empty view
    /// extension.
    #[test]
    fn evaluation_over_an_empty_candidate_set_is_empty() {
        let db = hospital_with_john();
        let model = samples::medical_model();
        let view = model.query_class("ViewPatient").expect("declared");
        let restricted = evaluate_query_over(&db, view, Some(&ObjSet::new()));
        assert!(restricted.is_empty());
    }

    #[test]
    fn evaluating_a_schema_class_turned_query() {
        // "Every schema class can be turned into a query class": a query
        // with only an isA clause returns the class extent.
        let db = hospital_with_john();
        let query = subq_dl::QueryClassDecl {
            name: "AllPatients".into(),
            is_a: vec!["Patient".into()],
            derived: vec![],
            where_eqs: vec![],
            constraint: None,
        };
        let answers = evaluate_query(&db, &query);
        assert_eq!(answers, db.class_extent("Patient"));
    }
}
